"""Bench: Fig 5 — latency CDFs: GLOBAL tables vs duplicate indexes.

Shape requirements (§7.3.2):
* Reads are fast in the common case for every config except
  Regional (Latest).
* GLOBAL write latency decreases with ``max_clock_offset`` (commit wait
  shrinks) and stays bounded.
* Duplicate-index writes are comparable to GLOBAL writes in the common
  case but their tail blows up under contention (writers queue behind
  WAN round trips), while GLOBAL read tails stay bounded by
  ``max_clock_offset``.
"""

from repro.harness.experiments.fig5 import run_fig5


def test_fig5_latency_cdfs(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig5(clients_per_region=4, ops_per_client=40,
                         keys_per_region=40),
        rounds=1, iterations=1)
    result.table().print()

    # Common-case reads fast everywhere but Regional (Latest).
    for config in ("global_250", "global_50", "global_10", "dup_idx",
                   "regional_stale"):
        assert result.summary(config, "read").p50 < 10.0, config
    assert result.summary("regional_latest", "read").p50 > 30.0

    # GLOBAL writes: smaller max_clock_offset => lower write latency.
    w250 = result.summary("global_250", "write").p50
    w50 = result.summary("global_50", "write").p50
    w10 = result.summary("global_10", "write").p50
    assert w250 > w50 > w10

    # Tail behaviour: GLOBAL read tail bounded by ~max_clock_offset (+
    # slack for the blocking-writer case); duplicate-index write tail
    # far exceeds its common case.
    g_read = result.summary("global_250", "read")
    assert g_read.p99 <= 250.0 + 150.0
    dup_write = result.summary("dup_idx", "write")
    assert dup_write.max > 2.0 * dup_write.p50
    # Duplicate-index worst case exceeds the bounded GLOBAL read tail.
    dup_read = result.summary("dup_idx", "read")
    assert max(dup_read.max, dup_write.max) > 1000.0

    # Print CDF tails for EXPERIMENTS.md.
    for config in ("global_250", "dup_idx"):
        for op in ("read", "write"):
            points = result.cdf(config, op)
            if points:
                tail = [p for p in points if p[1] >= 0.95]
                print(f"{config} {op} tail: "
                      + ", ".join(f"{lat:.0f}ms@{frac:.3f}"
                                  for lat, frac in tail[:6]))
