"""Bench: Fig 4c — automatic rehoming under contention.

Shape requirements (§7.2.3):
* c=1 (no contention): all shared rows re-home to the lone client's
  region; its accesses run at local latency.
* c=2,3: contending clients from different regions thrash the rows'
  homes; latency degrades back toward (or beyond) the non-rehoming
  Default.
"""

from repro.harness.experiments.fig4 import run_fig4c


def test_fig4c_rehoming_under_contention(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig4c(ops_per_client=60),
        rounds=1, iterations=1)
    result.table().print()

    def reads(config):
        return result.recorders[config].summary("read", "remote")

    def writes(config):
        return result.recorders[config].summary("update", "remote")

    # Uncontended: the shared slice lives wherever the lone client is —
    # a single local-latency band.
    assert reads("rehoming_c1").p50 < 10.0
    assert reads("rehoming_c1").mean < 20.0

    # Contended: each contender only owns the rows it touched last, so a
    # large share of accesses cross regions again (bimodal violin in the
    # paper) — the mean climbs far above the uncontended case and toward
    # the no-rehoming Default.
    assert reads("rehoming_c2").mean > 10.0 * reads("rehoming_c1").mean
    assert reads("rehoming_c3").mean > 10.0 * reads("rehoming_c1").mean
    assert reads("default").mean > 100.0
    # Writes that do cross regions pay the move (delete + reinsert).
    for config in ("rehoming_c2", "rehoming_c3"):
        summary = writes(config)
        if summary.count:
            assert summary.max > 100.0, config
