"""Bench: Table 2 — DDL statements for multi-region operations.

Shape requirements (§7.5.1): the declarative syntax takes a small
fraction of the legacy statement count for schema creation/conversion,
and exactly one statement to add or drop a region.
"""

from repro.harness.experiments.tables import run_table2


def test_table2_ddl_counts(benchmark):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    result.table().print()

    for (schema, op), (before, after) in result.counts.items():
        assert after <= before, (schema, op)
        if op in ("add_region", "drop_region"):
            # A single declarative statement per region change.
            assert after == 1, (schema, op)
        else:
            # The declarative syntax cuts statement counts at least in
            # half for the multi-table schemas.
            if schema in ("movr", "tpcc"):
                assert after * 2 <= before, (schema, op)
