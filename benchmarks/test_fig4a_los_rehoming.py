"""Bench: Fig 4a — locality optimized search and automatic rehoming.

Shape requirements (§7.2.1):
* Unoptimized fans out on every operation: local reads are as slow as
  remote ones (~WAN RTT).
* Default keeps local operations local and is only modestly slower
  than Baseline on remote operations.
* Rehoming pulls each client's revisited remote rows into its region:
  remote-labelled operations approach local latency.
"""

from repro.harness.experiments.fig4 import run_fig4a


def test_fig4a_los_and_rehoming(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig4a(clients_per_region=2, ops_per_client=60),
        rounds=1, iterations=1)
    result.table().print()

    for locality in (0.95, 0.5):
        # Unoptimized: even local reads pay the fan-out.
        unopt_local = result.summary("unoptimized", locality, "read", True)
        assert unopt_local.p50 > 100.0

        # Default: local reads fast; remote reads ~ one WAN fan-out.
        default_local = result.summary("default", locality, "read", True)
        default_remote = result.summary("default", locality, "read", False)
        assert default_local.p50 < 10.0
        assert default_remote.p50 > 100.0

        # Baseline: like Default but without the local probe (can only
        # be faster on remote reads, never slower).
        baseline_remote = result.summary("baseline", locality, "read", False)
        assert baseline_remote.p50 <= default_remote.p50 + 5.0

        # Rehoming: revisited remote rows have moved in; local regime.
        rehoming_remote = result.summary("rehoming", locality, "read", False)
        assert rehoming_remote.p50 < 10.0
        rehoming_writes = result.summary("rehoming", locality, "update",
                                         False)
        if rehoming_writes.count:
            assert rehoming_writes.p50 < 20.0
