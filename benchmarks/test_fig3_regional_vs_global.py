"""Bench: Fig 3 — transaction latency for REGIONAL vs GLOBAL tables.

Shape requirements from the paper (§7.1.2):
* GLOBAL reads are fast (< a few ms) from every region; GLOBAL writes
  pay commit wait (hundreds of ms).
* REGIONAL reads/writes are fast from the PRIMARY region and pay WAN
  RTTs from other regions.
* Bounded-staleness reads on REGIONAL tables are fast from everywhere.
"""

from repro.harness.experiments.fig3 import run_fig3


def test_fig3_regional_vs_global(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig3(clients_per_region=3, ops_per_client=40),
        rounds=1, iterations=1)
    result.table().print()

    fast = 10.0  # "fast" threshold in ms (paper: < 3 ms on real hardware)

    # GLOBAL: reads fast everywhere, writes slow everywhere.
    assert result.summary("global", "read", primary=True).p50 < fast
    assert result.summary("global", "read", primary=False).p50 < fast
    assert result.summary("global", "update", primary=True).p50 > 250.0
    assert result.summary("global", "update", primary=False).p50 > 250.0

    # REGIONAL (latest): fast at home, WAN remotely.
    assert result.summary("regional_latest", "read", primary=True).p50 < fast
    assert result.summary("regional_latest", "update", primary=True).p50 < fast
    remote_read = result.summary("regional_latest", "read", primary=False)
    assert 60.0 <= remote_read.p50 <= 250.0
    assert result.summary("regional_latest", "update",
                          primary=False).p50 >= 60.0

    # REGIONAL (stale): reads fast everywhere.
    assert result.summary("regional_stale", "read", primary=True).p50 < fast
    assert result.summary("regional_stale", "read", primary=False).p50 < fast
