"""Bench: ablations on the design choices DESIGN.md calls out.

Not a paper figure — these quantify *why* the design is the way it is:

* the closed-timestamp lead must cover replication + uncertainty or
  GLOBAL follower reads silently degrade to WAN round trips;
* releasing locks concurrently with commit wait is what keeps contended
  GLOBAL writers from serializing;
* a slower side transport inflates the required lead and with it every
  GLOBAL write.
"""

from repro.harness.experiments.ablations import (
    run_commit_wait_ablation,
    run_lead_time_ablation,
    run_side_transport_ablation,
)


def test_ablation_lead_time(benchmark):
    table = benchmark.pedantic(run_lead_time_ablation, rounds=1,
                               iterations=1)
    table.print()
    rows = {row[0]: row for row in table.rows}
    # Full-size lead: remote reads served locally; half-size: fallbacks.
    assert float(rows["1.00x"][2]) < 10.0
    assert float(rows["0.25x"][2]) > 50.0
    # Write latency grows with the lead.
    assert float(rows["2.00x"][3]) > float(rows["1.00x"][3]) > \
        float(rows["0.25x"][3])


def test_ablation_commit_wait_style(benchmark):
    table = benchmark.pedantic(run_commit_wait_ablation, rounds=1,
                               iterations=1)
    table.print()
    rows = {row[0]: row for row in table.rows}
    crdb_slowest = float(rows["crdb"][1])
    spanner_slowest = float(rows["spanner"][1])
    # Serialized waits stack ~linearly with the writer count.
    assert spanner_slowest > 2.0 * crdb_slowest


def test_ablation_side_transport_interval(benchmark):
    table = benchmark.pedantic(run_side_transport_ablation, rounds=1,
                               iterations=1)
    table.print()
    leads = [float(row[1]) for row in table.rows]
    writes = [float(row[2]) for row in table.rows]
    reads = [float(row[3]) for row in table.rows]
    # Larger intervals force larger leads and slower writes...
    assert leads == sorted(leads)
    assert writes[0] < writes[-1]
    # ...while remote reads stay locally served at every interval.
    assert all(r < 10.0 for r in reads)
