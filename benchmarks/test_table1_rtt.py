"""Bench: Table 1 — the inter-region RTT matrix (network substrate)."""

from repro.cluster import standard_cluster
from repro.harness.experiments.tables import run_table1
from repro.sim.network import TABLE1_REGIONS, TABLE1_RTT_MS


def _measure_rtts():
    """Measure actual message round trips between one node per region."""
    cluster = standard_cluster(TABLE1_REGIONS, nodes_per_region=1,
                               jitter_fraction=0.0)
    sim = cluster.sim
    measured = {}

    def ping(a, b):
        def handler():
            return "pong"
            yield  # pragma: no cover

        def proc():
            start = sim.now
            yield cluster.network.call(a, b, handler)
            measured[(a.locality.region, b.locality.region)] = \
                sim.now - start

        process = sim.spawn(proc())
        sim.run_until_future(process)

    nodes = cluster.nodes
    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            ping(a, b)
    return measured


def test_table1_rtt_matrix(benchmark):
    measured = benchmark.pedantic(_measure_rtts, rounds=1, iterations=1)
    run_table1().print()
    print("\nmeasured ping round trips (incl. processing overhead):")
    for (a, b), rtt in sorted(measured.items()):
        nominal = TABLE1_RTT_MS[(a, b)]
        print(f"  {a:22s} <-> {b:22s} {rtt:7.1f} ms (paper: {nominal:.0f})")
        # Within the per-message processing overhead of the nominal RTT.
        assert nominal <= rtt <= nominal + 1.0
