"""Bench: Fig 6 — TPC-C throughput scales linearly with regions.

Shape requirements (§7.4):
* Throughput grows ~linearly from 4 to 26 regions (the paper reports
  >= 97% TPC-C efficiency; we assert >= 85% per-warehouse efficiency
  relative to the 4-region run).
* p50 latencies stay flat as regions are added (requests do not cross
  regions in the common case).
* PLACEMENT RESTRICTED does not change p50 latency vs DEFAULT.
"""

from repro.harness.experiments.fig6 import (
    run_fig6,
    run_fig6_placement_comparison,
)
from repro.metrics.histogram import Summary


def test_fig6_tpcc_scalability(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig6(region_counts=(4, 10, 26), txns_per_client=10),
        rounds=1, iterations=1)
    result.table().print()

    base = result.points[0]
    for point in result.points[1:]:
        assert result.efficiency(point) >= 0.85, \
            f"{point.regions} regions efficiency {result.efficiency(point)}"

    # p50 stays flat: the median new-order latency of the largest
    # cluster is within 2x of the smallest.
    def median_p50(point):
        p50s = []
        for label in point.recorder.labels():
            if label[0] == "new_order":
                summary = Summary(point.recorder.samples(*label))
                if summary.count:
                    p50s.append(summary.p50)
        p50s.sort()
        return p50s[len(p50s) // 2]

    assert median_p50(result.points[-1]) < 2.0 * median_p50(base)


def test_fig6_placement_restricted_latency(benchmark):
    points = benchmark.pedantic(
        lambda: run_fig6_placement_comparison(n_regions=10,
                                              txns_per_client=10),
        rounds=1, iterations=1)

    def p50(point):
        return Summary(point.recorder.samples("new_order")).p50

    default_p50 = p50(points["default"])
    restricted_p50 = p50(points["restricted"])
    print(f"\nnew-order p50: DEFAULT {default_p50:.1f} ms, "
          f"RESTRICTED {restricted_p50:.1f} ms")
    # §7.4: non-voters everywhere do not increase latency.
    assert default_p50 <= restricted_p50 * 1.5 + 10.0
