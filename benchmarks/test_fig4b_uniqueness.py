"""Bench: Fig 4b — the cost of global uniqueness checks on INSERT.

Shape requirements (§7.2.2):
* Computed (region derived from the key) skips the checks: local-latency
  INSERTs, identical profile to the manually partitioned Baseline.
* Default (region from the gateway) must verify pk uniqueness in every
  region: INSERT latency ~ the max inter-region RTT from each region.
"""

from repro.harness.experiments.fig4 import run_fig4b


def test_fig4b_uniqueness_checks(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig4b(clients_per_region=2, ops_per_client=80),
        rounds=1, iterations=1)
    result.table().print()

    computed = result.insert_summary("computed")
    baseline = result.insert_summary("baseline")
    default = result.insert_summary("default")
    assert computed.count and baseline.count and default.count

    # Computed and Baseline insert locally.
    assert computed.p50 < 10.0
    assert baseline.p50 < 10.0
    # Computed is "identical to Baseline" modulo noise.
    assert abs(computed.p50 - baseline.p50) < 5.0
    # Default pays a cross-region check on every INSERT.
    assert default.p50 > 80.0
