"""Checker self-tests: hand-crafted histories with known anomalies.

Guards against a vacuously-green checker — every anomaly class the
verify subsystem claims to detect is exercised with a minimal history
that MUST be flagged (with the correct witness), alongside clean
histories that must pass.
"""

import pytest

from repro.sim.clock import Timestamp
from repro.verify import RecordedOp, RecordedTxn, VerifyHistory, check


def ts(ms, logical=0):
    return Timestamp(float(ms), logical)


def read(key, value, version_ms, at_ms=0.0, from_intent=False):
    return RecordedOp(kind="r", key=key, value=value,
                      version_ts=ts(version_ms), at_ms=at_ms,
                      from_intent=from_intent)


def write(key, value, version_ms, at_ms=0.0):
    return RecordedOp(kind="w", key=key, value=value,
                      version_ts=ts(version_ms), at_ms=at_ms)


def txn(txn_id, ops, status="committed", commit_ms=None, begin_ms=0.0,
        end_ms=None, label=None, mode="strong", requested_ms=None,
        effective_ms=None):
    return RecordedTxn(
        txn_id=txn_id, label=label or f"c{txn_id}", region="us-east1",
        mode=mode, status=status, begin_ms=begin_ms,
        end_ms=end_ms if end_ms is not None else begin_ms + 1.0,
        commit_ts=None if commit_ms is None else ts(commit_ms),
        requested_ts=None if requested_ms is None else ts(requested_ms),
        effective_ts=None if effective_ms is None else ts(effective_ms),
        ops=ops)


def history(txns, kinds, final=None):
    meta = {"scenario": "hand-crafted", "seed": 0,
            "keys": {key: {"kind": kind, "global": False}
                     for key, kind in kinds.items()}}
    return VerifyHistory(txns=list(txns), meta=meta, final=final or {})


def anomaly_types(report):
    return {a.type for a in report.anomalies}


REG = {"t/r1": "register", "t/r2": "register"}
LISTS = {"t/l1": "list", "t/l2": "list"}


def init_registers(commit_ms=10.0):
    return txn(1, [write("t/r1", "init:r1", commit_ms),
                   write("t/r2", "init:r2", commit_ms)],
               commit_ms=commit_ms, begin_ms=5.0, label="init")


class TestCycleAnomalies:
    def test_write_skew_is_g2(self):
        """The classic: each txn reads the key the other writes."""
        h = history([
            init_registers(),
            txn(2, [read("t/r1", "init:r1", 10),
                    write("t/r2", "c2:1", 20)],
                commit_ms=20, begin_ms=15),
            txn(3, [read("t/r2", "init:r2", 10),
                    write("t/r1", "c3:1", 21)],
                commit_ms=21, begin_ms=15),
        ], REG)
        report = check(h)
        assert "G2" in anomaly_types(report)
        g2 = next(a for a in report.anomalies if a.type == "G2")
        in_cycle = {step["from"] for step in g2.witness["cycle"]}
        assert in_cycle == {2, 3}

    def test_g_single_from_lost_update_shape(self):
        h = history([
            init_registers(),
            txn(2, [read("t/r1", "init:r1", 10),
                    write("t/r1", "c2:1", 20)],
                commit_ms=20, begin_ms=12),
            txn(3, [read("t/r1", "init:r1", 10),
                    write("t/r1", "c3:1", 21)],
                commit_ms=21, begin_ms=12),
        ], REG)
        report = check(h)
        types = anomaly_types(report)
        assert "lost-update" in types
        assert "G-single" in types
        lost = next(a for a in report.anomalies if a.type == "lost-update")
        assert lost.witness["txns"] == [2, 3]

    def test_g0_write_cycle_over_list_keys(self):
        """ww cycle inferred purely from list prefix chains (no
        timestamp trust): T2/T3 each overwrote the other's append."""
        h = history([
            txn(1, [write("t/l1", [], 10), write("t/l2", [], 10)],
                commit_ms=10, begin_ms=5, label="init"),
            txn(2, [write("t/l1", ["a"], 20),
                    write("t/l2", ["x", "y"], 20)],
                commit_ms=20, begin_ms=15),
            txn(3, [write("t/l1", ["a", "b"], 25),
                    write("t/l2", ["x"], 25)],
                commit_ms=25, begin_ms=15),
        ], LISTS)
        report = check(h)
        types = anomaly_types(report)
        assert "G0" in types
        # The data-derived order on t/l2 also contradicts commit-ts order.
        assert "incompatible-order" in types

    def test_g1c_circular_information_flow(self):
        h = history([
            init_registers(),
            txn(2, [write("t/r1", "c2:a", 20),
                    write("t/r2", "c2:b", 20)],
                commit_ms=20, begin_ms=12),
            txn(3, [read("t/r1", "c2:a", 20),
                    write("t/r2", "c3:b", 15)],
                commit_ms=15, begin_ms=12),
        ], REG)
        report = check(h)
        assert "G1c" in anomaly_types(report)


class TestDirtyAndIntermediateReads:
    def test_dirty_read_of_aborted_write_is_g1a(self):
        h = history([
            init_registers(),
            txn(2, [write("t/r1", "c2:1", 15)], status="aborted",
                begin_ms=12),
            txn(3, [read("t/r1", "c2:1", 15)], commit_ms=20, begin_ms=16),
        ], REG)
        report = check(h)
        assert "G1a" in anomaly_types(report)
        g1a = next(a for a in report.anomalies if a.type == "G1a")
        assert g1a.witness == {"reader": 3, "writer": 2}

    def test_intermediate_read_is_g1b(self):
        h = history([
            init_registers(),
            txn(2, [write("t/r1", "c2:1", 15),
                    write("t/r1", "c2:2", 16)],
                commit_ms=16, begin_ms=12),
            txn(3, [read("t/r1", "c2:1", 15)], commit_ms=20, begin_ms=17),
        ], REG)
        report = check(h)
        assert "G1b" in anomaly_types(report)

    def test_garbage_read_flagged(self):
        h = history([
            init_registers(),
            txn(2, [read("t/r1", "never-written", 15)],
                commit_ms=20, begin_ms=16),
        ], REG)
        report = check(h)
        assert "garbage-read" in anomaly_types(report)

    def test_duplicate_write_values_flagged(self):
        h = history([
            init_registers(),
            txn(2, [write("t/r1", "dup", 20)], commit_ms=20, begin_ms=12),
            txn(3, [write("t/r1", "dup", 25)], commit_ms=25, begin_ms=13),
        ], REG)
        report = check(h)
        assert "duplicate-write" in anomaly_types(report)


class TestRealTimeAndStaleness:
    def test_stale_global_read_flagged(self):
        """A strong read beginning after a write was acked must see it
        (commit-wait correctness for GLOBAL tables)."""
        h = history([
            init_registers(),
            txn(2, [write("t/r1", "c2:1", 100)],
                commit_ms=100, begin_ms=90, end_ms=110),
            txn(3, [read("t/r1", "init:r1", 10)],
                commit_ms=130, begin_ms=120),
        ], REG)
        report = check(h)
        assert "stale-strong-read" in anomaly_types(report)

    def test_concurrent_read_may_miss_unacked_write(self):
        """A read that began before the writer's ack is concurrent with
        it — observing the old version is legal."""
        h = history([
            init_registers(),
            txn(2, [write("t/r1", "c2:1", 100)],
                commit_ms=100, begin_ms=90, end_ms=110),
            txn(3, [read("t/r1", "init:r1", 10)],
                commit_ms=130, begin_ms=105, end_ms=132),
        ], REG)
        report = check(h)
        assert "stale-strong-read" not in anomaly_types(report)

    def test_exact_staleness_overshoot_flagged(self):
        """An AS OF SYSTEM TIME read must never observe data newer than
        its timestamp."""
        h = history([
            init_registers(),
            txn(2, [write("t/r1", "c2:1", 80)],
                commit_ms=80, begin_ms=70, end_ms=90),
            txn(-1, [read("t/r1", "c2:1", 80)], mode="exact",
                requested_ms=50, begin_ms=200, label="stale"),
        ], REG)
        report = check(h)
        assert "stale-read-too-new" in anomaly_types(report)

    def test_bounded_staleness_bound_violation_flagged(self):
        h = history([
            init_registers(),
            txn(-1, [read("t/r1", "init:r1", 10)], mode="bounded",
                requested_ms=50, effective_ms=40, begin_ms=200,
                label="stale"),
        ], REG)
        report = check(h)
        assert "staleness-bound-violated" in anomaly_types(report)

    def test_stale_read_missing_covered_write_flagged(self):
        """Reading at ts=100 must observe a write with commit_ts 80 that
        was acked long before the statement began."""
        h = history([
            init_registers(),
            txn(2, [write("t/r1", "c2:1", 80)],
                commit_ms=80, begin_ms=70, end_ms=90),
            txn(-1, [read("t/r1", "init:r1", 10)], mode="exact",
                requested_ms=100, begin_ms=200, label="stale"),
        ], REG)
        report = check(h)
        assert "staleness-missed-write" in anomaly_types(report)

    def test_clean_stale_read_passes(self):
        h = history([
            init_registers(),
            txn(2, [write("t/r1", "c2:1", 80)],
                commit_ms=80, begin_ms=70, end_ms=90),
            txn(-1, [read("t/r1", "init:r1", 10)], mode="exact",
                requested_ms=50, begin_ms=200, label="stale"),
        ], REG)
        assert check(h).ok

    def test_non_monotonic_session_flagged(self):
        h = history([
            init_registers(),
            txn(2, [write("t/r1", "c2:1", 100)],
                commit_ms=100, begin_ms=90, end_ms=101),
            txn(3, [read("t/r1", "c2:1", 100)],
                commit_ms=120, begin_ms=102, label="sess"),
            txn(4, [read("t/r1", "init:r1", 10)],
                commit_ms=140, begin_ms=103, label="sess"),
        ], REG)
        report = check(h)
        assert "non-monotonic-session" in anomaly_types(report)


class TestFinalState:
    def test_lost_acked_append_flagged(self):
        h = history([
            txn(1, [write("t/l1", [], 10)], commit_ms=10, begin_ms=5,
                label="init"),
            txn(2, [read("t/l1", [], 10),
                    write("t/l1", ["a"], 20)], commit_ms=20, begin_ms=12),
        ], LISTS, final={"t/l1": []})
        report = check(h)
        types = anomaly_types(report)
        assert "lost-write" in types
        assert "final-state-divergence" in types

    def test_incompatible_order_flagged(self):
        """Data-derived list order contradicting commit timestamps is
        itself serializability evidence."""
        h = history([
            txn(1, [write("t/l1", [], 10)], commit_ms=10, begin_ms=5,
                label="init"),
            txn(2, [write("t/l1", ["a"], 30)], commit_ms=30, begin_ms=12),
            txn(3, [write("t/l1", ["a", "b"], 20)],
                commit_ms=20, begin_ms=12),
        ], LISTS)
        report = check(h)
        assert "incompatible-order" in anomaly_types(report)


class TestCleanHistories:
    def test_serial_rmw_history_passes(self):
        h = history([
            init_registers(),
            txn(2, [read("t/r1", "init:r1", 10),
                    write("t/r1", "c2:1", 20)],
                commit_ms=20, begin_ms=12),
            txn(3, [read("t/r1", "c2:1", 20),
                    write("t/r1", "c3:1", 30)],
                commit_ms=30, begin_ms=25),
        ], REG, final={"t/r1": "c3:1", "t/r2": "init:r2"})
        report = check(h)
        assert report.ok, report.render()
        assert report.stats["txns_committed"] == 3

    def test_clean_list_appends_pass(self):
        h = history([
            txn(1, [write("t/l1", [], 10)], commit_ms=10, begin_ms=5,
                label="init"),
            txn(2, [read("t/l1", [], 10),
                    write("t/l1", ["a"], 20)], commit_ms=20, begin_ms=12),
            txn(3, [read("t/l1", ["a"], 20),
                    write("t/l1", ["a", "b"], 30)],
                commit_ms=30, begin_ms=22),
        ], LISTS, final={"t/l1": ["a", "b"]})
        report = check(h)
        assert report.ok, report.render()

    def test_read_own_write_not_an_edge(self):
        h = history([
            init_registers(),
            txn(2, [write("t/r1", "c2:1", 20),
                    read("t/r1", "c2:1", 20, from_intent=True)],
                commit_ms=20, begin_ms=12),
        ], REG)
        assert check(h).ok

    def test_observed_indeterminate_commit_promoted(self):
        """An ambiguous commit whose write is observed actually
        committed; the checker folds it into the serial order."""
        h = history([
            init_registers(),
            txn(2, [write("t/r1", "c2:1", 20)], status="indeterminate",
                commit_ms=20, begin_ms=12),
            txn(3, [read("t/r1", "c2:1", 20)], commit_ms=30, begin_ms=25),
        ], REG, final={"t/r1": "c2:1", "t/r2": "init:r2"})
        report = check(h)
        assert report.ok, report.render()
        assert report.stats["promoted_indeterminate"] == 1

    def test_unobserved_indeterminate_ignored(self):
        h = history([
            init_registers(),
            txn(2, [write("t/r1", "c2:1", 20)], status="indeterminate",
                commit_ms=20, begin_ms=12),
            txn(3, [read("t/r1", "init:r1", 10)],
                commit_ms=30, begin_ms=25),
        ], REG, final={"t/r1": "init:r1", "t/r2": "init:r2"})
        report = check(h)
        assert report.ok, report.render()
        assert report.stats["promoted_indeterminate"] == 0


class TestDeterminismAndReplay:
    def test_report_is_byte_identical_after_json_round_trip(self):
        h = history([
            init_registers(),
            txn(2, [read("t/r1", "init:r1", 10),
                    write("t/r2", "c2:1", 20)],
                commit_ms=20, begin_ms=15),
            txn(3, [read("t/r2", "init:r2", 10),
                    write("t/r1", "c3:1", 21)],
                commit_ms=21, begin_ms=15),
        ], REG)
        first = check(h).dumps()
        replayed = check(VerifyHistory.loads(h.dumps())).dumps()
        assert first == replayed
        assert not check(h).ok

    def test_checking_does_not_mutate_history(self):
        h = history([
            init_registers(),
            txn(2, [write("t/r1", "c2:1", 20)], status="indeterminate",
                commit_ms=20, begin_ms=12),
            txn(3, [read("t/r1", "c2:1", 20)], commit_ms=30, begin_ms=25),
        ], REG, final={"t/r1": "c2:1", "t/r2": "init:r2"})
        before = h.dumps()
        check(h)
        assert h.dumps() == before

    def test_anomalies_sorted_deterministically(self):
        h = history([
            init_registers(),
            txn(2, [read("t/r1", "junk1", 15),
                    read("t/r2", "junk2", 15)],
                commit_ms=20, begin_ms=16),
        ], REG)
        report = check(h)
        keys = [a.sort_key() for a in report.anomalies]
        assert keys == sorted(keys)
        assert len(report.anomalies) == 2
