"""Tier-2 differential verification sweep for the epoch-OCC backend.

Run with ``pytest -m verify_occ``.  The same Elle-style checker that
audits the CRDB pipeline runs the identical seeded workloads and
nemesis schedules against :class:`~repro.txn.epoch.EpochOccProtocol`;
every history must come back anomaly-free.  The honest-falsification
half runs the validation-off ablation, which only passes if the
checker *does* convict the blind epoch commits of lost updates /
write-order anomalies — proving the checker can see exactly the bugs
validation exists to prevent.
"""

import pytest

from repro.verify import (
    OCC_ABLATION_SCENARIO,
    OCC_SWEEP_SCENARIOS,
    run_verify,
)
from repro.verify.generator import OCC_ABLATION_REQUIRED_TYPES

SEEDS = range(5)

pytestmark = pytest.mark.verify_occ


@pytest.mark.parametrize("scenario", OCC_SWEEP_SCENARIOS)
@pytest.mark.parametrize("seed", SEEDS)
def test_epoch_occ_history_is_anomaly_free(scenario, seed):
    result = run_verify(scenario, seed=seed, protocol="epoch-occ")
    assert result.ok, (
        f"{scenario} seed={seed} (epoch-occ) found anomalies:\n"
        f"{result.report.render()}\n"
        f"--- replayable history ---\n{result.history.dumps()}")
    assert result.history.meta.get("protocol") == "epoch-occ"


@pytest.mark.parametrize("seed", SEEDS)
def test_validation_off_ablation_is_convicted(seed):
    """With validation disabled the checker must find real anomalies —
    a sweep that cannot fail the broken variant proves nothing."""
    result = run_verify(OCC_ABLATION_SCENARIO, seed=seed)
    found = {a.type for a in result.report.anomalies}
    assert found & OCC_ABLATION_REQUIRED_TYPES, (
        f"validation-off ablation seed={seed} produced no lost-update/"
        f"write-order anomalies (found {sorted(found)}): the checker "
        f"would not catch a broken validator")
    assert result.ok, (
        f"ablation seed={seed} flagged unexpected anomaly types "
        f"{sorted(found)}:\n{result.report.render()}")


def test_occ_run_is_deterministic():
    a = run_verify("crash-restart", seed=0, protocol="epoch-occ")
    b = run_verify("crash-restart", seed=0, protocol="epoch-occ")
    assert a.history.dumps() == b.history.dumps()
    assert a.report.dumps() == b.report.dumps()
