"""Tier-2 clock-fault sweep: chaos scenarios + the fencing ablation.

Run with ``pytest -m clock``.  The sweep is the honest-falsification
half of the clock-safety subsystem: the *identical* beyond-bound clock
jump must (a) produce real, checker-visible staleness anomalies when
fencing is disabled, and (b) produce zero anomalies — at the measured
cost of fencing the victim and repairing around it — when the defense
is on.  If (a) ever comes back clean the defense is untestable and the
fenced runs prove nothing.
"""

import pytest

from repro.chaos import run_scenario
from repro.verify import run_verify
from repro.verify.generator import REALTIME_ANOMALY_TYPES

pytestmark = pytest.mark.clock

SEEDS = range(3)

CHAOS_CLOCK_SCENARIOS = [
    "clock-drift", "clock-jump-fence", "clock-freeze-lease"]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", CHAOS_CLOCK_SCENARIOS)
def test_chaos_clock_scenarios_hold_invariants(name, seed):
    result = run_scenario(name, seed)
    assert result.ok, f"{name} seed={seed}\n{result.render()}"
    if name == "clock-drift":
        # In-contract drift must never trip the fence.
        assert result.stats["clock_fences"] == 0
    else:
        assert result.stats["clock_fences"] >= 1


@pytest.mark.parametrize("seed", SEEDS)
def test_defended_jump_fences_and_stays_anomaly_free(seed):
    result = run_verify("clock-jump", seed=seed)
    assert result.ok, result.report.render()
    assert not result.report.anomalies
    assert result.stats["clock_fences"] >= 1
    assert result.stats["repair_actions"] >= 1, (
        "the replicate queue must repair around the fenced node")


@pytest.mark.parametrize("seed", SEEDS)
def test_fencing_ablation_surfaces_real_anomalies(seed):
    result = run_verify("clock-jump-nofence", seed=seed)
    types = {a.type for a in result.report.anomalies}
    assert types, (
        "undefended beyond-bound jump produced no anomalies — the "
        "ablation no longer demonstrates what fencing prevents")
    assert types <= REALTIME_ANOMALY_TYPES, (
        f"unexpected anomaly classes {types - REALTIME_ANOMALY_TYPES}:\n"
        f"{result.report.render()}")
    assert result.ok  # expect_anomalies verdict: checker caught it
    assert result.stats["clock_fences"] == 0
    assert result.stats["clock_outliers"] >= 1, (
        "the monitor should still *measure* the outlier it ignores")


@pytest.mark.parametrize("seed", SEEDS)
def test_in_contract_drift_is_invisible(seed):
    result = run_verify("clock-drift", seed=seed)
    assert result.ok, result.report.render()
    assert not result.report.anomalies
    assert result.stats["clock_fences"] == 0
