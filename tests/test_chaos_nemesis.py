"""Nemesis scenario tests: timed fault schedules against a
REGION-survivable range, audited Jepsen-style.

The quick tests run one seed of the flagship scenarios as part of
tier 1.  The exhaustive all-scenarios x 5-seeds sweep is marked
``chaos`` and excluded by default — run it with ``pytest -m chaos``
or ``python scripts/chaos_sweep.py``.
"""

import pytest

from repro.chaos import (
    SCENARIOS,
    availability_timeline,
    check_history,
    run_scenario,
)
from repro.chaos.invariants import OK, History, OpRecord


class TestInvariantChecker:
    def test_clean_history_passes(self):
        history = History()
        history.record(OpRecord("c1", "inc", "k", 0.0, 10.0, OK))
        history.record(OpRecord("c1", "read", "k", 20.0, 30.0, OK, value=1))
        report = check_history(history, {"k": 1})
        assert report.ok

    def test_lost_write_detected(self):
        history = History()
        for i in range(3):
            history.record(OpRecord("c1", "inc", "k", i * 10.0,
                                    i * 10.0 + 5.0, OK))
        report = check_history(history, {"k": 2})
        assert not report.ok
        assert any("lost writes" in v for v in report.violations)

    def test_dirty_read_detected(self):
        history = History()
        history.record(OpRecord("c1", "inc", "k", 0.0, 10.0, OK))
        history.record(OpRecord("c2", "read", "k", 20.0, 30.0, OK, value=5))
        report = check_history(history, {"k": 5})
        assert any("dirty read" in v for v in report.violations)

    def test_stale_strong_read_detected(self):
        history = History()
        history.record(OpRecord("c1", "inc", "k", 0.0, 10.0, OK))
        history.record(OpRecord("c2", "read", "k", 20.0, 30.0, OK, value=0))
        report = check_history(history, {"k": 1})
        assert any("stale strong read" in v for v in report.violations)

    def test_stale_read_exempt_from_recency(self):
        history = History()
        history.record(OpRecord("c1", "inc", "k", 0.0, 10.0, OK))
        history.record(OpRecord("c2", "read", "k", 20.0, 30.0, OK,
                                value=0, stale=True))
        report = check_history(history, {"k": 1})
        assert report.ok


class TestScenariosQuick:
    def test_region_blackout_recovers_without_manual_transfer(self):
        """SURVIVE REGION FAILURE + a home-region blackout: the lease
        must move automatically (DistSender-triggered failover, no
        operator transfer in the scenario) and every invariant holds."""
        result = run_scenario("region-blackout", seed=0)
        assert result.ok, result.report.render()
        assert result.stats["failovers"] >= 1
        counts = result.history.counts()
        assert counts[OK] > 0

    def test_asym_partition_invariants_hold(self):
        """One-way region cut (acks lost, appends flow): the hardest
        scenario for the Raft/lease stack — no acked write may vanish."""
        result = run_scenario("asym-partition", seed=0)
        assert result.ok, result.report.render()

    def test_crash_restart_invariants_hold(self):
        result = run_scenario("crash-restart", seed=0)
        assert result.ok, result.report.render()

    def test_timeline_records_inject_and_heal(self):
        result = run_scenario("crash-restart", seed=1)
        actions = [action for _t, action, _name in result.nemesis_timeline]
        assert "inject" in actions
        assert "heal" in actions


class TestDeterminism:
    """Regression guard for DES reproducibility: the entire simulated
    run — operation history, invariant audit, availability timeline —
    must be a pure function of (scenario, seed).  Replica repair runs
    concurrently with client traffic and must not break this."""

    @pytest.mark.parametrize("name", ["crash-restart", "kill-node-repair"])
    def test_same_seed_twice_is_identical(self, name):
        first = run_scenario(name, seed=1)
        second = run_scenario(name, seed=1)
        assert first.report.violations == second.report.violations
        assert first.report.checks_run == second.report.checks_run
        assert availability_timeline(first.history) == \
            availability_timeline(second.history)
        assert first.nemesis_timeline == second.nemesis_timeline
        assert first.to_json() == second.to_json()

    def test_different_seeds_diverge(self):
        # The seed must actually steer the run (otherwise the identity
        # check above would be vacuous).
        first = run_scenario("crash-restart", seed=1)
        second = run_scenario("crash-restart", seed=2)
        assert [op.end_ms for op in first.history.ops] != \
            [op.end_ms for op in second.history.ops]


@pytest.mark.chaos
@pytest.mark.parametrize("name", sorted(SCENARIOS))
@pytest.mark.parametrize("seed", range(5))
def test_chaos_sweep(name, seed):
    """Exhaustive sweep: every built-in scenario must satisfy every
    invariant across 5 seeds (the PR's acceptance bar)."""
    result = run_scenario(name, seed)
    assert result.ok, f"{name} seed={seed}\n{result.report.render()}"
