"""Store-liveness tests: epoch heartbeats, LIVE/SUSPECT/DEAD gating,
and the aggregate (majority-vote) cluster view."""

import pytest

from repro.cluster import LivenessStatus, StoreLiveness, standard_cluster

REGIONS3 = ["us-east1", "europe-west2", "asia-northeast1"]


def make_liveness(nodes_per_region=2, seed=0, **kwargs):
    cluster = standard_cluster(REGIONS3, nodes_per_region=nodes_per_region,
                               seed=seed)
    defaults = dict(heartbeat_interval_ms=100.0, suspect_after_ms=300.0,
                    time_until_store_dead_ms=600.0)
    defaults.update(kwargs)
    liveness = StoreLiveness(cluster, **defaults)
    liveness.start()
    return cluster, liveness


class TestStatusTransitions:
    def test_steady_state_everyone_live(self):
        cluster, liveness = make_liveness()
        cluster.sim.run(until=1000.0)
        for node in cluster.nodes:
            assert liveness.aggregate_status(node.node_id) == \
                LivenessStatus.LIVE
        assert liveness.heartbeats_sent > 0
        assert liveness.transitions == []

    def test_startup_grace_no_instant_death(self):
        cluster, liveness = make_liveness()
        # Before a single heartbeat interval has elapsed nobody has been
        # heard from, yet nobody may be declared dead or even suspect.
        cluster.sim.run(until=50.0)
        for node in cluster.nodes:
            assert liveness.aggregate_status(node.node_id) == \
                LivenessStatus.LIVE

    def test_crash_goes_suspect_then_dead(self):
        cluster, liveness = make_liveness()
        cluster.sim.run(until=500.0)
        victim = cluster.nodes[0].node_id
        cluster.crash_node(victim)
        crash_at = cluster.sim.now
        # Inside the suspect window: still LIVE (last heartbeat recent).
        cluster.sim.run(until=crash_at + 200.0)
        assert liveness.aggregate_status(victim) == LivenessStatus.LIVE
        # Past suspect_after but before time_until_store_dead: SUSPECT.
        cluster.sim.run(until=crash_at + 450.0)
        assert liveness.aggregate_status(victim) == LivenessStatus.SUSPECT
        # Past time_until_store_dead: DEAD.
        cluster.sim.run(until=crash_at + 800.0)
        assert liveness.aggregate_status(victim) == LivenessStatus.DEAD
        assert victim in liveness.dead_node_ids()
        assert victim not in liveness.live_node_ids()

    def test_transitions_recorded_in_order(self):
        cluster, liveness = make_liveness()
        victim = cluster.nodes[0].node_id

        def probe():
            while True:
                liveness.aggregate_status(victim)
                yield cluster.sim.sleep(50.0)

        cluster.sim.spawn(probe(), name="probe")
        cluster.sim.run(until=500.0)
        cluster.crash_node(victim)
        cluster.sim.run(until=2000.0)
        seen = [(old, new) for _t, nid, old, new in liveness.transitions
                if nid == victim]
        assert seen == [(LivenessStatus.LIVE, LivenessStatus.SUSPECT),
                        (LivenessStatus.SUSPECT, LivenessStatus.DEAD)]

    def test_restart_bumps_epoch_and_revives(self):
        cluster, liveness = make_liveness()
        cluster.sim.run(until=500.0)
        victim = cluster.nodes[0].node_id
        epoch_before = liveness.epoch(victim)
        cluster.crash_node(victim)
        cluster.sim.run(until=cluster.sim.now + 1000.0)
        assert liveness.aggregate_status(victim) == LivenessStatus.DEAD
        cluster.restart_node(victim)
        assert liveness.epoch(victim) == epoch_before + 1
        # A couple of heartbeat intervals later the cluster sees it LIVE
        # again, and the restarted node does not misjudge its peers.
        cluster.sim.run(until=cluster.sim.now + 400.0)
        assert liveness.aggregate_status(victim) == LivenessStatus.LIVE
        for node in cluster.nodes:
            assert liveness.status(node.node_id, from_node_id=victim) == \
                LivenessStatus.LIVE

    def test_partitioned_region_declared_dead_by_majority(self):
        cluster, liveness = make_liveness()
        cluster.sim.run(until=500.0)
        cluster.network.partition_region(REGIONS3[0])
        cluster.sim.run(until=cluster.sim.now + 1000.0)
        cut = cluster.nodes_in_region(REGIONS3[0])
        for node in cut:
            # The majority (two connected regions) outvotes the cut-off
            # region's self-view.
            assert liveness.aggregate_status(node.node_id) == \
                LivenessStatus.DEAD
        survivor = cluster.nodes_in_region(REGIONS3[1])[0]
        assert liveness.aggregate_status(survivor.node_id) == \
            LivenessStatus.LIVE

    def test_per_observer_views_are_directional(self):
        cluster, liveness = make_liveness()
        cluster.sim.run(until=500.0)
        cut = cluster.nodes_in_region(REGIONS3[0])[0]
        observer = cluster.nodes_in_region(REGIONS3[1])[0]
        cluster.network.partition_region(REGIONS3[0])
        cluster.sim.run(until=cluster.sim.now + 1000.0)
        # The outside observer stopped hearing from the cut node...
        assert liveness.status(cut.node_id,
                               from_node_id=observer.node_id) == \
            LivenessStatus.DEAD
        # ...and a store always considers itself live.
        assert liveness.status(cut.node_id, from_node_id=cut.node_id) == \
            LivenessStatus.LIVE


class TestConfigValidation:
    def test_dead_threshold_must_exceed_suspect(self):
        cluster = standard_cluster(REGIONS3, nodes_per_region=1, seed=0)
        with pytest.raises(ValueError):
            StoreLiveness(cluster, heartbeat_interval_ms=100.0,
                          suspect_after_ms=500.0,
                          time_until_store_dead_ms=400.0)

    def test_suspect_defaults_to_multiple_of_interval(self):
        cluster = standard_cluster(REGIONS3, nodes_per_region=1, seed=0)
        liveness = StoreLiveness(cluster, heartbeat_interval_ms=50.0)
        assert liveness.suspect_after_ms == pytest.approx(
            StoreLiveness.SUSPECT_MULTIPLE * 50.0)

    def test_start_is_idempotent(self):
        cluster, liveness = make_liveness()
        processes_before = liveness.heartbeats_sent
        liveness.start()
        cluster.sim.run(until=300.0)
        # Heartbeat volume reflects one loop per node, not two: with
        # 6 nodes each heartbeating 5 peers every 100ms for ~3 ticks,
        # doubled loops would overshoot this bound.
        assert liveness.heartbeats_sent <= 6 * 5 * 4
