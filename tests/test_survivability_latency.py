"""§2.2's latency contract for survivability goals.

"REGION survivability ... comes at a cost: write latency is increased
by at least the round-trip time to the nearest region. Read performance
is unaffected."
"""

import pytest

from .kv_util import KVTestBed, REGIONS5

PRIMARY = "us-east1"


def _latencies(goal):
    bed = KVTestBed(regions=REGIONS5, goal=goal, jitter_fraction=0.0)
    rng = bed.make_range(PRIMARY)
    _, write_ms = bed.do_write(PRIMARY, rng, "k", "v")
    # Let intent resolution finish (under REGION survival it needs a
    # cross-region quorum; a read racing it would block on the lock —
    # tail behaviour, not the steady-state §2.2 talks about).
    bed.settle(500.0)
    _, read_ms = bed.do_read(PRIMARY, rng, "k")
    return write_ms, read_ms


class TestSurvivabilityLatency:
    def test_zone_survival_writes_local(self):
        write_ms, _read = _latencies("zone")
        assert write_ms < 10.0

    def test_region_survival_writes_pay_nearest_region_rtt(self):
        write_ms, _read = _latencies("region")
        # Nearest region to us-east1 is us-west1 (63 ms RTT): the quorum
        # (3 of 5, two voters local) needs one remote ack.
        assert write_ms >= 63.0
        # But not the furthest region's RTT: quorum, not full replication.
        assert write_ms < 150.0

    def test_reads_unaffected_by_goal(self):
        _w_zone, read_zone = _latencies("zone")
        _w_region, read_region = _latencies("region")
        assert read_zone < 10.0
        assert read_region < 10.0

    def test_commit_acknowledged_before_full_replication(self):
        """The quorum ack (not the furthest replica) gates the client."""
        bed = KVTestBed(regions=REGIONS5, goal="region",
                        jitter_fraction=0.0)
        rng = bed.make_range(PRIMARY)
        _, write_ms = bed.do_write(PRIMARY, rng, "k", "v")
        furthest_one_way = rng.replicate_latency_ms()
        assert write_ms < 2 * furthest_one_way
