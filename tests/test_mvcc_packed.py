"""Packed version-array invariants: extract/absorb round trips.

``_KeyHistory`` stores versions as four parallel columns (physical,
logical, synthetic, value) instead of a list of ``Version`` objects.
Range splits and merges move whole histories between stores via
``extract``/``absorb`` — these tests pin that the packed columns
survive the move bit-for-bit, including logical tiebreaks, synthetic
bits, tombstone values, and pending intents.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.sim.clock import Timestamp
from repro.storage.mvcc import MVCCStore


def _populate(store, keys, rng):
    """Write a messy, out-of-order history per key; return the expected
    (ts, value) list per key sorted the way MVCC orders versions."""
    expected = {}
    for key in keys:
        rows = []
        for i in range(rng.randrange(1, 8)):
            ts = Timestamp(float(rng.randrange(1, 50)), rng.randrange(3),
                           synthetic=rng.random() < 0.2)
            if any(ts.key() == t.key() for t, _ in rows):
                continue  # same (physical, logical) would overwrite
            value = None if rng.random() < 0.2 else f"{key}@{i}"
            rows.append((ts, value))
        random.Random(rng.random()).shuffle(rows)
        for ts, value in rows:
            store.put_committed(key, ts, value)
        expected[key] = sorted(rows, key=lambda r: r[0].key())
    return expected


def _snapshot(store, keys):
    out = {}
    for key in keys:
        out[key] = [(v.ts.physical, v.ts.logical, v.ts.synthetic, v.value)
                    for v in store._history(key).versions]
    return out


def test_split_round_trip_preserves_packed_columns():
    rng = random.Random(42)
    left = MVCCStore()
    keys = [f"k{i:03d}" for i in range(40)]
    expected = _populate(left, keys, rng)
    before = _snapshot(left, keys)

    # Split at the median key, as a range split does.
    split = keys[20]
    right = MVCCStore()
    right.absorb(left.extract(lambda k: k >= split))

    assert sorted(left.keys()) == keys[:20]
    assert sorted(right.keys()) == keys[20:]
    after = {**_snapshot(left, keys[:20]), **_snapshot(right, keys[20:])}
    assert after == before

    # Reads still bisect correctly on the moved packed columns.
    for key in keys:
        store = left if key < split else right
        for ts, value in expected[key]:
            assert store.get(key, ts).value == value

    # Merge back (right absorbed into left) restores the original.
    left.absorb(right.extract(lambda _key: True))
    assert _snapshot(left, keys) == before


def test_split_moves_intents_intact():
    left = MVCCStore()
    left.put_committed("a", Timestamp(1.0), "old")
    left.put_intent("a", Timestamp(5.0), "new", txn_id=7, anchor_node_id=3)
    right = MVCCStore()
    right.absorb(left.extract(lambda k: True))
    intent = right.intent_for("a")
    assert intent is not None
    assert intent.txn_id == 7 and intent.anchor_node_id == 3
    assert right.resolve_intent("a", txn_id=7, commit_ts=Timestamp(5.0))
    assert right.get("a", Timestamp(6.0)).value == "new"


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_extract_absorb_round_trip_property(seed):
    rng = random.Random(seed)
    src = MVCCStore()
    keys = [f"k{i}" for i in range(10)]
    _populate(src, keys, rng)
    before = _snapshot(src, keys)
    moved = src.extract(lambda k: hash(k) % 2 == 0)
    dst = MVCCStore()
    dst.absorb(moved)
    merged = {}
    merged.update(_snapshot(src, list(src.keys())))
    merged.update(_snapshot(dst, list(dst.keys())))
    assert merged == before
