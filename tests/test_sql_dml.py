"""DML semantics tests: inserts, LOS reads, uniqueness, rehoming."""

import pytest

from repro.errors import SchemaError, UniqueViolationError
from repro.sql import REGION_COLUMN

from .sql_util import REGIONS3, connect, make_engine, movr_engine


class TestInsert:
    def test_insert_and_select_by_pk(self):
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (1, 'a@x', 'A')")
        assert session.execute("SELECT name FROM users WHERE id = 1") == \
            [{"name": "A"}]

    def test_insert_homes_row_in_gateway_region(self):
        """§2.3.2: crdb_region defaults to the INSERT's origin region."""
        engine, session = movr_engine()
        west = connect(engine, "us-west1")
        west.execute("INSERT INTO users (id, email, name) "
                     "VALUES (2, 'w@x', 'W')")
        rows = west.execute("SELECT crdb_region FROM users WHERE id = 2")
        assert rows == [{"crdb_region": "us-west1"}]

    def test_hidden_column_not_in_star(self):
        """Hidden columns are invisible to SELECT * but named access works."""
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (3, 'c@x', 'C')")
        star = session.execute("SELECT * FROM users WHERE id = 3")[0]
        assert REGION_COLUMN not in star
        named = session.execute(
            f"SELECT {REGION_COLUMN} FROM users WHERE id = 3")[0]
        assert named[REGION_COLUMN] == "us-east1"

    def test_explicit_region_override(self):
        engine, session = movr_engine()
        session.execute(
            "INSERT INTO users (id, email, name, crdb_region) "
            "VALUES (4, 'e@x', 'E', 'europe-west2')")
        rows = session.execute("SELECT crdb_region FROM users WHERE id = 4")
        assert rows == [{"crdb_region": "europe-west2"}]

    def test_invalid_region_value_rejected(self):
        engine, session = movr_engine()
        with pytest.raises(SchemaError):
            session.execute(
                "INSERT INTO users (id, email, name, crdb_region) "
                "VALUES (5, 'x@x', 'X', 'mars')")

    def test_duplicate_pk_rejected(self):
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (6, 'f@x', 'F')")
        with pytest.raises(UniqueViolationError):
            session.execute("INSERT INTO users (id, email, name) "
                            "VALUES (6, 'other@x', 'F2')")

    def test_duplicate_pk_rejected_across_regions(self):
        """Global PK uniqueness on a partitioned table (§4.1)."""
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (7, 'g@x', 'G')")
        west = connect(engine, "us-west1")
        with pytest.raises(UniqueViolationError):
            west.execute("INSERT INTO users (id, email, name) "
                         "VALUES (7, 'h@x', 'H')")

    def test_global_unique_email_across_regions(self):
        """The movr example: email must be globally unique even though
        the table is partitioned by region and email is not."""
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (8, 'dup@x', 'D1')")
        west = connect(engine, "us-west1")
        with pytest.raises(UniqueViolationError):
            west.execute("INSERT INTO users (id, email, name) "
                         "VALUES (9, 'dup@x', 'D2')")

    def test_not_null_enforced(self):
        engine, session = movr_engine()
        session.execute("CREATE TABLE strict (id int PRIMARY KEY, "
                        "v string NOT NULL)")
        with pytest.raises(SchemaError):
            session.execute("INSERT INTO strict (id) VALUES (1)")

    def test_multi_row_insert(self):
        engine, session = movr_engine()
        count = session.execute(
            "INSERT INTO users (id, email, name) "
            "VALUES (10, 'j@x', 'J'), (11, 'k@x', 'K')")
        assert count == 2


class TestLocalityOptimizedSearch:
    def test_local_hit_is_fast(self):
        """§4.2: a row homed locally is found without leaving the region."""
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (1, 'a@x', 'A')")
        sim = engine.cluster.sim
        start = sim.now
        rows = session.execute("SELECT * FROM users WHERE id = 1")
        assert rows
        assert sim.now - start < 10.0

    def test_remote_row_found_by_fanout(self):
        engine, session = movr_engine()
        west = connect(engine, "us-west1")
        west.execute("INSERT INTO users (id, email, name) "
                     "VALUES (2, 'w@x', 'W')")
        sim = engine.cluster.sim
        start = sim.now
        rows = session.execute("SELECT * FROM users WHERE id = 2")
        elapsed = sim.now - start
        assert rows == [{"id": 2, "email": "w@x", "name": "W"}]
        # Local miss then parallel remote fan-out: at least one WAN RTT.
        assert elapsed >= 63.0

    def test_select_by_unique_email(self):
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (3, 'find@x', 'F')")
        rows = session.execute(
            "SELECT id FROM users WHERE email = 'find@x'")
        assert rows == [{"id": 3}]

    def test_missing_row_returns_empty(self):
        engine, session = movr_engine()
        assert session.execute("SELECT * FROM users WHERE id = 404") == []

    def test_los_disabled_always_fans_out(self):
        """The Unoptimized variant of Fig 4a."""
        engine, session = movr_engine()
        table = engine.catalog.database("movr").table("users")
        table.locality_optimized_search = False
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (4, 'l@x', 'L')")
        sim = engine.cluster.sim
        start = sim.now
        session.execute("SELECT * FROM users WHERE id = 4")
        # Fan-out pays the furthest-region RTT even for a local row.
        assert sim.now - start >= 87.0


class TestComputedRegion:
    def _engine(self):
        engine, session = movr_engine()
        session.execute(
            "CREATE TABLE accounts (id int PRIMARY KEY, state string, "
            "crdb_region crdb_internal_region AS "
            "(CASE WHEN state = 'CA' THEN 'us-west1' ELSE 'us-east1' END) "
            "STORED) LOCALITY REGIONAL BY ROW")
        return engine, session

    def test_computed_column_homes_row(self):
        engine, session = self._engine()
        session.execute(
            "INSERT INTO accounts (id, state) VALUES (1, 'CA')")
        rows = session.execute(
            "SELECT crdb_region FROM accounts WHERE id = 1")
        assert rows == [{"crdb_region": "us-west1"}]

    def test_determinant_in_where_stays_single_region(self):
        """§2.3.2: queries naming the determinant column hit one region."""
        engine, session = self._engine()
        west = connect(engine, "us-west1")
        west.execute("INSERT INTO accounts (id, state) VALUES (2, 'CA')")
        sim = engine.cluster.sim
        start = sim.now
        rows = west.execute(
            "SELECT id FROM accounts WHERE id = 2 AND state = 'CA'")
        assert rows == [{"id": 2}]
        assert sim.now - start < 10.0


class TestUpdateDelete:
    def test_update_by_pk(self):
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (1, 'a@x', 'A')")
        count = session.execute("UPDATE users SET name = 'AA' WHERE id = 1")
        assert count == 1
        assert session.execute("SELECT name FROM users WHERE id = 1") == \
            [{"name": "AA"}]

    def test_update_unique_column_checks_globally(self):
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (1, 'a@x', 'A'), (2, 'b@x', 'B')")
        with pytest.raises(UniqueViolationError):
            session.execute("UPDATE users SET email = 'a@x' WHERE id = 2")

    def test_update_secondary_index_maintained(self):
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (1, 'old@x', 'A')")
        session.execute("UPDATE users SET email = 'new@x' WHERE id = 1")
        assert session.execute(
            "SELECT id FROM users WHERE email = 'new@x'") == [{"id": 1}]
        assert session.execute(
            "SELECT id FROM users WHERE email = 'old@x'") == []

    def test_delete_removes_row_and_index(self):
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (1, 'a@x', 'A')")
        assert session.execute("DELETE FROM users WHERE id = 1") == 1
        assert session.execute("SELECT * FROM users WHERE id = 1") == []
        assert session.execute(
            "SELECT * FROM users WHERE email = 'a@x'") == []

    def test_update_missing_row_zero(self):
        engine, session = movr_engine()
        assert session.execute(
            "UPDATE users SET name = 'X' WHERE id = 404") == 0


class TestRehoming:
    def _engine(self):
        engine, session = movr_engine()
        session.execute(
            "CREATE TABLE events (id int PRIMARY KEY, v string, "
            "crdb_region crdb_internal_region NOT VISIBLE NOT NULL "
            "DEFAULT gateway_region() ON UPDATE rehome_row()) "
            "LOCALITY REGIONAL BY ROW")
        return engine, session

    def test_update_rehomes_row(self):
        """§2.3.2: UPDATEs move the row to the writing region."""
        engine, session = self._engine()
        session.execute("INSERT INTO events (id, v) VALUES (1, 'x')")
        west = connect(engine, "us-west1")
        west.execute("UPDATE events SET v = 'y' WHERE id = 1")
        rows = session.execute(
            "SELECT crdb_region FROM events WHERE id = 1")
        assert rows == [{"crdb_region": "us-west1"}]

    def test_rehomed_row_now_local_to_writer(self):
        engine, session = self._engine()
        session.execute("INSERT INTO events (id, v) VALUES (2, 'x')")
        west = connect(engine, "us-west1")
        west.execute("UPDATE events SET v = 'y' WHERE id = 2")
        sim = engine.cluster.sim
        start = sim.now
        rows = west.execute("SELECT v FROM events WHERE id = 2")
        assert rows == [{"v": "y"}]
        assert sim.now - start < 10.0

    def test_no_rehoming_without_on_update(self):
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (9, 'z@x', 'Z')")
        west = connect(engine, "us-west1")
        west.execute("UPDATE users SET name = 'ZZ' WHERE id = 9")
        rows = session.execute(
            "SELECT crdb_region FROM users WHERE id = 9")
        assert rows == [{"crdb_region": "us-east1"}]


class TestStaleSelects:
    def test_exact_staleness(self):
        engine, session = movr_engine(closed_ts_lag_ms=100.0)
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (1, 'a@x', 'A')")
        sim = engine.cluster.sim
        sim.run(until=sim.now + 4000.0)
        west = connect(engine, "us-west1")
        start = sim.now
        rows = west.execute(
            "SELECT name FROM users AS OF SYSTEM TIME '-2s' WHERE id = 1")
        assert rows == [{"name": "A"}]
        assert sim.now - start < 10.0  # served by local replicas

    def test_max_staleness(self):
        engine, session = movr_engine(closed_ts_lag_ms=100.0)
        session.execute("INSERT INTO promo_codes (code, description) "
                        "VALUES ('P', 'promo')")
        sim = engine.cluster.sim
        sim.run(until=sim.now + 4000.0)
        west = connect(engine, "us-west1")
        rows = west.execute(
            "SELECT description FROM promo_codes "
            "AS OF SYSTEM TIME with_max_staleness('30s') WHERE code = 'P'")
        assert rows == [{"description": "promo"}]

    def test_stale_read_misses_recent_write(self):
        engine, session = movr_engine(closed_ts_lag_ms=100.0)
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (1, 'a@x', 'A')")
        sim = engine.cluster.sim
        sim.run(until=sim.now + 5000.0)
        session.execute("UPDATE users SET name = 'A2' WHERE id = 1")
        rows = session.execute(
            "SELECT name FROM users AS OF SYSTEM TIME '-3s' WHERE id = 1")
        assert rows == [{"name": "A"}]


class TestGlobalTablesSQL:
    def test_global_read_fast_from_all_regions(self):
        engine, session = movr_engine()
        session.execute("INSERT INTO promo_codes (code, description) "
                        "VALUES ('GO', 'x')")
        sim = engine.cluster.sim
        sim.run(until=sim.now + 2000.0)
        for region in REGIONS3:
            client = connect(engine, region)
            start = sim.now
            rows = client.execute(
                "SELECT * FROM promo_codes WHERE code = 'GO'")
            assert rows, region
            assert sim.now - start < 10.0, region

    def test_global_write_slow(self):
        engine, session = movr_engine()
        sim = engine.cluster.sim
        start = sim.now
        session.execute("INSERT INTO promo_codes (code, description) "
                        "VALUES ('W', 'x')")
        assert sim.now - start >= 250.0  # commit wait dominates


class TestTransactions:
    def test_multi_statement_txn(self):
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (1, 'a@x', 'A')")
        sim = engine.cluster.sim

        def body(handle):
            rows = yield from handle.execute(
                "SELECT name FROM users WHERE id = 1")
            name = rows[0]["name"]
            yield from handle.execute(
                f"UPDATE users SET name = '{name}+' WHERE id = 1")
            return name

        process = sim.spawn(session.run_txn_co(body))
        result = sim.run_until_future(process)
        assert result == "A"
        assert session.execute("SELECT name FROM users WHERE id = 1") == \
            [{"name": "A+"}]

    def test_stale_read_rejected_in_txn(self):
        engine, session = movr_engine()
        sim = engine.cluster.sim

        def body(handle):
            yield from handle.execute(
                "SELECT * FROM users AS OF SYSTEM TIME '-1s' WHERE id = 1")

        process = sim.spawn(session.run_txn_co(body))
        with pytest.raises(SchemaError):
            sim.run_until_future(process)
