"""Property-based tests (hypothesis) on core data structures."""

import random

from hypothesis import given, settings, strategies as st

import pytest

from repro.cluster import standard_cluster
from repro.errors import ConfigurationError, StaleReadBoundError
from repro.kv.closedts import DEFAULT_CLOSED_TS_LAG_MS, LagPolicy, LeadPolicy
from repro.kv.distsender import negotiated_timestamp
from repro.placement import Allocator, SurvivalGoal, zone_config_for_home
from repro.sim.clock import Timestamp, TS_ZERO
from repro.sim.core import Simulator
from repro.storage.locktable import WaitGraph
from repro.storage.mvcc import MVCCStore
from repro.storage.tscache import TimestampCache
from repro.workloads.zipf import ZipfGenerator

ts_strategy = st.builds(
    Timestamp,
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    st.integers(min_value=0, max_value=100),
)


class TestTimestampCacheProperties:
    @given(st.lists(st.tuples(ts_strategy,
                              st.integers(min_value=1, max_value=5)),
                    max_size=40),
           ts_strategy,
           st.integers(min_value=1, max_value=5))
    def test_min_write_ts_exceeds_all_foreign_reads(self, reads, proposed,
                                                    writer):
        """The chosen write timestamp is >= every read by another txn."""
        cache = TimestampCache()
        for read_ts, txn in reads:
            cache.record_read("k", read_ts, txn)
        chosen = cache.min_write_ts("k", proposed, writer)
        assert chosen >= proposed
        for read_ts, txn in reads:
            if txn != writer:
                # The serializability invariant: the write lands strictly
                # above every other transaction's read.
                assert chosen > read_ts

    @given(st.lists(ts_strategy, min_size=1, max_size=40))
    def test_high_water_is_max(self, reads):
        cache = TimestampCache()
        for read_ts in reads:
            cache.record_read("k", read_ts, txn_id=None)
        assert cache.high_water("k") == max(reads)

    @given(st.lists(st.tuples(ts_strategy,
                              st.integers(min_value=1, max_value=3)),
                    max_size=30),
           ts_strategy)
    def test_low_water_respected(self, reads, low_water):
        """No write may land at or below the low-water mark, regardless
        of what the per-key entries say (own reads included)."""
        cache = TimestampCache(low_water=low_water)
        for read_ts, txn in reads:
            cache.record_read("k", read_ts, txn)
        for writer in (99, 1, 2, 3):
            assert cache.min_write_ts("k", TS_ZERO, txn_id=writer) > low_water


class TestMVCCProperties:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=50),
                              st.integers(min_value=0, max_value=9)),
                    min_size=1, max_size=50),
           st.integers(min_value=0, max_value=50))
    def test_snapshot_matches_pointwise_reads(self, writes, read_at):
        """snapshot_at(T) agrees with get(key, T) for every key."""
        store = MVCCStore()
        logical = {}
        for physical, value in writes:
            key = f"key-{value % 3}"
            logical[physical] = logical.get(physical, 0) + 1
            store.put_committed(key, Timestamp(float(physical),
                                               logical[physical]), value)
        at = Timestamp(float(read_at), 1 << 20)
        snapshot = store.snapshot_at(at)
        for key in store.keys():
            result = store.get(key, at)
            if result.value is None:
                assert key not in snapshot
            else:
                assert snapshot[key] == result.value

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                    max_size=30))
    def test_resolve_commit_then_read_back(self, physicals):
        """Laying and committing intents sequentially always leaves the
        last committed value visible."""
        store = MVCCStore()
        last_value = None
        ts = Timestamp(0.0)
        for i, physical in enumerate(sorted(physicals)):
            ts = max(ts, Timestamp(float(physical))).next()
            store.put_intent("k", ts, f"v{i}", txn_id=i + 1)
            assert store.resolve_intent("k", i + 1, ts)
            last_value = f"v{i}"
        result = store.get("k", ts)
        assert result.value == last_value


class TestWaitGraphProperties:
    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=8),
                              st.integers(min_value=1, max_value=8)),
                    max_size=30))
    def test_no_cycle_ever_inserted(self, attempts):
        """Following the would_cycle discipline keeps the graph acyclic."""
        graph = WaitGraph()
        edges = []
        for waiter, holder in attempts:
            if waiter == holder:
                continue
            if not graph.would_cycle(waiter, holder):
                graph.add_edge(waiter, holder)
                edges.append((waiter, holder))
        # The final graph must be acyclic: no node reaches itself.
        adjacency = {}
        for waiter, holder in edges:
            adjacency.setdefault(waiter, set()).add(holder)

        def reaches(start, target, seen):
            for nxt in adjacency.get(start, ()):
                if nxt == target:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    if reaches(nxt, target, seen):
                        return True
            return False

        for node in adjacency:
            assert not reaches(node, node, set())


class TestAllocatorProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=3, max_value=6),
           st.integers(min_value=3, max_value=5),
           st.sampled_from([SurvivalGoal.ZONE, SurvivalGoal.REGION]),
           st.integers(min_value=0, max_value=10))
    def test_placement_satisfies_constraints(self, n_regions,
                                             nodes_per_region, goal,
                                             home_index):
        regions = [f"r{i}" for i in range(n_regions)]
        home = regions[home_index % n_regions]
        cluster = standard_cluster(regions,
                                   nodes_per_region=nodes_per_region)
        config = zone_config_for_home(home, regions, goal)
        placement = Allocator(cluster).place(config)

        assert len(placement.voters) == config.num_voters
        assert len(placement.non_voters) == config.num_non_voters
        # No node reused.
        ids = [n.node_id for n in placement.all_nodes()]
        assert len(ids) == len(set(ids))
        # Per-region constraint counts met exactly or exceeded.
        by_region = {}
        for node in placement.all_nodes():
            by_region[node.locality.region] = \
                by_region.get(node.locality.region, 0) + 1
        for region, count in config.constraints.items():
            assert by_region.get(region, 0) >= count
        voters_by_region = {}
        for node in placement.voters:
            voters_by_region[node.locality.region] = \
                voters_by_region.get(node.locality.region, 0) + 1
        for region, count in config.voter_constraints.items():
            assert voters_by_region.get(region, 0) >= count
        # Leaseholder in the preferred region.
        assert placement.leaseholder.locality.region == home


class TestClosedTimestampProperties:
    now_strategy = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)

    @given(st.lists(now_strategy, min_size=1, max_size=40),
           st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False))
    def test_lag_policy_targets_monotone_and_behind(self, nows, lag_ms):
        """A leaseholder's emitted closed timestamps never regress and a
        LAG policy never closes present or future time."""
        policy = LagPolicy(lag_ms=lag_ms)
        emitted = TS_ZERO
        for physical in sorted(nows):
            now = Timestamp(physical, 0)
            target = policy.target(now)
            assert target.physical == now.physical - lag_ms
            assert not target.synthetic
            # <= not <: a lag smaller than one ulp of `now` is absorbed
            # by float rounding.
            assert target <= now
            # The replica publishes max(previous, target): monotone.
            assert max(emitted, target) >= emitted
            emitted = max(emitted, target)

    @given(st.lists(now_strategy, min_size=1, max_size=40),
           st.floats(min_value=0.1, max_value=10_000.0, allow_nan=False))
    def test_lead_policy_targets_ahead_and_synthetic(self, nows, lead_ms):
        """GLOBAL ranges close future time, and must mark it synthetic so
        observers know not to trust it as a real clock reading."""
        policy = LeadPolicy(lead_ms=lead_ms)
        assert policy.leads
        emitted = TS_ZERO
        for physical in sorted(nows):
            now = Timestamp(physical, 0)
            target = policy.target(now)
            assert target.synthetic
            assert target > now
            emitted_next = max(emitted, target)
            assert emitted_next >= emitted
            emitted = emitted_next

    @given(st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
           st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
           st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
           st.floats(min_value=0.0, max_value=500.0, allow_nan=False))
    def test_lead_for_range_covers_every_latency_component(
            self, raft_ms, replicate_ms, offset_ms, side_ms):
        """§6.2.1: the lead must absorb raft commit, replication fan-out,
        clock offset AND the side-transport staleness — dropping any one
        component would let present-time reads block on followers."""
        policy = LeadPolicy.for_range(
            raft_ms, replicate_ms, offset_ms,
            side_transport_interval_ms=side_ms)
        for component in (raft_ms, replicate_ms, offset_ms, side_ms):
            assert policy.lead_ms >= component
        assert policy.lead_ms >= raft_ms + replicate_ms + offset_ms + side_ms
        assert LagPolicy().lag_ms == DEFAULT_CLOSED_TS_LAG_MS


class TestBoundedStalenessNegotiation:
    @given(st.lists(ts_strategy, min_size=1, max_size=12), ts_strategy)
    def test_negotiation_picks_newest_commonly_servable(self, servable,
                                                        min_ts):
        """§5.3.2: the negotiated timestamp is the newest timestamp every
        required replica can serve, and never below the caller's bound."""
        try:
            negotiated = negotiated_timestamp(servable, min_ts)
        except StaleReadBoundError:
            # Rejected exactly when even the weakest replica cannot
            # reach the bound.
            assert min(servable) < min_ts
            return
        assert negotiated == min(servable)
        assert negotiated >= min_ts
        for replica_max in servable:
            assert negotiated <= replica_max

    @given(ts_strategy)
    def test_no_replicas_degrades_to_the_bound(self, min_ts):
        assert negotiated_timestamp([], min_ts) == min_ts

    @given(st.lists(ts_strategy, min_size=1, max_size=12),
           st.lists(ts_strategy, min_size=0, max_size=6), ts_strategy)
    def test_adding_replicas_never_raises_the_timestamp(self, servable,
                                                        extra, min_ts):
        """Widening the read's required replica set can only lower (or
        reject) the negotiated timestamp, never advance it."""
        try:
            base = negotiated_timestamp(servable, min_ts)
        except StaleReadBoundError:
            with pytest.raises(StaleReadBoundError):
                negotiated_timestamp(servable + extra, min_ts)
            return
        try:
            widened = negotiated_timestamp(servable + extra, min_ts)
        except StaleReadBoundError:
            return
        assert widened <= base


class TestZipfProperties:
    @given(st.integers(min_value=2, max_value=500),
           st.integers(min_value=0, max_value=1000))
    def test_draws_in_range(self, n, seed):
        gen = ZipfGenerator(n, seed=seed)
        for _ in range(50):
            assert 0 <= gen.next() < n
