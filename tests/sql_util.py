"""Shared helpers for SQL-layer tests."""

from repro.cluster import standard_cluster
from repro.sql import Engine

REGIONS3 = ["us-east1", "us-west1", "europe-west2"]
REGIONS5 = ["us-east1", "us-west1", "europe-west2", "asia-northeast1",
            "australia-southeast1"]


def make_engine(regions=REGIONS3, nodes_per_region=3, max_clock_offset=250.0,
                skew_fraction=0.5, jitter_fraction=0.0, seed=0, **kwargs):
    cluster = standard_cluster(
        regions, nodes_per_region=nodes_per_region,
        max_clock_offset=max_clock_offset, skew_fraction=skew_fraction,
        jitter_fraction=jitter_fraction, seed=seed)
    return Engine(cluster, **kwargs)


def movr_engine(regions=REGIONS3, **kwargs):
    """An engine with the paper's movr-style schema loaded."""
    engine = make_engine(regions, **kwargs)
    session = engine.connect(regions[0])
    region_list = ", ".join(f'"{r}"' for r in regions[1:])
    session.execute(
        f'CREATE DATABASE movr PRIMARY REGION "{regions[0]}" '
        f"REGIONS {region_list}")
    session.execute(
        "CREATE TABLE users (id int PRIMARY KEY, email string UNIQUE, "
        "name string) LOCALITY REGIONAL BY ROW")
    session.execute(
        "CREATE TABLE promo_codes (code string PRIMARY KEY, "
        "description string) LOCALITY GLOBAL")
    return engine, session


def connect(engine, region, db="movr", index=0):
    session = engine.connect(region, index)
    session.execute(f"USE {db}")
    return session
