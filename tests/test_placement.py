"""Tests for zone configs, survivability translation, and the allocator."""

import pytest

from repro.cluster import standard_cluster
from repro.errors import ConfigurationError
from repro.placement import (
    Allocator,
    SurvivalGoal,
    ZoneConfig,
    provision_range,
    zone_config_for_home,
)
from repro.raft.group import ReplicaType

REGIONS5 = ["us-east1", "us-west1", "europe-west2", "asia-northeast1",
            "australia-southeast1"]


class TestZoneConfig:
    def test_non_voter_count(self):
        config = ZoneConfig(num_replicas=7, num_voters=3)
        assert config.num_non_voters == 4

    def test_rejects_voters_exceeding_replicas(self):
        with pytest.raises(ConfigurationError):
            ZoneConfig(num_replicas=2, num_voters=3)

    def test_rejects_overconstrained_voters(self):
        with pytest.raises(ConfigurationError):
            ZoneConfig(num_replicas=5, num_voters=3,
                       voter_constraints={"a": 2, "b": 2})

    def test_rejects_overconstrained_total(self):
        with pytest.raises(ConfigurationError):
            ZoneConfig(num_replicas=3, num_voters=3,
                       constraints={"a": 2, "b": 2})


class TestSurvivabilityTranslation:
    def test_zone_survival_shape(self):
        """§3.3.2: 3 voters in home, one non-voter per other region."""
        config = zone_config_for_home("us-east1", REGIONS5,
                                      SurvivalGoal.ZONE)
        assert config.num_voters == 3
        assert config.num_replicas == 3 + 4
        assert config.voter_constraints == {"us-east1": 3}
        assert config.lease_preferences == ["us-east1"]
        for region in REGIONS5[1:]:
            assert config.constraints[region] == 1

    def test_zone_survival_placement_restricted(self):
        """§3.3.4: no replicas outside the home region."""
        config = zone_config_for_home("us-east1", REGIONS5,
                                      SurvivalGoal.ZONE,
                                      placement_restricted=True)
        assert config.num_replicas == 3
        assert config.constraints == {"us-east1": 3}

    def test_region_survival_shape(self):
        """§3.3.3: 5 voters, 2 in home, >= 1 replica in every region."""
        config = zone_config_for_home("us-east1", REGIONS5,
                                      SurvivalGoal.REGION)
        assert config.num_voters == 5
        assert config.num_replicas == max(2 + 4, 5)
        assert config.voter_constraints == {"us-east1": 2}
        assert all(config.constraints[r] >= 1 for r in REGIONS5)

    def test_region_survival_three_regions(self):
        config = zone_config_for_home("a", ["a", "b", "c"],
                                      SurvivalGoal.REGION)
        assert config.num_voters == 5
        assert config.num_replicas == 5  # max(2 + 2, 5)

    def test_region_survival_needs_three_regions(self):
        with pytest.raises(ConfigurationError):
            zone_config_for_home("a", ["a", "b"], SurvivalGoal.REGION)

    def test_region_survival_rejects_placement_restricted(self):
        with pytest.raises(ConfigurationError):
            zone_config_for_home("a", ["a", "b", "c"], SurvivalGoal.REGION,
                                 placement_restricted=True)

    def test_home_must_be_a_region(self):
        with pytest.raises(ConfigurationError):
            zone_config_for_home("nowhere", REGIONS5)

    def test_unknown_goal_rejected(self):
        with pytest.raises(ConfigurationError):
            zone_config_for_home("us-east1", REGIONS5, goal="galaxy")


class TestAllocator:
    def test_zone_survival_placement(self):
        cluster = standard_cluster(REGIONS5, nodes_per_region=3)
        config = zone_config_for_home("us-east1", REGIONS5)
        placement = Allocator(cluster).place(config)
        assert len(placement.voters) == 3
        assert all(v.locality.region == "us-east1" for v in placement.voters)
        # Voters spread across distinct zones.
        zones = {v.locality.zone for v in placement.voters}
        assert len(zones) == 3
        # One non-voter in each other region.
        nv_regions = sorted(n.locality.region for n in placement.non_voters)
        assert nv_regions == sorted(REGIONS5[1:])
        assert placement.leaseholder.locality.region == "us-east1"

    def test_region_survival_placement(self):
        cluster = standard_cluster(REGIONS5, nodes_per_region=3)
        config = zone_config_for_home("us-east1", REGIONS5,
                                      SurvivalGoal.REGION)
        placement = Allocator(cluster).place(config)
        home_voters = [v for v in placement.voters
                       if v.locality.region == "us-east1"]
        assert len(home_voters) == 2
        # Every region hosts at least one replica.
        assert sorted(placement.regions()) == sorted(REGIONS5)

    def test_no_node_reuse(self):
        cluster = standard_cluster(REGIONS5, nodes_per_region=3)
        config = zone_config_for_home("us-east1", REGIONS5,
                                      SurvivalGoal.REGION)
        placement = Allocator(cluster).place(config)
        ids = [n.node_id for n in placement.all_nodes()]
        assert len(ids) == len(set(ids))

    def test_unsatisfiable_constraints(self):
        cluster = standard_cluster(["a"], nodes_per_region=2)
        config = ZoneConfig(num_replicas=3, num_voters=3,
                            voter_constraints={"a": 3})
        with pytest.raises(ConfigurationError):
            Allocator(cluster).place(config)

    def test_load_balancing_across_ranges(self):
        """Many ranges with the same config should spread over nodes."""
        cluster = standard_cluster(["a", "b"], nodes_per_region=4,
                                   zones_per_region=4)
        config = zone_config_for_home("a", ["a", "b"])
        for _ in range(8):
            provision_range(cluster, config)
        counts = [len(n.replicas) for n in cluster.nodes_in_region("a")]
        assert max(counts) - min(counts) <= 2


class TestProvision:
    def test_provision_zone_survival(self):
        cluster = standard_cluster(REGIONS5, nodes_per_region=3)
        config = zone_config_for_home("us-east1", REGIONS5)
        rng = provision_range(cluster, config)
        assert len(rng.group.voters()) == 3
        assert len(rng.group.non_voters()) == 4
        assert rng.leaseholder_node.locality.region == "us-east1"
        assert rng.group.quorum_size() == 2

    def test_provision_global_uses_lead_policy(self):
        cluster = standard_cluster(REGIONS5, nodes_per_region=3,
                                   max_clock_offset=250.0)
        config = zone_config_for_home("us-east1", REGIONS5)
        rng = provision_range(cluster, config, global_reads=True)
        assert rng.policy.leads
        # Lead >= L_raft + L_replicate + max_offset; the furthest member
        # from us-east1 is australia (198/2 = 99 ms one-way).
        assert rng.policy.lead_ms >= 99.0 + 250.0

    def test_provision_regional_uses_lag_policy(self):
        cluster = standard_cluster(REGIONS5, nodes_per_region=3)
        config = zone_config_for_home("us-east1", REGIONS5)
        rng = provision_range(cluster, config)
        assert not rng.policy.leads

    def test_zone_survival_tolerates_zone_failure(self):
        cluster = standard_cluster(REGIONS5, nodes_per_region=3)
        config = zone_config_for_home("us-east1", REGIONS5)
        rng = provision_range(cluster, config)
        victim = [v for v in rng.group.voters()
                  if v.node.node_id != rng.leaseholder_node_id][0]
        cluster.network.kill_node(victim.node.node_id)
        assert rng.group.has_quorum()

    def test_zone_survival_does_not_tolerate_region_failure(self):
        cluster = standard_cluster(REGIONS5, nodes_per_region=3)
        config = zone_config_for_home("us-east1", REGIONS5)
        rng = provision_range(cluster, config)
        for node in cluster.nodes_in_region("us-east1"):
            cluster.network.kill_node(node.node_id)
        assert not rng.group.has_quorum()

    def test_region_survival_tolerates_region_failure(self):
        cluster = standard_cluster(REGIONS5, nodes_per_region=3)
        config = zone_config_for_home("us-east1", REGIONS5,
                                      SurvivalGoal.REGION)
        rng = provision_range(cluster, config)
        for node in cluster.nodes_in_region("us-east1"):
            cluster.network.kill_node(node.node_id)
        assert rng.group.has_quorum()
