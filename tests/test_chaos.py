"""Jepsen-lite: randomized operations with fault injection.

Random clients run increments and reads against a REGION-survivable
database while zones die, a whole region fails over, and nodes come
back.  Afterwards we check the safety invariants:

* no lost updates — the final counter values equal the number of
  acknowledged increments per key;
* no dirty/aborted data — every value read corresponds to some
  acknowledged write.
"""

import random

import pytest

from repro.errors import RangeUnavailableError, TransactionRetryError
from repro.kv.distsender import ReadRouting

from .kv_util import KVTestBed, REGIONS3


def failover_partition(bed, rng):
    """Move the lease to any live voter (operator failover)."""
    live = [v for v in rng.group.voters()
            if not bed.cluster.network.node_is_dead(v.node.node_id)]
    if live and rng.group.has_quorum():
        if bed.cluster.network.node_is_dead(rng.leaseholder_node_id):
            rng.transfer_lease(live[0].node.node_id)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_chaos_increments_with_zone_failures(seed):
    """Kill one non-leaseholder zone node mid-run: ZONE survivability
    means nothing is lost and nobody notices."""
    bed = KVTestBed(regions=REGIONS3, seed=seed)
    rng_table = bed.make_range("us-east1")
    keys = [f"k{i}" for i in range(4)]
    for key in keys:
        bed.do_write("us-east1", rng_table, key, 0)
    sim = bed.sim
    rng = random.Random(seed)
    acknowledged = {key: 0 for key in keys}

    def client(region, client_id):
        gateway = bed.gateway(region, client_id)
        for _ in range(5):
            key = rng.choice(keys)

            def txn_fn(txn, key=key):
                value = yield from txn.read(rng_table, key)
                yield from txn.write(rng_table, key, value + 1)
                return key

            result, _ts = yield from bed.coord.run(gateway, txn_fn)
            acknowledged[result] += 1
            yield sim.sleep(rng.uniform(1.0, 20.0))

    gateway_ids = {bed.gateway(region, 0).node_id for region in REGIONS3}

    def chaos():
        yield sim.sleep(30.0)
        victims = [v for v in rng_table.group.voters()
                   if v.node.node_id != rng_table.leaseholder_node_id
                   and v.node.node_id not in gateway_ids]
        if victims:
            bed.cluster.network.kill_node(victims[0].node.node_id)

    processes = [sim.spawn(client(region, 0))
                 for i, region in enumerate(REGIONS3 * 2)]
    processes.append(sim.spawn(chaos()))
    for process in processes:
        sim.run_until_future(process)

    for key in keys:
        value, _ = bed.do_read("us-east1", rng_table, key)
        assert value == acknowledged[key], key


@pytest.mark.parametrize("seed", [3, 4])
def test_chaos_region_failover_region_survivable(seed):
    """REGION survivability: the home region dies mid-run; after lease
    failover every acknowledged increment is still there."""
    bed = KVTestBed(regions=REGIONS3, goal="region", seed=seed)
    rng_table = bed.make_range("us-east1")
    bed.do_write("us-east1", rng_table, "counter", 0)
    bed.settle(1000.0)
    sim = bed.sim
    rng = random.Random(seed)
    acknowledged = [0]
    outage_at = 150.0

    def client(region, client_id):
        gateway = bed.gateway(region, client_id)
        for _ in range(6):
            def txn_fn(txn):
                value = yield from txn.read(rng_table, "counter")
                yield from txn.write(rng_table, "counter", value + 1)

            try:
                yield from bed.coord.run(gateway, txn_fn)
                acknowledged[0] += 1
            except (RangeUnavailableError, TransactionRetryError):
                pass  # unacked: allowed to be absent
            yield sim.sleep(rng.uniform(5.0, 40.0))

    def chaos():
        yield sim.sleep(outage_at)
        for node in bed.cluster.nodes_in_region("us-east1"):
            bed.cluster.network.kill_node(node.node_id)
        failover_partition(bed, rng_table)

    # Clients only in surviving regions (us-east1 gateways die with it).
    processes = [sim.spawn(client(region, i))
                 for i, region in enumerate(
                     ["europe-west2", "asia-northeast1"])]
    processes.append(sim.spawn(chaos()))
    for process in processes:
        sim.run_until_future(process)

    value, _ = bed.do_read("europe-west2", rng_table, "counter")
    assert value == acknowledged[0]
    assert acknowledged[0] > 0


@pytest.mark.parametrize("seed", [5, 6])
def test_chaos_global_table_reads_consistent_through_zone_chaos(seed):
    """GLOBAL table: random zone kills in non-primary regions never
    produce a stale acknowledged read (readers fall back as needed)."""
    bed = KVTestBed(regions=REGIONS3, seed=seed)
    rng_table = bed.make_range("us-east1", global_reads=True)
    bed.do_write("us-east1", rng_table, "k", 0)
    bed.settle(2000.0)
    sim = bed.sim
    rng = random.Random(seed)
    latest = [0]
    violations = []

    def writer():
        gateway = bed.gateway("us-east1")
        for i in range(4):
            def txn_fn(txn, i=i):
                yield from txn.write(rng_table, "k", i + 1)
            yield from bed.coord.run(gateway, txn_fn)
            latest[0] = i + 1
            yield sim.sleep(rng.uniform(20.0, 80.0))

    def reader(region):
        gateway = bed.gateway(region)
        for _ in range(8):
            floor = latest[0]

            def txn_fn(txn):
                value = yield from txn.read(rng_table, "k",
                                            routing=ReadRouting.NEAREST)
                return value

            value, _ts = yield from bed.coord.run(gateway, txn_fn)
            if value < floor:
                violations.append((region, value, floor))
            yield sim.sleep(rng.uniform(10.0, 50.0))

    def chaos():
        yield sim.sleep(100.0)
        # Kill one node in each non-primary region (zone failures).
        for region in ("europe-west2", "asia-northeast1"):
            node = bed.cluster.nodes_in_region(region)[-1]
            bed.cluster.network.kill_node(node.node_id)

    processes = [sim.spawn(writer()),
                 sim.spawn(reader("europe-west2")),
                 sim.spawn(reader("asia-northeast1")),
                 sim.spawn(chaos())]
    for process in processes:
        sim.run_until_future(process)
    assert violations == []
