"""Observability spine tests: metrics registry, tracer, and the
end-to-end acceptance criteria of the tracing PR.

Covers the unit behaviour of ``repro.obs`` (label canonicalisation,
kind collisions, snapshots/diffs, histogram caps, span lifecycle) and
the integration bars: every RPC in a chaos scenario is attributable to
a root span, the movr trace contains an explicit commit-wait span for
the GLOBAL-table write with child-within-parent containment, and two
same-seed runs serialize byte-identical traces and metrics.
"""

import json

import pytest

from repro.chaos import run_scenario
from repro.harness.tracing import run_traced_workload, trace_roots
from repro.obs import (
    MetricsRegistry,
    Tracer,
    containment_violations,
    critical_path,
    render_tree,
    spans_named,
)


class TestMetricsRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        registry.counter("ops").inc()
        registry.counter("ops").inc(2)
        assert registry.value("ops") == 3

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        a = registry.counter("ops", region="us-east1", kind="read")
        b = registry.counter("ops", kind="read", region="us-east1")
        assert a is b
        assert a.key == "ops{kind=read,region=us-east1}"

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6.0

    def test_histogram_summary(self):
        hist = MetricsRegistry().histogram("h")
        for v in [1.0, 2.0, 3.0, 4.0]:
            hist.observe(v)
        s = hist.summary()
        assert s["count"] == 4
        assert s["sum"] == 10.0
        assert s["mean"] == 2.5
        assert s["min"] == 1.0 and s["max"] == 4.0
        assert "truncated" not in s

    def test_histogram_sample_cap_keeps_exact_aggregates(self):
        hist = MetricsRegistry().histogram("h")
        hist.max_samples = 10
        for v in range(100):
            hist.observe(float(v))
        assert len(hist.samples) == 10
        assert hist.count == 100
        assert hist.max == 99.0
        assert hist.truncated
        assert hist.summary()["truncated"] is True

    def test_snapshot_and_diff(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        before = registry.snapshot()
        registry.counter("c").inc(3)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(5.0)
        after = registry.snapshot()
        delta = MetricsRegistry.diff(before, after)
        assert delta["counters"]["c"] == 3
        assert delta["gauges"]["g"] == 7
        assert delta["histograms"]["h"] == {"count": 1, "sum": 5.0}

    def test_instruments_sorted_and_filtered(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a", x="1")
        registry.gauge("c")
        counters = registry.instruments(kind="counter")
        assert [inst.key for inst in counters] == ["a{x=1}", "b"]

    def test_render_prefix_filter(self):
        registry = MetricsRegistry()
        registry.counter("txn.begun").inc()
        registry.counter("net.messages").inc()
        text = registry.render(prefix="txn.")
        assert "txn.begun" in text
        assert "net.messages" not in text


class TestTracer:
    def _tracer(self):
        clock = {"now": 0.0}
        return clock, Tracer(lambda: clock["now"])

    def test_span_ids_start_at_one_and_increment(self):
        _, tracer = self._tracer()
        a = tracer.start_span("a")
        b = tracer.start_span("b", parent=a)
        assert (a.span_id, b.span_id) == (1, 2)
        assert tracer.roots == [a]
        assert a.children == [b]

    def test_finish_is_idempotent(self):
        clock, tracer = self._tracer()
        span = tracer.start_span("op")
        clock["now"] = 10.0
        span.finish()
        clock["now"] = 99.0
        span.finish(late=True)  # late ack: tags merge, end stays put
        assert span.end_ms == 10.0
        assert span.tags["late"] is True
        assert span.duration_ms == 10.0

    def test_containment_violations_flags_escaping_child(self):
        clock, tracer = self._tracer()
        parent = tracer.start_span("p")
        clock["now"] = 5.0
        child = tracer.start_span("c", parent=parent)
        clock["now"] = 8.0
        parent.finish()
        clock["now"] = 12.0
        child.finish()
        problems = containment_violations(parent)
        assert any("ends after" in p for p in problems)

    def test_unfinished_span_reported(self):
        _, tracer = self._tracer()
        root = tracer.start_span("p").finish()
        tracer.start_span("c", parent=root)
        assert any("never finished" in p
                   for p in containment_violations(root))

    def test_critical_path_follows_latest_child(self):
        clock, tracer = self._tracer()
        root = tracer.start_span("root")
        fast = tracer.start_span("fast", parent=root)
        clock["now"] = 1.0
        fast.finish()
        slow = tracer.start_span("slow", parent=root)
        clock["now"] = 9.0
        slow.finish()
        clock["now"] = 10.0
        root.finish()
        assert critical_path(root) == [root, slow]

    def test_max_roots_drops_oldest(self):
        clock = {"now": 0.0}
        tracer = Tracer(lambda: clock["now"], max_roots=2)
        for name in ("a", "b", "c"):
            tracer.start_span(name).finish()
        assert [r.name for r in tracer.roots] == ["b", "c"]
        assert tracer.dropped_roots == 1

    def test_to_json_round_trips(self):
        _, tracer = self._tracer()
        root = tracer.start_span("op", kind="write")
        tracer.start_span("child", parent=root).finish()
        root.finish()
        data = json.loads(tracer.to_json())
        assert data[0]["name"] == "op"
        assert data[0]["tags"] == {"kind": "write"}
        assert data[0]["children"][0]["name"] == "child"

    def test_render_tree_mentions_every_span(self):
        _, tracer = self._tracer()
        root = tracer.start_span("root")
        tracer.start_span("leaf", parent=root).finish()
        root.finish()
        text = render_tree(root)
        assert "root #1" in text and "leaf #2" in text


class TestTracedWorkloads:
    @pytest.fixture(scope="class")
    def movr_engine(self):
        return run_traced_workload("movr", seed=0)

    def test_global_write_has_commit_wait_span(self, movr_engine):
        roots = trace_roots(movr_engine)
        waits = [w for r in roots for w in spans_named(r, "txn.commit_wait")]
        assert waits, "GLOBAL-table write produced no commit-wait span"
        for wait in waits:
            assert wait.duration_ms > 0
            assert wait.tags["waited_ms"] > 0
            # The wait hangs off the commit, under the statement's root.
            assert wait.parent.name == "txn.commit"
            assert wait.root().name == "sql.stmt"

    def test_span_durations_sum_consistently(self, movr_engine):
        roots = trace_roots(movr_engine)
        assert roots
        for root in roots:
            assert containment_violations(root) == []

    def test_every_rpc_attempt_reaches_a_root(self, movr_engine):
        tracer = movr_engine.cluster.sim.obs.tracer
        root_set = set(map(id, tracer.roots))
        attempts = [s for s in tracer.spans() if s.name == "rpc.attempt"]
        assert attempts
        for attempt in attempts:
            assert attempt.parent is not None
            assert id(attempt.root()) in root_set

    def test_kv_workload_traces(self):
        engine = run_traced_workload("kv", seed=0)
        roots = trace_roots(engine)
        assert any(spans_named(r, "kv.write") for r in roots)
        for root in roots:
            assert containment_violations(root) == []

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            run_traced_workload("nope")


class TestDeterminism:
    def test_same_seed_trace_and_metrics_are_byte_identical(self):
        first = run_traced_workload("movr", seed=3)
        second = run_traced_workload("movr", seed=3)
        obs_a = first.cluster.sim.obs
        obs_b = second.cluster.sim.obs
        assert obs_a.tracer.to_json() == obs_b.tracer.to_json()
        assert obs_a.registry.to_json() == obs_b.registry.to_json()

    def test_different_seeds_may_differ_but_stay_well_formed(self):
        engine = run_traced_workload("movr", seed=7)
        for root in trace_roots(engine):
            assert containment_violations(root) == []


class TestChaosAttribution:
    def test_chaos_rpcs_attributable_and_metrics_snapshot_present(self):
        result = run_scenario("crash-restart", seed=0)
        tracer = result.harness.sim.obs.tracer
        attempts = [s for s in tracer.spans() if s.name == "rpc.attempt"]
        assert attempts, "chaos scenario issued no traced RPCs"
        root_set = set(map(id, tracer.roots))
        for attempt in attempts:
            assert attempt.parent is not None, \
                f"orphan rpc.attempt #{attempt.span_id}"
            assert id(attempt.root()) in root_set
        # The scenario result carries the registry snapshot for sweeps.
        snap = result.metrics_snapshot
        assert snap is not None
        assert any(k.startswith("nemesis.events{action=inject")
                   for k in snap["counters"])
        assert any(k.startswith("txn.") for k in snap["counters"])
