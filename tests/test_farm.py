"""The sweep farm's contract: parallel == sequential, byte for byte.

Chaos/verify/scale/bench runs are deterministic from their job
coordinates, so farming them across processes must be invisible in the
output: the merged document from N workers is byte-identical to the
sequential one.  These tests pin that, plus the merge canonicalization
(ordering, nondeterministic-key scrubbing, job expansion).
"""

import json

import pytest

from repro.harness.farm import (
    _scrub,
    default_workers,
    dumps_sweep,
    merge_results,
    run_farm,
    run_job,
    sweep_jobs,
)


class TestMergeCanonicalization:
    def test_merge_orders_by_kind_scenario_seed(self):
        records = [
            {"kind": "verify", "scenario": "none", "seed": 1, "ok": True},
            {"kind": "chaos", "scenario": "b", "seed": 0, "ok": True},
            {"kind": "chaos", "scenario": "a", "seed": 2, "ok": True},
            {"kind": "chaos", "scenario": "a", "seed": 0, "ok": True},
        ]
        doc = merge_results(records)
        coords = [(r["kind"], r["scenario"], r["seed"])
                  for r in doc["runs"]]
        assert coords == sorted(coords)
        assert doc["ok"] and doc["total"] == 4 and doc["failed"] == []

    def test_merge_is_completion_order_independent(self):
        records = [{"kind": "chaos", "scenario": f"s{i}", "seed": i % 3,
                    "ok": i != 4} for i in range(8)]
        import random
        shuffled = records[:]
        random.Random(7).shuffle(shuffled)
        assert dumps_sweep(merge_results(records)) == \
            dumps_sweep(merge_results(shuffled))
        assert merge_results(records)["failed"] == ["chaos/s4/seed=1"]

    def test_scrub_removes_wall_clock_fields_recursively(self):
        record = {"ok": True, "wall_s": 1.23,
                  "report": {"wall_s": 9.9, "events": 10,
                             "runs": [{"pid": 4, "sim_ms": 1.0}]}}
        assert _scrub(record) == {
            "ok": True,
            "report": {"events": 10, "runs": [{"sim_ms": 1.0}]}}

    def test_default_workers(self):
        assert default_workers(3) == 3
        assert default_workers(None) >= 1
        assert default_workers(None) <= 8


class TestJobExpansion:
    def test_sweep_jobs_cross_product(self):
        jobs = sweep_jobs(["verify"], ["none", "crash-restart"], [0, 1, 2])
        assert len(jobs) == 6
        assert {(j["scenario"], j["seed"]) for j in jobs} == {
            (name, seed) for name in ("none", "crash-restart")
            for seed in (0, 1, 2)}

    def test_sweep_jobs_bench_includes_both_obs_modes(self):
        jobs = sweep_jobs(["bench"], ["kv"], [0])
        assert {j["obs"] for j in jobs} == {"full", "off"}

    def test_sweep_jobs_scale_has_no_scenario_axis(self):
        jobs = sweep_jobs(["scale"], None, [0, 1])
        assert jobs == [{"kind": "scale", "seed": 0, "quick": True},
                        {"kind": "scale", "seed": 1, "quick": True}]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            sweep_jobs(["frobnicate"], None, [0])
        with pytest.raises(ValueError):
            run_job({"kind": "frobnicate"})


#: The mandated guard set: seeds {0, 1, 2} x obs {full, off}.  Tiny
#: scale keeps each run sub-second; determinism does not depend on it.
_GUARD_JOBS = [{"kind": "bench", "workload": "kv", "seed": seed,
                "obs": obs, "scale": 0.1}
               for seed in (0, 1, 2) for obs in ("full", "off")]


class TestFarmDeterminism:
    def test_parallel_merge_byte_identical_to_sequential(self):
        sequential = merge_results(run_farm(_GUARD_JOBS, workers=1))
        parallel = merge_results(run_farm(_GUARD_JOBS, workers=2))
        assert dumps_sweep(parallel) == dumps_sweep(sequential)
        # And the document is genuinely free of wall-clock noise.
        assert "wall_s" not in dumps_sweep(parallel)
        assert parallel["total"] == 6 and parallel["ok"]

    def test_bench_jobs_report_only_deterministic_fields(self):
        record = run_job({"kind": "bench", "workload": "kv", "seed": 0,
                          "obs": "off", "scale": 0.1})
        report = record["report"]
        assert "events_per_sec" not in report
        assert "wall_s" not in report
        assert report["events"] > 0 and report["ops"] > 0
        # Same job, same bytes: the per-job payload itself is stable.
        again = run_job({"kind": "bench", "workload": "kv", "seed": 0,
                         "obs": "off", "scale": 0.1})
        assert json.dumps(record, sort_keys=True) == \
            json.dumps(again, sort_keys=True)
