"""Foreign-key validation and the facts/dimensions pattern (§2.3.3)."""

import pytest

from repro.errors import ForeignKeyViolationError

from .sql_util import connect, movr_engine


def setup_tables(session, parent_locality: str):
    session.execute(
        f"CREATE TABLE owners (id int PRIMARY KEY, name string) "
        f"LOCALITY {parent_locality}")
    session.execute(
        "CREATE TABLE pets (id int PRIMARY KEY, "
        "owner_id int REFERENCES owners, name string) "
        "LOCALITY REGIONAL BY ROW")
    session.execute("INSERT INTO owners (id, name) VALUES (1, 'O')")


class TestForeignKeys:
    def test_valid_reference_accepted(self):
        engine, session = movr_engine()
        setup_tables(session, "GLOBAL")
        session.execute(
            "INSERT INTO pets (id, owner_id, name) VALUES (1, 1, 'Rex')")
        rows = session.execute("SELECT name FROM pets WHERE id = 1")
        assert rows == [{"name": "Rex"}]

    def test_missing_parent_rejected(self):
        engine, session = movr_engine()
        setup_tables(session, "GLOBAL")
        with pytest.raises(ForeignKeyViolationError):
            session.execute(
                "INSERT INTO pets (id, owner_id, name) VALUES (2, 99, 'X')")

    def test_rejected_insert_leaves_no_row(self):
        engine, session = movr_engine()
        setup_tables(session, "GLOBAL")
        with pytest.raises(ForeignKeyViolationError):
            session.execute(
                "INSERT INTO pets (id, owner_id, name) VALUES (3, 99, 'X')")
        assert session.execute("SELECT * FROM pets WHERE id = 3") == []

    def test_null_fk_allowed(self):
        engine, session = movr_engine()
        setup_tables(session, "GLOBAL")
        session.execute(
            "INSERT INTO pets (id, owner_id, name) VALUES (4, NULL, 'N')")
        assert session.execute("SELECT * FROM pets WHERE id = 4")

    def test_update_validates_changed_fk(self):
        engine, session = movr_engine()
        setup_tables(session, "GLOBAL")
        session.execute(
            "INSERT INTO pets (id, owner_id, name) VALUES (5, 1, 'P')")
        with pytest.raises(ForeignKeyViolationError):
            session.execute("UPDATE pets SET owner_id = 42 WHERE id = 5")

    def test_update_of_other_columns_skips_fk_check(self):
        engine, session = movr_engine()
        setup_tables(session, "GLOBAL")
        session.execute(
            "INSERT INTO pets (id, owner_id, name) VALUES (6, 1, 'P')")
        # Even if the parent disappears, updating unrelated columns works
        # (no FK re-validation for unchanged columns).
        session.execute("DELETE FROM owners WHERE id = 1")
        assert session.execute(
            "UPDATE pets SET name = 'Q' WHERE id = 6") == 1


class TestFactDimensionPattern:
    """§2.3.3: 'a transaction writing to a REGIONAL BY ROW table and
    reading other tables is only guaranteed to be local if the other
    tables are GLOBAL.'"""

    def _insert_latency(self, parent_locality: str) -> float:
        engine, session = movr_engine()
        setup_tables(session, parent_locality)
        # Remove unrelated costs: pk uniqueness fan-out is suppressed so
        # the FK parent read dominates the measurement.
        engine.catalog.database("movr").table("pets") \
            .suppress_uniqueness_checks = True
        sim = engine.cluster.sim
        sim.run(until=sim.now + 2000.0)
        west = connect(engine, "us-west1")
        start = sim.now
        west.execute(
            "INSERT INTO pets (id, owner_id, name) VALUES (10, 1, 'W')")
        return sim.now - start

    def test_global_dimension_keeps_fact_inserts_local(self):
        global_latency = self._insert_latency("GLOBAL")
        regional_latency = self._insert_latency(
            'REGIONAL BY TABLE IN "us-east1"')
        # GLOBAL parent: the FK read is served by the local replica.
        assert global_latency < 10.0
        # REGIONAL parent homed elsewhere: the FK read crosses the WAN.
        assert regional_latency >= 60.0
