"""Failure injection: survivability goals under zone and region loss."""

import pytest

from repro.errors import RangeUnavailableError
from repro.sql import DEFAULT_PARTITION

from .sql_util import REGIONS3, connect, movr_engine


def kill_region(engine, region):
    for node in engine.cluster.nodes_in_region(region):
        engine.cluster.network.kill_node(node.node_id)


def kill_one_zone_node(engine, rng):
    """Kill a non-leaseholder voter in the range's home region."""
    victims = [v for v in rng.group.voters()
               if v.node.node_id != rng.leaseholder_node_id]
    engine.cluster.network.kill_node(victims[0].node.node_id)


class TestZoneSurvival:
    def test_writes_survive_zone_failure(self):
        engine, session = movr_engine()
        table = engine.catalog.database("movr").table("users")
        rng = table.primary_index.partitions["us-east1"]
        kill_one_zone_node(engine, rng)
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (1, 'a@x', 'A')")
        assert session.execute("SELECT name FROM users WHERE id = 1") == \
            [{"name": "A"}]

    def test_reads_survive_zone_failure(self):
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (1, 'a@x', 'A')")
        table = engine.catalog.database("movr").table("users")
        rng = table.primary_index.partitions["us-east1"]
        kill_one_zone_node(engine, rng)
        assert session.execute("SELECT name FROM users WHERE id = 1") == \
            [{"name": "A"}]

    def test_zone_survival_loses_quorum_on_region_failure(self):
        engine, session = movr_engine()
        table = engine.catalog.database("movr").table("users")
        rng = table.primary_index.partitions["us-west1"]
        kill_region(engine, "us-west1")
        assert not rng.group.has_quorum()

    def test_stale_reads_still_served_after_home_region_failure(self):
        """Partitioned/failed home region: non-voters elsewhere can still
        serve stale reads (paper §6.2.2 for the regional case)."""
        engine, session = movr_engine(closed_ts_lag_ms=100.0)
        west = connect(engine, "us-west1")
        west.execute("INSERT INTO users (id, email, name) "
                     "VALUES (5, 'w@x', 'W')")
        sim = engine.cluster.sim
        sim.run(until=sim.now + 4000.0)
        kill_region(engine, "us-west1")
        east = connect(engine, "us-east1")
        rows = east.execute(
            "SELECT name FROM users AS OF SYSTEM TIME '-2s' "
            "WHERE id = 5 AND crdb_region = 'us-west1'")
        assert rows == [{"name": "W"}]


class TestRegionSurvival:
    def _region_survival_engine(self):
        engine, session = movr_engine()
        session.execute("ALTER DATABASE movr SURVIVE REGION FAILURE")
        return engine, session

    def test_failover_after_home_region_loss(self):
        """With REGION survivability, losing the home region keeps
        quorum; after a lease transfer the partition serves again."""
        engine, session = self._region_survival_engine()
        west = connect(engine, "us-west1")
        west.execute("INSERT INTO users (id, email, name) "
                     "VALUES (2, 'w@x', 'W')")
        table = engine.catalog.database("movr").table("users")
        partitions = [index.partitions["us-west1"]
                      for index in table.indexes]
        kill_region(engine, "us-west1")
        for rng in partitions:
            assert rng.group.has_quorum()
            survivor = [v for v in rng.group.voters()
                        if not engine.cluster.network.node_is_dead(
                            v.node.node_id)][0]
            rng.transfer_lease(survivor.node.node_id)
        east = connect(engine, "us-east1")
        rows = east.execute("SELECT name FROM users WHERE id = 2")
        assert rows == [{"name": "W"}]

    def test_global_table_survives_primary_region_loss(self):
        engine, session = self._region_survival_engine()
        session.execute("INSERT INTO promo_codes (code, description) "
                        "VALUES ('P', 'd')")
        table = engine.catalog.database("movr").table("promo_codes")
        rng = table.primary_index.partitions[DEFAULT_PARTITION]
        kill_region(engine, "us-east1")
        assert rng.group.has_quorum()
        survivor = [v for v in rng.group.voters()
                    if not engine.cluster.network.node_is_dead(
                        v.node.node_id)][0]
        rng.transfer_lease(survivor.node.node_id)
        west = connect(engine, "us-west1")
        rows = west.execute(
            "SELECT description FROM promo_codes WHERE code = 'P'")
        assert rows == [{"description": "d"}]


class TestLeaseTransfers:
    def test_reads_after_lease_transfer_see_data(self):
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (3, 'c@x', 'C')")
        sim = engine.cluster.sim
        sim.run(until=sim.now + 1000.0)
        table = engine.catalog.database("movr").table("users")
        for index in table.indexes:
            rng = index.partitions["us-east1"]
            other = [v for v in rng.group.voters()
                     if v.node.node_id != rng.leaseholder_node_id][0]
            rng.transfer_lease(other.node.node_id)
        assert session.execute("SELECT name FROM users WHERE id = 3") == \
            [{"name": "C"}]

    def test_writes_after_lease_transfer(self):
        engine, session = movr_engine()
        table = engine.catalog.database("movr").table("users")
        for index in table.indexes:
            rng = index.partitions["us-east1"]
            other = [v for v in rng.group.voters()
                     if v.node.node_id != rng.leaseholder_node_id][0]
            rng.transfer_lease(other.node.node_id)
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (4, 'd@x', 'D')")
        assert session.execute("SELECT name FROM users WHERE id = 4") == \
            [{"name": "D"}]

    def test_tscache_low_water_after_transfer(self):
        """The new leaseholder's timestamp cache must cover reads the old
        lease could have served (no write-below-read anomalies)."""
        engine, session = movr_engine()
        table = engine.catalog.database("movr").table("users")
        rng = table.primary_index.partitions["us-east1"]
        old_low = rng.ts_cache.low_water
        other = [v for v in rng.group.voters()
                 if v.node.node_id != rng.leaseholder_node_id][0]
        rng.transfer_lease(other.node.node_id)
        new_clock = other.node.clock
        assert rng.ts_cache.low_water.physical >= \
            new_clock.physical_now()
        assert rng.ts_cache.low_water > old_low
