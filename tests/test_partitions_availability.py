"""Availability under network partitions (§5.3.2, §6.2.2).

The paper: bounded-staleness reads "can improve read availability";
for GLOBAL tables, "Partitioned replicas may still serve stale reads"
while strongly-consistent reads need the leaseholder connection.
"""

import pytest

from repro.errors import StaleReadBoundError, TransactionRetryError
from repro.sim.clock import Timestamp
from repro.sim.network import NetworkUnavailableError

from .kv_util import KVTestBed, REGIONS3
from .sql_util import connect, movr_engine


class TestPartitionedRegionStaleReads:
    def _partitioned_setup(self):
        """Data written and replicated; then the home region is cut off
        from the rest of the world."""
        engine, session = movr_engine(closed_ts_lag_ms=100.0)
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (1, 'a@x', 'A')")
        sim = engine.cluster.sim
        sim.run(until=sim.now + 6000.0)
        engine.cluster.network.partition_region("us-east1")
        return engine, sim

    def test_fresh_read_from_partitioned_minority_fails(self):
        engine, sim = self._partitioned_setup()
        west = connect(engine, "us-west1")
        with pytest.raises((TransactionRetryError,
                            NetworkUnavailableError)):
            west.execute("SELECT name FROM users WHERE id = 1 AND "
                         "crdb_region = 'us-east1'")

    def test_stale_read_still_served_locally(self):
        engine, sim = self._partitioned_setup()
        west = connect(engine, "us-west1")
        start = sim.now
        rows = west.execute(
            "SELECT name FROM users AS OF SYSTEM TIME '-5s' "
            "WHERE id = 1 AND crdb_region = 'us-east1'")
        assert rows == [{"name": "A"}]
        assert sim.now - start < 10.0

    def test_bounded_staleness_still_served_locally(self):
        engine, sim = self._partitioned_setup()
        west = connect(engine, "us-west1")
        rows = west.execute(
            "SELECT name FROM users AS OF SYSTEM TIME "
            "with_max_staleness('30s') "
            "WHERE id = 1 AND crdb_region = 'us-east1'")
        assert rows == [{"name": "A"}]

    def test_heal_restores_fresh_reads(self):
        engine, sim = self._partitioned_setup()
        engine.cluster.network.heal_region("us-east1")
        west = connect(engine, "us-west1")
        rows = west.execute("SELECT name FROM users WHERE id = 1 AND "
                            "crdb_region = 'us-east1'")
        assert rows == [{"name": "A"}]


class TestGlobalTablePartitions:
    def test_partitioned_global_replica_serves_stale_reads(self):
        """§6.2.2: a replica cut off from the leaseholder stops getting
        closed-timestamp updates — fresh reads redirect (and fail across
        the partition) but stale reads keep working."""
        bed = KVTestBed(regions=REGIONS3, jitter_fraction=0.0)
        rng = bed.make_range("us-east1", global_reads=True)
        bed.do_write("us-east1", rng, "k", "v")
        bed.settle(3000.0)
        bed.cluster.network.partition_region("europe-west2")
        sim = bed.sim
        gateway = bed.gateway("europe-west2")

        # Stale (exact staleness) read from the local replica: fine.
        stale_ts = Timestamp(sim.now - 2000.0)

        def stale():
            result = yield bed.ds.exact_staleness_read(
                gateway, rng, "k", stale_ts)
            return result.value

        process = sim.spawn(stale())
        assert sim.run_until_future(process) == "v"

    def test_partitioned_global_replica_fresh_reads_eventually_fail(self):
        """Once cut off, the local closed timestamp stops advancing and
        present-time reads must redirect — which the partition blocks."""
        bed = KVTestBed(regions=REGIONS3, jitter_fraction=0.0)
        rng = bed.make_range("us-east1", global_reads=True)
        bed.do_write("us-east1", rng, "k", "v")
        bed.settle(3000.0)
        bed.cluster.network.partition_region("europe-west2")
        # Let the (previously received) closed-timestamp lead expire.
        bed.settle(5000.0)
        sim = bed.sim
        gateway = bed.gateway("europe-west2")

        from repro.kv.distsender import ReadRouting

        def fresh():
            try:
                yield bed.ds.read(gateway, rng, "k",
                                  gateway.clock.now(),
                                  routing=ReadRouting.NEAREST)
            except NetworkUnavailableError:
                return "unreachable"
            return "served"

        process = sim.spawn(fresh())
        assert sim.run_until_future(process) == "unreachable"
