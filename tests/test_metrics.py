"""Tests for latency recording, summaries, CDFs, and result tables."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics import LatencyRecorder, ResultTable, Summary, cdf_points


class TestSummary:
    def test_empty(self):
        summary = Summary([])
        assert summary.count == 0
        assert summary.p50 == 0.0

    def test_single_sample(self):
        summary = Summary([42.0])
        assert summary.count == 1
        assert summary.p50 == 42.0
        assert summary.max == 42.0

    def test_percentile_ordering(self):
        samples = list(range(1, 101))
        summary = Summary(samples)
        assert summary.p50 <= summary.p90 <= summary.p95 <= summary.p99 \
            <= summary.max

    def test_known_values(self):
        summary = Summary([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.p50 == 3.0
        assert summary.mean == 3.0
        assert summary.min == 1.0

    def test_row_keys(self):
        row = Summary([1.0]).row()
        assert set(row) == {"count", "mean", "p50", "p90", "p95", "p99",
                            "max"}

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200))
    def test_property_bounds(self, samples):
        summary = Summary(samples)
        assert summary.min <= summary.p50 <= summary.max
        assert min(samples) == summary.min
        assert max(samples) == summary.max

    def test_empty_row_is_all_zero(self):
        row = Summary([]).row()
        assert row == {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                       "p95": 0.0, "p99": 0.0, "max": 0.0}

    def test_single_sample_all_percentiles_equal(self):
        summary = Summary([7.5])
        assert summary.p50 == summary.p90 == summary.p95 == summary.p99 \
            == summary.max == 7.5
        assert summary.mean == 7.5

    def test_duplicate_latencies(self):
        summary = Summary([3.0] * 50)
        assert summary.count == 50
        assert summary.min == summary.p50 == summary.p99 == summary.max \
            == 3.0
        assert summary.mean == 3.0


class TestCdfPoints:
    def test_empty(self):
        assert cdf_points([]) == []

    def test_monotone(self):
        points = cdf_points([5.0, 1.0, 3.0, 2.0, 4.0])
        latencies = [p[0] for p in points]
        fractions = [p[1] for p in points]
        assert latencies == sorted(latencies)
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_downsampling(self):
        points = cdf_points(list(range(10_000)), points=50)
        assert len(points) <= 50

    def test_single_sample(self):
        assert cdf_points([4.0]) == [(4.0, 1.0)]

    def test_points_exceeding_samples(self):
        points = cdf_points([1.0, 2.0, 3.0], points=100)
        assert [p[0] for p in points] == [1.0, 2.0, 3.0]
        assert points[-1][1] == 1.0

    def test_duplicate_latencies_stay_monotone(self):
        points = cdf_points([5.0, 5.0, 5.0, 1.0])
        fractions = [p[1] for p in points]
        assert fractions == sorted(fractions)
        assert points[-1] == (5.0, 1.0)


class TestLatencyRecorder:
    def test_record_and_fetch(self):
        recorder = LatencyRecorder()
        recorder.record(("read", "local"), 1.0)
        recorder.record(("read", "remote"), 100.0)
        recorder.record(("write", "local"), 5.0)
        assert recorder.samples("read") == [1.0, 100.0]
        assert recorder.samples("read", "local") == [1.0]
        assert recorder.count("write") == 1

    def test_prefix_matching(self):
        recorder = LatencyRecorder()
        recorder.record(("read", "local", "us-east1"), 1.0)
        recorder.record(("read", "local", "us-west1"), 2.0)
        assert len(recorder.samples("read", "local")) == 2
        assert recorder.samples("read", "local", "us-west1") == [2.0]

    def test_labels_sorted(self):
        recorder = LatencyRecorder()
        recorder.record(("b",), 1.0)
        recorder.record(("a",), 1.0)
        assert recorder.labels() == [("a",), ("b",)]

    def test_throughput(self):
        recorder = LatencyRecorder()
        recorder.started_at = 0.0
        recorder.finished_at = 2000.0
        for _ in range(10):
            recorder.record(("op",), 1.0)
        assert recorder.throughput_per_s() == pytest.approx(5.0)

    def test_throughput_without_window(self):
        assert LatencyRecorder().throughput_per_s() == 0.0

    def test_merged(self):
        a = LatencyRecorder()
        b = LatencyRecorder()
        a.record(("x",), 1.0)
        b.record(("x",), 2.0)
        merged = a.merged(b)
        assert merged.samples("x") == [1.0, 2.0]

    def test_merged_preserves_widest_window(self):
        # Regression: merged() used to drop started_at/finished_at, so
        # throughput_per_s() on the merged recorder always returned 0.
        a = LatencyRecorder()
        a.started_at, a.finished_at = 100.0, 1100.0
        b = LatencyRecorder()
        b.started_at, b.finished_at = 500.0, 2100.0
        for _ in range(4):
            a.record(("op",), 1.0)
            b.record(("op",), 1.0)
        merged = a.merged(b)
        assert merged.started_at == 100.0
        assert merged.finished_at == 2100.0
        assert merged.throughput_per_s() == pytest.approx(4.0)

    def test_merged_window_with_one_sided_none(self):
        a = LatencyRecorder()
        a.started_at, a.finished_at = 0.0, 1000.0
        b = LatencyRecorder()  # never ran: no window at all
        a.record(("op",), 1.0)
        merged = a.merged(b)
        assert merged.started_at == 0.0
        assert merged.finished_at == 1000.0
        assert merged.throughput_per_s() == pytest.approx(1.0)


class TestResultTable:
    def test_render_contains_rows(self):
        table = ResultTable("t", ["a", "b"])
        table.add_row("x", 1.25)
        text = table.render()
        assert "x" in text
        assert "1.2" in text
        assert "== t ==" in text

    def test_row_arity_checked(self):
        table = ResultTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")
