"""Edge tests for Raft leader→peer message coalescing.

The coalescing window batches appends, commit-index advances and
closed-timestamp heartbeats per follower stream.  These tests pin the
awkward corners: a heartbeat-only batch must still carry a commit
advance, a batch straddling a leadership change must not resurrect a
truncated suffix, and chaos provisioning must leave coalescing off so
fault injection exercises the unbatched protocol.
"""

import pytest

from repro.chaos.scenarios import ChaosHarness
from repro.cluster import standard_cluster
from repro.errors import RangeUnavailableError
from repro.kv.range import Range
from repro.raft.group import RaftGroup, ReplicaType
from repro.sim.clock import Timestamp, TS_ZERO


def ts(physical, logical=0):
    return Timestamp(physical, logical)


def build_group(cluster, nodes, coalesce_ms=None, leader_index=0):
    applied = {node.node_id: [] for node in nodes}

    def apply_fn(node, command):
        applied[node.node_id].append(command)

    group = RaftGroup(cluster.sim, cluster.network, range_id=1,
                      apply_fn=apply_fn, coalesce_ms=coalesce_ms)
    for node in nodes:
        group.add_peer(node, ReplicaType.VOTER)
    group.set_leader(nodes[leader_index].node_id)
    return group, applied


def one_region_cluster(n=3):
    return standard_cluster(["us-east1"], nodes_per_region=n,
                            jitter_fraction=0.0)


def coalesced_batches(cluster):
    return cluster.sim.obs.registry.value("raft.coalesced_batches", range=1)


class TestHeartbeatCarriesCommit:
    def test_heartbeat_only_batch_advances_commit_and_applies(self):
        """A closed-ts heartbeat with no pending appends still teaches a
        follower the commit index (CRDB's side transport does the same:
        idle ranges learn commits from heartbeats, not append traffic)."""
        cluster = one_region_cluster()
        group, applied = build_group(cluster, cluster.nodes, coalesce_ms=2.0)
        cmds = [("cmd", i) for i in range(3)]
        for cmd in cmds:
            group.propose(cmd, TS_ZERO)
        cluster.sim.run()
        assert group.commit_index == 3

        follower = next(p for p in group.peers.values()
                        if p.node.node_id != group.leader_node_id)
        # Roll the follower's commit knowledge back, as if every commit
        # update to it had been lost: the log is intact but unapplied.
        follower.known_commit_index = 0
        follower.applied_index = 0
        applied[follower.node.node_id].clear()

        before = coalesced_batches(cluster)
        group.broadcast_closed_ts(ts(500.0))
        cluster.sim.run()

        # The heartbeat-only batch re-taught the commit index, applied
        # the backlog, and only then advanced the closed timestamp.
        assert follower.known_commit_index == 3
        assert follower.applied_index == 3
        assert applied[follower.node.node_id] == cmds
        assert follower.closed_ts == ts(500.0)
        # One batch per follower stream, nothing per-message.
        n_followers = len(cluster.nodes) - 1
        assert coalesced_batches(cluster) == before + n_followers

    def test_heartbeat_does_not_close_ts_past_unapplied_commit(self):
        """A follower that cannot yet apply up to the heartbeat's commit
        index must not advance its closed timestamp — it would claim
        reads over data it does not hold."""
        cluster = one_region_cluster()
        group, applied = build_group(cluster, cluster.nodes, coalesce_ms=2.0)
        group.propose(("cmd", 0), TS_ZERO)
        cluster.sim.run()

        follower = next(p for p in group.peers.values()
                        if p.node.node_id != group.leader_node_id)
        # Simulate a follower whose log lost its tail (crash before the
        # disk append): the heartbeat's commit index is beyond its log.
        follower.log.clear()
        follower.known_commit_index = 0
        follower.applied_index = 0
        applied[follower.node.node_id].clear()

        group.broadcast_closed_ts(ts(500.0))
        cluster.sim.run()
        assert follower.closed_ts < ts(500.0)
        assert applied[follower.node.node_id] == []


class TestBatchStraddlingTruncation:
    def test_stale_batch_cannot_resurrect_truncated_suffix(self):
        """An old leader's append sits in a coalescing window while a
        failover elects a new leader that proposes a *different* entry
        at the same index.  Whichever batch lands first, every replica
        must converge on the new leader's branch and the stale command
        must never apply."""
        cluster = one_region_cluster()
        nodes = cluster.nodes
        group, applied = build_group(cluster, nodes, coalesce_ms=2.0)

        group.propose(("a",), TS_ZERO)
        cluster.sim.run()
        assert group.commit_index == 1

        # Old leader queues index 2 into its per-follower outboxes…
        f_stale = group.propose(("stale",), TS_ZERO)
        # …then loses leadership before those windows flush.
        group.fail_over(nodes[1].node_id)
        assert f_stale.done
        assert isinstance(f_stale.error, RangeUnavailableError)
        # The new leader writes its own entry at index 2; its appends
        # share outbox windows with the failover resync traffic.
        f_new = group.propose(("new",), TS_ZERO)
        cluster.sim.run()

        assert f_new.done and f_new.error is None
        new_entry = f_new.value
        assert new_entry.index == 2 and new_entry.term == group.term
        assert group.commit_index == 2
        for peer in group.peers.values():
            assert [e.command for e in peer.log] == [("a",), ("new",)]
            assert peer.log[1] is new_entry
            assert applied[peer.node.node_id] == [("a",), ("new",)]

    def test_duplicate_batch_delivery_is_idempotent(self):
        """Retransmitting a committed tail through the coalescing path
        re-acks duplicates instead of double-applying them."""
        cluster = one_region_cluster()
        group, applied = build_group(cluster, cluster.nodes, coalesce_ms=2.0)
        cmds = [("cmd", i) for i in range(2)]
        for cmd in cmds:
            group.propose(cmd, TS_ZERO)
        cluster.sim.run()

        follower = next(p for p in group.peers.values()
                        if p.node.node_id != group.leader_node_id)
        # Re-send everything (crash-restart catch-up path) to a follower
        # that is already fully caught up.
        group.resync_peer(follower.node.node_id)
        cluster.sim.run()
        assert [e.command for e in follower.log] == cmds
        assert applied[follower.node.node_id] == cmds


class TestCoalescingConfiguration:
    def test_chaos_provisioning_leaves_coalescing_off(self):
        """Chaos scenarios must exercise the unbatched protocol: fault
        injection counts and reorders individual messages, and the
        sweeps' expected outputs predate coalescing."""
        harness = ChaosHarness(seed=0)
        assert harness.cluster.raft_coalesce_ms is None
        assert harness.range.group.coalesce_ms is None

    def test_cluster_window_threads_to_provisioned_ranges(self):
        cluster = standard_cluster(["us-east1"], nodes_per_region=3,
                                   jitter_fraction=0.0,
                                   raft_coalesce_ms=0.25)
        rng = Range(cluster)
        assert rng.group.coalesce_ms == 0.25

    def test_coalesced_and_uncoalesced_agree_on_outcome(self):
        """Coalescing changes message count and latency, never results:
        the same proposals commit in the same order to the same logs."""
        outcomes = []
        for coalesce_ms in (None, 1.0):
            cluster = one_region_cluster()
            group, applied = build_group(cluster, cluster.nodes,
                                         coalesce_ms=coalesce_ms)
            for i in range(5):
                group.propose(("cmd", i), TS_ZERO)
            cluster.sim.run()
            outcomes.append((group.commit_index,
                             {nid: list(cmds)
                              for nid, cmds in applied.items()},
                             [e.command for e in group.leader.log]))
        assert outcomes[0] == outcomes[1]
