"""Property-based tests (hypothesis) for the epoch-OCC backend.

Three protocol-level guarantees, each explored over randomized
schedules rather than hand-picked interleavings:

* **Total order** — the epoch service's replicated ordering decisions
  form a total order consistent with what clients observe: epochs in
  the order log strictly increase, no transaction is ordered twice,
  commit timestamps respect epoch order, and no commit is ever
  acknowledged before its epoch's boundary has passed.
* **Exact validation** — an interleaved writer aborts a transaction
  *iff* it wrote into the transaction's read set.  Both directions
  matter: missing aborts are lost updates, spurious aborts are a
  liveness bug the differential sweep would never catch.
* **Epoch wait under clock faults** — the boundary discipline is
  simulator-time (epochs are a property of the service, not of any
  node's clock), so drifting gateway clocks never let an ack slip out
  before the submission's epoch is sealed.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import standard_cluster
from repro.errors import TransactionRetryError, TransactionValidationError
from repro.placement import SurvivalGoal, provision_range, zone_config_for_home
from repro.sim import all_of
from repro.txn import EpochOccProtocol, TransactionCoordinator
from repro.verify import HistoryRecorder

REGIONS = ["us-east1", "europe-west2", "asia-northeast1"]
HOME = "us-east1"
KEYS = ["a", "b", "c", "d"]
INTERVAL_MS = 25.0


def build(seed: int, interval_ms: float = INTERVAL_MS):
    cluster = standard_cluster(REGIONS, seed=seed)
    coord = TransactionCoordinator(
        cluster, protocol=EpochOccProtocol(interval_ms=interval_ms))
    config = zone_config_for_home(HOME, cluster.regions(),
                                  SurvivalGoal.REGION)
    rng = provision_range(cluster, config, name="occ",
                          side_transport_interval_ms=100.0)
    rng.bulk_ingest([(key, 0) for key in KEYS],
                    rng.leaseholder_node.clock.now())
    return cluster, coord, rng


def _increment(coord, rng, key):
    def txn_fn(txn, key=key):
        value = yield from txn.read(rng, key)
        yield from txn.write(rng, key, value + 1)
    return txn_fn


def run_clients(sim, procs):
    """Run until every client process finishes.  A bare ``sim.run()``
    never returns here — the closed-timestamp side transport ticks
    forever — so tests join the clients, exactly like the harnesses."""
    sim.run_until_future(all_of(sim, procs))


class TestEpochTotalOrder:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16),
           ops=st.lists(
               st.tuples(st.integers(min_value=0, max_value=2),   # region
                         st.integers(min_value=0, max_value=3),   # key
                         st.floats(min_value=0.0, max_value=200.0,
                                   allow_nan=False)),             # start
               min_size=2, max_size=8))
    def test_order_log_is_total_and_acks_respect_it(self, seed, ops):
        cluster, coord, rng = build(seed)
        sim = cluster.sim
        recorder = HistoryRecorder(sim)
        coord.recorder = recorder

        def client(region_index, key_index, delay):
            yield sim.sleep(delay)
            yield from coord.run(
                cluster.gateway_for_region(REGIONS[region_index], 0),
                _increment(coord, rng, KEYS[key_index]), max_attempts=8)

        run_clients(sim, [sim.spawn(client(*op)) for op in ops])

        service = cluster.epoch_service
        assert service is not None
        # The order log is a total order: epochs strictly increase and
        # no transaction is ordered twice.
        epochs = [epoch for epoch, _ids in service.order_log]
        assert epochs == sorted(epochs)
        assert len(epochs) == len(set(epochs))
        ordered_ids = [txn_id for _epoch, ids in service.order_log
                       for txn_id in ids]
        assert len(ordered_ids) == len(set(ordered_ids))

        epoch_of = {txn_id: epoch for epoch, ids in service.order_log
                    for txn_id in ids}
        history = recorder.finalize()
        committed = [t for t in history.txns if t.status == "committed"
                     and t.txn_id in epoch_of]
        # Every client op eventually committed (retries allowed).
        assert sum(1 for t in history.txns
                   if t.status == "committed") == len(ops)
        # Commit timestamps respect epoch order, and nothing acks
        # before its epoch's boundary has passed (the epoch wait).
        for txn in committed:
            boundary = (epoch_of[txn.txn_id] + 1) * INTERVAL_MS
            assert txn.end_ms >= boundary
        for first in committed:
            for second in committed:
                if epoch_of[first.txn_id] < epoch_of[second.txn_id]:
                    assert first.commit_ts < second.commit_ts


class TestValidationIsExact:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16),
           read_keys=st.sets(st.sampled_from(KEYS), min_size=1, max_size=3),
           write_keys=st.sets(st.sampled_from(KEYS), min_size=0, max_size=2))
    def test_aborts_iff_writer_hits_read_set(self, seed, read_keys,
                                             write_keys):
        """T1 reads ``read_keys``, then T2 commits writes to
        ``write_keys`` before T1 submits: T1 must fail validation
        exactly when the sets intersect."""
        cluster, coord, rng = build(seed)
        sim = cluster.sim
        gateway = cluster.gateway_for_region(HOME, 0)
        outcome = {}

        def t1():
            # Drive the handle directly (not coord.run) so the abort
            # type is observable: the retry loop's give-up error is a
            # plain TransactionRetryError whatever the last cause was.
            txn = coord.begin(gateway)
            for key in sorted(read_keys):
                yield from txn.read(rng, key)
            # Hold the read set open long enough for T2's commit
            # (local quorum, well under 600ms) to land first.
            yield sim.sleep(600.0)
            yield from txn.write(rng, "t1-marker", 1)
            try:
                yield from txn.commit()
                outcome["t1"] = "committed"
            except TransactionValidationError:
                outcome["t1"] = "validation"
                yield from txn.rollback()
            except TransactionRetryError:
                outcome["t1"] = "retry"
                yield from txn.rollback()

        def t2():
            yield sim.sleep(150.0)
            def txn_fn(txn):
                for key in sorted(write_keys):
                    value = yield from txn.read(rng, key)
                    yield from txn.write(rng, key, value + 1)
                return None
            yield from coord.run(gateway, txn_fn, max_attempts=8)
            outcome["t2"] = "committed"

        run_clients(sim, [sim.spawn(t1()), sim.spawn(t2())])

        assert outcome["t2"] == "committed"
        conflict = bool(read_keys & write_keys)
        expected = "validation" if conflict else "committed"
        assert outcome["t1"] == expected, (
            f"read={sorted(read_keys)} write={sorted(write_keys)} "
            f"conflict={conflict}: t1 -> {outcome['t1']}")


class TestEpochWaitUnderClockFaults:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16),
           drifts=st.lists(st.floats(min_value=-0.04, max_value=0.04,
                                     allow_nan=False),
                           min_size=3, max_size=3),
           ops=st.lists(
               st.tuples(st.integers(min_value=0, max_value=2),
                         st.integers(min_value=0, max_value=3),
                         st.floats(min_value=0.0, max_value=150.0,
                                   allow_nan=False)),
               min_size=1, max_size=6))
    def test_no_ack_before_epoch_boundary(self, seed, drifts, ops):
        """Epoch boundaries are simulator-time: per-region clock drift
        (±4%) must never produce an acknowledgement that precedes the
        submission's sealed epoch boundary."""
        cluster, coord, rng = build(seed)
        sim = cluster.sim
        # Drift one node per region (gateways included) — the epoch
        # machinery must not inherit any node's idea of time.
        for region_index, rate in enumerate(drifts):
            node = cluster.gateway_for_region(REGIONS[region_index], 0)
            cluster.skew.set_drift(node.node_id, rate)
        acks = []

        def client(region_index, key_index, delay):
            yield sim.sleep(delay)
            gateway = cluster.gateway_for_region(REGIONS[region_index], 0)
            txn = coord.begin(gateway)
            value = yield from txn.read(rng, KEYS[key_index])
            yield from txn.write(rng, KEYS[key_index], value + 1)
            try:
                yield from txn.commit()
            except TransactionRetryError:
                yield from txn.rollback()
                return
            acks.append((txn.submitted_at_ms, txn.epoch, sim.now))

        run_clients(sim, [sim.spawn(client(*op)) for op in ops])

        assert acks, "no transaction committed under drift"
        for submitted, epoch, acked in acks:
            boundary = (epoch + 1) * INTERVAL_MS
            assert submitted <= boundary
            # The ack always waits out the epoch remainder (and then
            # ordering/validation/apply), in sim time, drift or not.
            assert acked >= boundary
            assert acked - submitted >= boundary - submitted
