"""Tests for the CLI entry point and catalog primitives."""

import json

import pytest

from repro.__main__ import EXPERIMENTS, main
from repro.errors import SchemaError
from repro.sql.catalog import (
    Catalog,
    Column,
    Database,
    RegionEnum,
    Table,
    TableLocality,
)


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "274.0" in out

    def test_quick_fig4b(self, capsys):
        assert main(["fig4b", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig 4b" in out
        assert "computed" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])


class TestChaosCLI:
    def test_list_scenarios(self, capsys):
        assert main(["chaos", "list"]) == 0
        out = capsys.readouterr().out
        assert "region-blackout" in out
        assert "kill-node-repair" in out
        assert "region-loss-repair" in out

    def test_unknown_scenario_exits_nonzero(self, capsys):
        assert main(["chaos", "not-a-scenario"]) == 2

    def test_clean_run_exits_zero(self, capsys):
        assert main(["chaos", "crash-restart", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "[pass]" in out

    def test_json_report_is_machine_readable(self, capsys):
        assert main(["chaos", "kill-node-repair", "--seed", "0",
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        (run,) = report["runs"]
        assert run["scenario"] == "kill-node-repair"
        assert run["seed"] == 0
        assert run["ops"]["total"] == (run["ops"]["ok"] + run["ops"]["fail"]
                                       + run["ops"]["indeterminate"])
        assert run["violations"] == []
        assert run["stats"]["repair_actions"] >= 1
        assert run["stats"]["max_inflight_changes"] == 1
        assert isinstance(run["wall_s"], float)
        assert any(e["action"] == "inject" for e in run["nemesis_timeline"])


class TestRepairCLI:
    def test_repair_report(self, capsys):
        assert main(["repair", "--scenario", "kill-node-repair",
                     "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "liveness transitions" in out
        assert "replace_dead_voter" in out
        assert "time-to-repair" in out
        assert "max-inflight-changes=1" in out
        assert "=> OK" in out

    def test_unknown_repair_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["repair", "--scenario", "not-a-scenario"])


class TestRegionEnum:
    def test_add_remove(self):
        enum = RegionEnum(["a", "b"])
        enum.add("c")
        assert enum.values() == ["a", "b", "c"]
        enum.remove("b")
        assert enum.values() == ["a", "c"]

    def test_duplicate_add_rejected(self):
        enum = RegionEnum(["a"])
        with pytest.raises(SchemaError):
            enum.add("a")

    def test_remove_missing_rejected(self):
        enum = RegionEnum(["a"])
        with pytest.raises(SchemaError):
            enum.remove("zz")

    def test_read_only_lifecycle(self):
        enum = RegionEnum(["a", "b"])
        enum.set_read_only("b")
        assert enum.is_read_only("b")
        with pytest.raises(SchemaError, match="READ ONLY"):
            enum.validate_writable("b")
        enum.set_read_only("b", False)
        enum.validate_writable("b")  # no raise

    def test_validate_unknown_region(self):
        enum = RegionEnum(["a"])
        with pytest.raises(SchemaError):
            enum.validate_writable("mars")

    def test_remove_clears_read_only(self):
        enum = RegionEnum(["a", "b"])
        enum.set_read_only("b")
        enum.remove("b")
        enum.add("b")
        assert not enum.is_read_only("b")


class TestCatalogStructures:
    def test_database_region_ordering(self):
        database = Database("d", primary_region="p", regions=["a", "p", "b"])
        # Primary first, duplicates collapsed, insertion order kept.
        assert database.regions == ["p", "a", "b"]

    def test_duplicate_table_rejected(self):
        database = Database("d")
        database.add_table(Table("t", database))
        with pytest.raises(SchemaError):
            database.add_table(Table("t", database))

    def test_unknown_table_raises(self):
        database = Database("d")
        with pytest.raises(SchemaError):
            database.table("ghost")

    def test_catalog_database_lookup(self):
        catalog = Catalog()
        catalog.add_database(Database("d"))
        assert catalog.database("d").name == "d"
        with pytest.raises(SchemaError):
            catalog.database("x")
        with pytest.raises(SchemaError):
            catalog.add_database(Database("d"))

    def test_table_columns(self):
        database = Database("d")
        table = Table("t", database)
        table.add_column(Column("a", "int"))
        table.add_column(Column("hidden", "int", visible=False))
        assert table.visible_columns() == ["a"]
        with pytest.raises(SchemaError):
            table.add_column(Column("a", "int"))
        with pytest.raises(SchemaError):
            table.column("zz")

    def test_locality_kinds(self):
        locality = TableLocality(TableLocality.GLOBAL)
        assert locality.is_global
        assert not locality.is_regional_by_row
        locality = TableLocality(TableLocality.REGIONAL_BY_ROW,
                                 column="crdb_region")
        assert locality.is_regional_by_row

    def test_home_region_rules(self):
        database = Database("d", primary_region="p", regions=["a"])
        table = Table("t", database)
        table.locality = TableLocality(TableLocality.GLOBAL)
        assert table.home_region() == "p"
        table.locality = TableLocality(TableLocality.REGIONAL_BY_TABLE,
                                       region="a")
        assert table.home_region() == "a"
        table.locality = TableLocality(TableLocality.REGIONAL_BY_ROW)
        assert table.home_region() is None
