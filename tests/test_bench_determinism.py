"""Determinism guarantees behind the benchmark harness.

Two properties make ``BENCH_results.json`` numbers comparable across
PRs, and both are pinned here:

* **Observability equivalence** — running with observability off is a
  pure fast path: for a fixed seed it must produce byte-identical
  latency samples and final replica state to a fully-instrumented run.
* **Golden snapshots** — a fixed seed and scale always simulates the
  same events.  The goldens in ``tests/goldens/`` freeze event counts,
  simulated time, op counts and latency percentiles; any engine change
  that shifts them is changing *behaviour*, not just speed, and must
  regenerate the goldens deliberately (see :func:`regen_goldens`).
"""

import json
import pathlib

import pytest

from repro.harness.bench import _execute

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"

#: (workload, seed, scale) — small enough to run in a few seconds,
#: large enough to traverse every hot path the benchmarks exercise.
GOLDEN_CONFIGS = [("kv", 0, 0.25), ("movr", 0, 0.2), ("tpcc", 0, 0.25)]


def state_digest(engine):
    """Canonical snapshot of every replica: Raft progress plus the full
    committed MVCC contents, ordered deterministically."""
    rows = []
    for node in engine.cluster.nodes:
        for range_id in sorted(node.replicas):
            replica = node.replicas[range_id]
            peer = replica.range.group.peers[node.node_id]
            store = replica.store
            keys = []
            for key in sorted(store._data, key=repr):
                history = store._data[key]
                keys.append((repr(key),
                             [(v.ts.physical, v.ts.logical, repr(v.value))
                              for v in history.versions],
                             history.intent is not None))
            rows.append((node.node_id, range_id, peer.applied_index,
                         peer.last_index, peer.known_commit_index, keys))
    return rows


def run_fingerprint(workload, seed, scale):
    engine, recorder, _ = _execute(workload, seed, "full", scale, None)
    sim = engine.cluster.sim
    summary = recorder.summary()
    return {
        "workload": workload,
        "seed": seed,
        "scale": scale,
        "events": sim.events_processed,
        "sim_ms": round(sim.now, 3),
        "ops": recorder.total_ops(),
        "latency_p50_ms": round(summary.p50, 3),
        "latency_p99_ms": round(summary.p99, 3),
    }


def regen_goldens():
    """Rewrite every golden snapshot from the current engine.  Run as
    ``PYTHONPATH=src python -c "from tests.test_bench_determinism import
    regen_goldens; regen_goldens()"`` from the repo root after an
    *intentional* behaviour change, and commit the diff with it."""
    GOLDEN_DIR.mkdir(exist_ok=True)
    for workload, seed, scale in GOLDEN_CONFIGS:
        path = GOLDEN_DIR / f"{workload}_seed{seed}.json"
        path.write_text(
            json.dumps(run_fingerprint(workload, seed, scale), indent=2)
            + "\n")


class TestObsEquivalence:
    """Observability off must change nothing but wall-clock."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_kv_identical_across_obs_modes(self, seed):
        full_engine, full_rec, _ = _execute("kv", seed, "full", 0.25, None)
        off_engine, off_rec, _ = _execute("kv", seed, "off", 0.25, None)
        assert (full_engine.cluster.sim.events_processed
                == off_engine.cluster.sim.events_processed)
        assert full_engine.cluster.sim.now == off_engine.cluster.sim.now
        assert full_rec.total_ops() == off_rec.total_ops()
        # Byte-identical latency samples, not just matching percentiles.
        assert full_rec.samples() == off_rec.samples()
        assert state_digest(full_engine) == state_digest(off_engine)

    def test_movr_identical_across_obs_modes(self):
        full_engine, full_rec, _ = _execute("movr", 0, "full", 0.2, None)
        off_engine, off_rec, _ = _execute("movr", 0, "off", 0.2, None)
        assert (full_engine.cluster.sim.events_processed
                == off_engine.cluster.sim.events_processed)
        assert full_rec.samples() == off_rec.samples()
        assert state_digest(full_engine) == state_digest(off_engine)


class TestGoldenSnapshots:
    @pytest.mark.parametrize("workload,seed,scale", GOLDEN_CONFIGS)
    def test_matches_golden(self, workload, seed, scale):
        path = GOLDEN_DIR / f"{workload}_seed{seed}.json"
        expected = json.loads(path.read_text())
        got = run_fingerprint(workload, seed, scale)
        assert got == expected, (
            f"fixed-seed {workload} run diverged from {path.name}; if the "
            f"behaviour change is intentional, regenerate the goldens "
            f"(see regen_goldens) and commit them")

    def test_repeat_runs_are_identical(self):
        """Two runs in one process agree exactly — no hidden global
        state (module-level RNG, caches keyed on id()) leaks between
        engine instances."""
        assert (run_fingerprint("kv", 0, 0.25)
                == run_fingerprint("kv", 0, 0.25))
