"""Timer-wheel scheduling must be indistinguishable from a plain heap.

The simulator parks long-delay events in hierarchical wheel buckets and
merges each bucket back into the heap before sim time reaches its
window.  These tests pin the contract: dispatch order is the total
order on ``(when, schedule sequence)`` — exactly what a pure heap
gives — under random schedules, cancellations, re-entrant scheduling
from callbacks, and tombstone compaction.
"""

import random

import pytest

from repro.sim import core as sim_core
from repro.sim.core import Simulator


def _random_delay(rng: random.Random) -> float:
    """Delays straddling every wheel regime: sub-threshold (heap),
    fine-bucket, and coarse-bucket territory."""
    bucket = rng.randrange(4)
    if bucket == 0:
        return rng.uniform(0.0, sim_core._WHEEL_MIN_DELAY * 1.5)
    if bucket == 1:
        return rng.uniform(sim_core._WHEEL_MIN_DELAY, sim_core._WHEEL_TICK * 4)
    if bucket == 2:
        return rng.uniform(sim_core._WHEEL_TICK, sim_core._WHEEL_COARSE * 1.5)
    return rng.uniform(sim_core._WHEEL_COARSE, sim_core._WHEEL_COARSE * 20)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_wheel_matches_heap_order_static_schedule(seed):
    rng = random.Random(seed)
    sim = Simulator()
    fired = []
    expect = []
    for i in range(500):
        when = _random_delay(rng)
        # (when, schedule order) is the reference heap's total order.
        expect.append((when, i))
        sim.call_at(when, fired.append, i)
    sim.run()
    expect.sort()
    assert fired == [i for _, i in expect]
    assert sim._wheel_count == 0
    assert not sim._wheel_fine and not sim._wheel_coarse


@pytest.mark.parametrize("seed", [0, 7])
def test_wheel_matches_heap_order_with_cancellations(seed):
    rng = random.Random(seed)
    sim = Simulator()
    fired = []
    handles = []
    expect = []
    for i in range(400):
        when = _random_delay(rng)
        handles.append((when, i, sim.call_at(when, fired.append, i)))
    cancelled = set()
    for when, i, handle in handles:
        if rng.random() < 0.4:
            sim.cancel(handle)
            cancelled.add(i)
        else:
            expect.append((when, i))
    sim.run()
    expect.sort()
    assert fired == [i for _, i in expect]
    assert not cancelled.intersection(fired)


@pytest.mark.parametrize("seed", [0, 11])
def test_wheel_matches_heap_order_reentrant(seed):
    """Callbacks scheduling further wheel-range events mid-run exercise
    the drain / floor interplay (insert into windows near the one being
    drained)."""
    rng = random.Random(seed)
    sim = Simulator()
    fired = []
    budget = [300]

    def fire(label):
        fired.append((sim.now, label))
        while budget[0] > 0 and rng.random() < 0.6:
            budget[0] -= 1
            sim.call_after(_random_delay(rng), fire, budget[0])

    for i in range(20):
        sim.call_after(_random_delay(rng), fire, 10_000 + i)
    sim.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert budget[0] == 0
    assert sim._wheel_count == 0


def test_wheel_respects_run_until():
    sim = Simulator()
    fired = []
    sim.call_after(50.0, fired.append, "near")
    sim.call_after(5_000.0, fired.append, "far")  # parked on the wheel
    sim.run(until=1_000.0)
    assert fired == ["near"]
    assert sim.now == 1_000.0
    sim.run()
    assert fired == ["near", "far"]


def test_compaction_never_drops_live_events():
    """Mass-cancelling triggers compaction (heap + wheel buckets); every
    surviving event must still fire, in order, exactly once."""
    rng = random.Random(3)
    sim = Simulator()
    fired = []
    live = []
    handles = []
    for i in range(1_500):
        when = _random_delay(rng)
        handles.append((when, i, sim.call_at(when, fired.append, i)))
    for when, i, handle in handles:
        if i % 5 == 0:
            live.append((when, i))
        else:
            sim.cancel(handle)  # 1200 tombstones: compaction must kick in
    assert sim._tombstones < 1_200  # compaction actually ran
    sim.run()
    live.sort()
    assert fired == [i for _, i in live]


def test_tombstones_on_wheel_are_dropped_at_drain():
    sim = Simulator()
    fired = []
    handle = sim.call_after(sim_core._WHEEL_COARSE * 2, fired.append, "x")
    sim.call_after(sim_core._WHEEL_COARSE * 3, fired.append, "y")
    assert sim._wheel_count == 2
    sim.cancel(handle)
    sim.run()
    assert fired == ["y"]
    assert sim._tombstones == 0
    assert sim._wheel_count == 0
