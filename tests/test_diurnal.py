"""Diurnal (sinusoidal) per-region rate skew in the open-loop harness.

Two contracts: amplitude 0 is *exactly* the legacy arrival process (no
extra RNG draws — the committed overload goldens enforce this too),
and amplitude > 0 is a deterministic, genuinely time-varying offered
load with seeded per-region phase offsets.
"""

import pytest

from repro.harness.openloop import OpenLoopConfig, OpenLoopHarness

#: Small, fast config for these tests (mirrors the admission goldens).
_BASE = dict(rate_per_s=220.0, duration_ms=600.0, keys_per_region=50)


def _fingerprint(**overrides):
    config = OpenLoopConfig(**{**_BASE, **overrides})
    return OpenLoopHarness(config).run().fingerprint()


def test_amplitude_zero_is_byte_identical_to_legacy():
    # diurnal_amplitude=0.0 is the dataclass default; passing it
    # explicitly must not perturb a single RNG draw.
    assert _fingerprint(seed=3) == _fingerprint(seed=3,
                                                diurnal_amplitude=0.0)


def test_diurnal_run_is_deterministic():
    first = _fingerprint(seed=1, diurnal_amplitude=0.5)
    second = _fingerprint(seed=1, diurnal_amplitude=0.5)
    assert first == second
    assert first["offered"] > 0 and first["good"] > 0


def test_diurnal_changes_the_arrival_process():
    flat = _fingerprint(seed=1)
    wavy = _fingerprint(seed=1, diurnal_amplitude=0.5)
    assert flat != wavy


def test_diurnal_mean_rate_is_preserved():
    """Thinning modulates around the base rate: over whole periods the
    offered count stays near the flat-rate run, not near the peak."""
    flat = _fingerprint(seed=0, duration_ms=2000.0)
    wavy = _fingerprint(seed=0, duration_ms=2000.0,
                        diurnal_amplitude=0.8, diurnal_period_ms=500.0)
    assert wavy["offered"] == pytest.approx(flat["offered"], rel=0.15)


def test_phases_are_seeded_and_per_region():
    harness = OpenLoopHarness(OpenLoopConfig(seed=5, **_BASE))
    again = OpenLoopHarness(OpenLoopConfig(seed=5, **_BASE))
    assert harness._phases == again._phases
    assert len(set(harness._phases.values())) == len(harness._phases)
    other = OpenLoopHarness(OpenLoopConfig(seed=6, **_BASE))
    assert harness._phases != other._phases


def test_invalid_diurnal_config_rejected():
    with pytest.raises(ValueError):
        OpenLoopHarness(OpenLoopConfig(diurnal_amplitude=1.5))
    with pytest.raises(ValueError):
        OpenLoopHarness(OpenLoopConfig(diurnal_amplitude=-0.1))
    with pytest.raises(ValueError):
        OpenLoopHarness(OpenLoopConfig(diurnal_amplitude=0.5,
                                       diurnal_period_ms=0.0))
