"""HistoryRecorder abort-kind unit tests.

The recorder splits aborted transactions by *why*: retryable conflict
("retry"), epoch-OCC validation failure ("validation"), or a fatal
client error ("fatal").  These tests drive the hooks directly with
stub objects — no cluster, no simulator — so each branch is pinned in
isolation, including the JSON round-trip and ``finalize()``'s rule
that op-less aborted transactions are dropped while aborted
transactions that did real work are kept.
"""

import pytest

from repro.sim.clock import Timestamp
from repro.verify.history import (
    ABORTED,
    COMMITTED,
    INDETERMINATE,
    RecordedTxn,
    VerifyHistory,
    ts_to_json,
)
from repro.verify.recorder import HistoryRecorder


class FakeSim:
    def __init__(self):
        self.now = 0.0


class FakeLocality:
    def __init__(self, region):
        self.region = region


class FakeGateway:
    def __init__(self, region="us-east1"):
        self.locality = FakeLocality(region)


class FakeRange:
    name = "acct"


class FakeTxn:
    def __init__(self, txn_id, abort_reason=None, commit_ts=None):
        self.txn_id = txn_id
        if abort_reason is not None:
            self.abort_reason = abort_reason
        self.commit_ts = commit_ts


@pytest.fixture
def sim():
    return FakeSim()


@pytest.fixture
def recorder(sim):
    return HistoryRecorder(sim)


def _begin(recorder, txn, label=None):
    recorder.on_begin(txn, FakeGateway(), label)
    return recorder._txns[txn.txn_id]


class TestAbortKinds:
    def test_validation_abort_kind(self, recorder, sim):
        txn = FakeTxn(1, abort_reason="validation")
        record = _begin(recorder, txn)
        sim.now = 40.0
        recorder.on_abort(txn)
        assert record.status == ABORTED
        assert record.abort_kind == "validation"
        assert record.end_ms == 40.0

    def test_retry_abort_kind(self, recorder):
        txn = FakeTxn(2, abort_reason="retry")
        record = _begin(recorder, txn)
        recorder.on_abort(txn)
        assert record.abort_kind == "retry"

    def test_missing_reason_defaults_to_fatal(self, recorder):
        txn = FakeTxn(3)  # no abort_reason attribute at all
        record = _begin(recorder, txn)
        recorder.on_abort(txn)
        assert record.abort_kind == "fatal"

    def test_none_reason_defaults_to_fatal(self, recorder):
        txn = FakeTxn(4, abort_reason=None)
        txn.abort_reason = None
        record = _begin(recorder, txn)
        recorder.on_abort(txn)
        assert record.abort_kind == "fatal"

    def test_abort_after_commit_is_ignored(self, recorder):
        """The first terminal status wins; a late abort hook must not
        clobber a committed record (e.g. rollback of a retry loop that
        already acked)."""
        txn = FakeTxn(5, abort_reason="retry",
                      commit_ts=Timestamp(100.0, 0, False))
        record = _begin(recorder, txn)
        recorder.on_commit(txn)
        recorder.on_abort(txn)
        assert record.status == COMMITTED
        assert record.abort_kind is None

    def test_committed_txn_has_no_abort_kind(self, recorder):
        txn = FakeTxn(6, commit_ts=Timestamp(50.0, 1, False))
        record = _begin(recorder, txn)
        recorder.on_commit(txn)
        assert record.status == COMMITTED
        assert record.abort_kind is None
        assert record.commit_ts == Timestamp(50.0, 1, False)


class TestValidationFailOp:
    def test_records_v_op(self, recorder, sim):
        txn = FakeTxn(7, abort_reason="validation")
        record = _begin(recorder, txn)
        sim.now = 75.0
        observed = Timestamp(10.0, 0, False)
        current = Timestamp(60.0, 2, False)
        recorder.on_validation_fail(txn, FakeRange(), "k1", observed, current)
        assert len(record.ops) == 1
        op = record.ops[0]
        assert op.kind == "v"
        assert op.key == "acct/k1"
        # value carries the version the txn read; version_ts the
        # displacing version.
        assert op.value == ts_to_json(observed)
        assert op.version_ts == current
        assert op.at_ms == 75.0

    def test_unknown_txn_is_ignored(self, recorder):
        txn = FakeTxn(99)
        recorder.on_validation_fail(txn, FakeRange(), "k1",
                                    Timestamp(1.0, 0, False),
                                    Timestamp(2.0, 0, False))
        # No on_begin -> no record, and no crash.
        assert 99 not in recorder._txns


class TestRoundTrip:
    def test_abort_kind_survives_json(self, recorder, sim):
        txn = FakeTxn(8, abort_reason="validation")
        _begin(recorder, txn, label="rt")
        recorder.on_validation_fail(txn, FakeRange(), "k",
                                    Timestamp(5.0, 0, False),
                                    Timestamp(9.0, 0, False))
        sim.now = 12.5
        recorder.on_abort(txn)
        history = recorder.finalize()
        restored = VerifyHistory.loads(history.dumps())
        assert len(restored.txns) == 1
        back = restored.txns[0]
        assert back.status == ABORTED
        assert back.abort_kind == "validation"
        assert back.end_ms == 12.5
        assert back.ops[0].kind == "v"
        assert back.ops[0].version_ts == Timestamp(9.0, 0, False)

    def test_from_json_tolerates_missing_abort_kind(self):
        """Histories recorded before the split (no abort_kind field)
        still load."""
        legacy = {
            "txn_id": 1, "label": "old", "region": "us-east1",
            "mode": "strong", "status": ABORTED, "begin_ms": 0.0,
            "end_ms": 1.0, "commit_ts": None, "requested_ts": None,
            "effective_ts": None,
            "ops": [{"kind": "r", "key": "acct/a", "value": 1,
                     "version_ts": [0.5, 0, False], "at_ms": 0.5}],
        }
        record = RecordedTxn.from_json(legacy)
        assert record.abort_kind is None
        assert record.status == ABORTED


class TestFinalize:
    def test_opless_aborted_txns_are_dropped(self, recorder):
        kept = FakeTxn(10, abort_reason="validation")
        record = _begin(recorder, kept)
        recorder.on_validation_fail(kept, FakeRange(), "k",
                                    Timestamp(1.0, 0, False),
                                    Timestamp(2.0, 0, False))
        recorder.on_abort(kept)

        dropped = FakeTxn(11, abort_reason="retry")
        _begin(recorder, dropped)
        recorder.on_abort(dropped)  # never did any work

        history = recorder.finalize()
        ids = [t.txn_id for t in history.txns]
        assert ids == [10]
        assert history.txns[0].abort_kind == "validation"

    def test_pending_becomes_indeterminate(self, recorder):
        txn = FakeTxn(12)
        _begin(recorder, txn)
        history = recorder.finalize()
        assert history.txns[0].status == INDETERMINATE
        assert history.txns[0].abort_kind is None
