"""Tier-2 randomized consistency sweep: every chaos scenario x seeds.

Run with ``pytest -m verify``.  Each case drives the seeded random
transaction generator under a nemesis schedule and asserts the full
Elle-style check comes back clean; on failure, the dumped history JSON
is embedded so the violation can be replayed offline with
``python -m repro verify --check``.
"""

import pytest

from repro.verify import CLOCK_SCENARIOS, VERIFY_SCENARIOS, run_verify

SEEDS = range(5)

pytestmark = pytest.mark.verify

#: The clock-fault scenarios have their own sweep (``pytest -m clock``,
#: test_clock_sweep.py) — the fencing-off ablation *expects* anomalies,
#: so it does not belong in an anomaly-free assertion.
SWEEP_SCENARIOS = [s for s in VERIFY_SCENARIOS if s not in CLOCK_SCENARIOS]


@pytest.mark.parametrize("scenario", SWEEP_SCENARIOS)
@pytest.mark.parametrize("seed", SEEDS)
def test_scenario_history_is_anomaly_free(scenario, seed):
    result = run_verify(scenario, seed=seed)
    assert result.ok, (
        f"{scenario} seed={seed} found anomalies:\n"
        f"{result.report.render()}\n"
        f"--- replayable history ---\n{result.history.dumps()}")


@pytest.mark.parametrize("scenario", ["crash-restart"])
def test_sweep_results_are_replayable(scenario):
    result = run_verify(scenario, seed=0)
    from repro.verify import VerifyHistory, check
    replayed = check(VerifyHistory.loads(result.history.dumps()))
    assert replayed.dumps() == result.report.dumps()
