"""Admission control & overload protection.

Tier-1: unit tests for the token bucket, the gateway admission queue
(priority/FIFO ordering, bounded depth, deadline shedding), the store
work queue, the retry budget, deadline propagation through the
coordinator and DistSender, and golden determinism fingerprints for a
small open-loop overload run at seeds {0, 1, 2}.

Tier-2 (``pytest -m overload``): the full overload chaos scenarios and
the quick scale-curve gates.
"""

import json
import pathlib

import pytest

from repro.admission import (
    AdmissionConfig,
    AdmissionQueue,
    Priority,
    RetryBudget,
    StoreWorkQueue,
    TokenBucket,
    install_admission,
)
from repro.admission.tokens import TokenBucket as TokensModuleBucket
from repro.errors import (
    AdmissionRejectedError,
    DeadlineExceededError,
    OverloadError,
    RetryBudgetExhaustedError,
)
from repro.harness.openloop import OpenLoopConfig, OpenLoopHarness
from repro.sim.core import Simulator

from .kv_util import KVTestBed, REGIONS3

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"

#: Small-but-representative overload run for the determinism goldens:
#: 4x offered load, admission on, short window.
GOLDEN_SEEDS = (0, 1, 2)
GOLDEN_CONFIG = dict(load_multiplier=4.0, duration_ms=600.0)


# -- token bucket ------------------------------------------------------------


class TestTokenBucket:
    def test_starts_full_and_burst_caps_refill(self):
        bucket = TokenBucket(rate_per_s=100.0, burst=10.0)
        assert bucket.available(0.0) == pytest.approx(10.0)
        for _ in range(10):
            assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        # 10 tokens replenish in 100ms at 100/s; an hour of idleness
        # still caps at the burst.
        assert bucket.available(100.0) == pytest.approx(10.0)
        assert bucket.available(3_600_000.0) == pytest.approx(10.0)

    def test_refill_rate_math(self):
        bucket = TokenBucket(rate_per_s=1000.0, burst=50.0, initial=0.0)
        # 1000/s == 1 per ms.
        assert bucket.available(7.0) == pytest.approx(7.0)
        assert bucket.try_take(7.0, n=5.0)
        assert bucket.available(7.0) == pytest.approx(2.0)

    def test_time_until_deficit(self):
        bucket = TokenBucket(rate_per_s=100.0, burst=4.0, initial=0.0)
        # Needs 1 token at 100/s => 10ms.
        assert bucket.time_until(1.0, 0.0) == pytest.approx(10.0)
        assert bucket.time_until(1.0, 5.0) == pytest.approx(5.0)
        assert bucket.time_until(1.0, 10.0) == 0.0

    def test_reexported_from_package(self):
        assert TokenBucket is TokensModuleBucket


# -- gateway admission queue -------------------------------------------------


def _admit(sim, queue, priority=Priority.NORMAL, deadline_ms=None):
    """Spawn one admit() and return a result slot filled on completion."""
    slot = {}

    def co():
        try:
            wait = yield queue.admit(priority=priority,
                                     deadline_ms=deadline_ms)
        except Exception as err:  # noqa: BLE001 - recorded for asserts
            slot["error"] = err
        else:
            slot["wait_ms"] = wait
        slot["at"] = sim.now

    sim.spawn(co())
    return slot


class TestAdmissionQueue:
    def make(self, sim, rate=100.0, burst=1.0, depth=4, ordering="priority"):
        bucket = TokenBucket(rate_per_s=rate, burst=burst, initial=1.0)
        return AdmissionQueue(sim, "t/r", bucket, max_depth=depth,
                              ordering=ordering)

    def test_fast_path_no_wait(self):
        sim = Simulator()
        queue = self.make(sim)
        slot = _admit(sim, queue)
        sim.run()
        assert slot["wait_ms"] == 0.0

    def test_priority_ordering(self):
        sim = Simulator()
        queue = self.make(sim, rate=100.0, burst=1.0)
        first = _admit(sim, queue)                       # takes the token
        low = _admit(sim, queue, priority=Priority.LOW)
        norm = _admit(sim, queue, priority=Priority.NORMAL)
        high = _admit(sim, queue, priority=Priority.HIGH)
        sim.run()
        assert first["wait_ms"] == 0.0
        # One token per 10ms: HIGH admitted before NORMAL before LOW
        # regardless of arrival order.
        assert high["at"] < norm["at"] < low["at"]

    def test_fifo_ordering(self):
        sim = Simulator()
        queue = self.make(sim, ordering="fifo")
        _admit(sim, queue)                               # takes the token
        low = _admit(sim, queue, priority=Priority.LOW)
        high = _admit(sim, queue, priority=Priority.HIGH)
        sim.run()
        assert low["at"] < high["at"]

    def test_bounded_depth_rejects(self):
        sim = Simulator()
        queue = self.make(sim, rate=1.0, depth=2)
        _admit(sim, queue)                               # token holder
        waiters = [_admit(sim, queue) for _ in range(2)]
        overflow = _admit(sim, queue)
        sim.run(until=1.0)
        assert isinstance(overflow["error"], AdmissionRejectedError)
        assert isinstance(overflow["error"], OverloadError)
        assert all("error" not in w or w.get("wait_ms") is not None
                   for w in waiters)

    def test_deadline_shed_while_queued(self):
        sim = Simulator()
        # 1 token/s: the queue drains far too slowly for a 20ms deadline.
        queue = self.make(sim, rate=1.0, burst=1.0)
        _admit(sim, queue)                               # token holder
        shed = _admit(sim, queue, deadline_ms=20.0)
        sim.run(until=100.0)
        assert isinstance(shed["error"], DeadlineExceededError)
        assert shed["at"] == pytest.approx(20.0)

    def test_admitted_wait_matches_refill(self):
        sim = Simulator()
        queue = self.make(sim, rate=100.0, burst=1.0)
        _admit(sim, queue)
        waiter = _admit(sim, queue)
        sim.run()
        assert waiter["wait_ms"] == pytest.approx(10.0)


# -- store work queue --------------------------------------------------------


class TestStoreWorkQueue:
    def run_work(self, sim, queue, service_ms=None, deadline_ms=None):
        slot = {}

        def co():
            try:
                yield from queue.work(service_ms=service_ms,
                                      deadline_ms=deadline_ms)
            except Exception as err:  # noqa: BLE001
                slot["error"] = err
            slot["at"] = sim.now

        sim.spawn(co())
        return slot

    def test_slots_serialize_excess_work(self):
        sim = Simulator()
        queue = StoreWorkQueue(sim, node_id=1, slots=2, service_ms=10.0)
        slots = [self.run_work(sim, queue) for _ in range(4)]
        sim.run()
        # 2 slots x 10ms: two finish at 10ms, two queue and finish at 20ms.
        assert sorted(s["at"] for s in slots) == [10.0, 10.0, 20.0, 20.0]

    def test_capacity_property(self):
        sim = Simulator()
        queue = StoreWorkQueue(sim, node_id=1, slots=2, service_ms=2.0)
        assert queue.capacity_per_s == pytest.approx(1000.0)

    def test_expired_work_shed_before_service(self):
        sim = Simulator()
        queue = StoreWorkQueue(sim, node_id=1, slots=1, service_ms=50.0)
        self.run_work(sim, queue)                    # occupies the slot
        shed = self.run_work(sim, queue, deadline_ms=25.0)
        ok = self.run_work(sim, queue, deadline_ms=500.0)
        sim.run()
        assert isinstance(shed["error"], DeadlineExceededError)
        # Shedding the expired waiter must not wedge the queue.
        assert "error" not in ok
        assert ok["at"] == pytest.approx(100.0)


# -- retry budget ------------------------------------------------------------


class TestRetryBudget:
    def test_exhaustion_raises_overload(self):
        budget = RetryBudget(max_tokens=3.0, success_credit=0.5,
                             tenant="t")
        budget.check(1)
        budget.check(2)
        budget.check(3)
        with pytest.raises(RetryBudgetExhaustedError) as excinfo:
            budget.check(4)
        assert isinstance(excinfo.value, OverloadError)

    def test_success_credits_refill(self):
        budget = RetryBudget(max_tokens=2.0, success_credit=1.0,
                             tenant="t")
        budget.check(1)
        budget.check(2)
        with pytest.raises(RetryBudgetExhaustedError):
            budget.check(3)
        budget.on_success()
        budget.check(4)  # the credit bought one more retry

    def test_credit_capped_at_max(self):
        budget = RetryBudget(max_tokens=1.0, success_credit=1.0,
                             tenant="t")
        for _ in range(100):
            budget.on_success()
        budget.check(1)
        with pytest.raises(RetryBudgetExhaustedError):
            budget.check(2)


# -- deadline propagation ----------------------------------------------------


class TestDeadlinePropagation:
    def test_expired_deadline_fails_fast(self):
        bed = KVTestBed(regions=REGIONS3)
        rng = bed.make_range("us-east1")
        bed.sim.run(until=500.0)
        gateway = bed.gateway("us-east1")

        def txn_fn(txn):
            yield from txn.write(rng, "k", "v")

        def run():
            try:
                yield from bed.coord.run(gateway, txn_fn,
                                         deadline_ms=bed.sim.now - 1.0)
            except DeadlineExceededError as err:
                return err
            return None

        start = bed.sim.now
        err = bed.sim.run_until_future(bed.sim.spawn(run()))
        assert isinstance(err, DeadlineExceededError)
        assert bed.sim.now == start  # no RPC, no backoff burned

    def test_unreachable_leaseholder_drops_rpc_at_deadline(self):
        """The satellite bugfix: with the leaseholder down, retries must
        stop at the deadline instead of burning the full backoff
        schedule (previously the deadline was only noticed *after* each
        sleep)."""
        bed = KVTestBed(regions=REGIONS3)
        rng = bed.make_range("us-east1")
        bed.sim.run(until=500.0)
        bed.do_write("us-east1", rng, "k", "v0")
        for node in bed.cluster.nodes_in_region("us-east1"):
            bed.cluster.crash_node(node.node_id)
        gateway = bed.gateway("europe-west2")
        deadline_budget = 200.0

        def txn_fn(txn):
            yield from txn.read(rng, "k")

        def run():
            try:
                yield from bed.coord.run(
                    gateway, txn_fn,
                    deadline_ms=bed.sim.now + deadline_budget)
            except DeadlineExceededError as err:
                return err
            return None

        start = bed.sim.now
        err = bed.sim.run_until_future(bed.sim.spawn(run()))
        elapsed = bed.sim.now - start
        assert isinstance(err, DeadlineExceededError)
        # Fails at (or just before) the deadline — never long after it.
        assert elapsed <= deadline_budget + 1.0

    def test_deadline_error_is_not_overload(self):
        # Deadline expiry is the *client's* budget running out, not a
        # server-overload signal; retry/shed accounting treats them
        # differently.
        err = DeadlineExceededError("op", 10.0, 20.0)
        assert not isinstance(err, OverloadError)


# -- controller wiring -------------------------------------------------------


class TestControllerWiring:
    def test_gateway_disabled_skips_queueing(self):
        bed = KVTestBed(regions=REGIONS3)
        controller = install_admission(bed.cluster, AdmissionConfig(
            gateway_enabled=False, retry_budget_enabled=False))
        assert bed.cluster.admission is controller

        def co():
            wait = yield from controller.admit_co("t", "us-east1")
            return wait

        assert bed.sim.run_until_future(bed.sim.spawn(co())) == 0.0
        assert controller.retry_budget("t") is None

    def test_totals_parse_registry(self):
        bed = KVTestBed(regions=REGIONS3)
        controller = install_admission(bed.cluster, AdmissionConfig(
            rate_per_s=1000.0, burst=4.0, max_queue_depth=1))

        def co():
            yield from controller.admit_co("t", "us-east1")

        bed.sim.run_until_future(bed.sim.spawn(co()))
        totals = controller.totals()
        assert totals["admitted"] == 1
        assert totals["rejected"] == 0


# -- determinism goldens -----------------------------------------------------


def overload_fingerprint(seed):
    config = OpenLoopConfig(seed=seed, **GOLDEN_CONFIG)
    result = OpenLoopHarness(config).run()
    return {"seed": seed, **result.fingerprint()}


def regen_goldens():
    """Rewrite the overload determinism goldens.  Run as
    ``PYTHONPATH=src python -c "from tests.test_admission import
    regen_goldens; regen_goldens()"`` from the repo root after an
    *intentional* behaviour change, and commit the diff with it."""
    GOLDEN_DIR.mkdir(exist_ok=True)
    for seed in GOLDEN_SEEDS:
        path = GOLDEN_DIR / f"overload_seed{seed}.json"
        path.write_text(json.dumps(overload_fingerprint(seed), indent=2)
                        + "\n")


class TestOverloadDeterminism:
    @pytest.mark.parametrize("seed", GOLDEN_SEEDS)
    def test_fingerprint_matches_golden(self, seed):
        golden = json.loads(
            (GOLDEN_DIR / f"overload_seed{seed}.json").read_text())
        assert overload_fingerprint(seed) == golden, (
            "overload fingerprint drifted; if the behaviour change is "
            "intentional, regenerate with test_admission.regen_goldens()")

    def test_obs_off_is_behavior_identical(self):
        with_obs = OpenLoopHarness(OpenLoopConfig(
            seed=0, obs_enabled=True, **GOLDEN_CONFIG)).run()
        without = OpenLoopHarness(OpenLoopConfig(
            seed=0, obs_enabled=False, **GOLDEN_CONFIG)).run()
        assert with_obs.fingerprint() == without.fingerprint()


# -- tier-2 overload sweep (pytest -m overload) ------------------------------


@pytest.mark.overload
@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize("name", ["overload-global", "overload-hot-region"])
def test_overload_chaos_scenarios(name, seed):
    from repro.chaos import run_scenario

    result = run_scenario(name, seed)
    assert result.ok, f"{name} seed={seed}\n{result.report.render()}"


@pytest.mark.overload
def test_scale_quick_gates():
    from repro.harness.scale import run_scale

    doc = run_scale(seed=0, quick=True)
    assert doc["gates"]["ok"], json.dumps(doc["gates"], indent=2)


@pytest.mark.overload
def test_verify_clean_under_overload():
    from repro.verify import run_verify

    result = run_verify("overload", seed=0)
    assert result.ok, result.report.render()
    assert result.stats["bg_shed"] + result.stats["bg_rejected"] > 0, (
        "the overload scenario must actually shed load")
