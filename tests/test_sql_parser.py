"""Tests for the SQL lexer and parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import ast, parse, parse_one, tokenize


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT * FROM t WHERE id = 5;")
        kinds = [t.kind for t in tokens]
        assert kinds == ["ident", "op", "ident", "ident", "ident", "ident",
                         "op", "number", "op", "eof"]

    def test_quoted_identifier(self):
        tokens = tokenize('"us-east1"')
        assert tokens[0].kind == "ident"
        assert tokens[0].text == "us-east1"

    def test_string_literal_with_escape(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].kind == "string"
        assert tokens[0].text == "it's"

    def test_comment_skipped(self):
        tokens = tokenize("SELECT 1 -- a comment\n")
        assert [t.kind for t in tokens] == ["ident", "number", "eof"]

    def test_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @ FROM t")


class TestCreateDatabase:
    def test_paper_example(self):
        stmt = parse_one(
            'CREATE DATABASE movr PRIMARY REGION "us-east1" '
            'REGIONS "us-west1", "europe-west1"')
        assert stmt.name == "movr"
        assert stmt.primary_region == "us-east1"
        assert stmt.regions == ["us-west1", "europe-west1"]

    def test_no_regions(self):
        stmt = parse_one("CREATE DATABASE plain")
        assert stmt.primary_region is None
        assert stmt.regions == []


class TestAlterDatabase:
    def test_add_region(self):
        stmt = parse_one('ALTER DATABASE movr ADD REGION "australia-southeast1"')
        assert isinstance(stmt, ast.AlterDatabaseAddRegion)
        assert stmt.region == "australia-southeast1"

    def test_drop_region(self):
        stmt = parse_one('ALTER DATABASE movr DROP REGION "us-west1"')
        assert isinstance(stmt, ast.AlterDatabaseDropRegion)

    def test_survive_region_failure(self):
        stmt = parse_one("ALTER DATABASE movr SURVIVE REGION FAILURE")
        assert stmt.goal == "region"

    def test_survive_zone_failure(self):
        stmt = parse_one("ALTER DATABASE movr SURVIVE ZONE FAILURE")
        assert stmt.goal == "zone"

    def test_placement(self):
        assert parse_one("ALTER DATABASE movr PLACEMENT RESTRICTED").restricted
        assert not parse_one("ALTER DATABASE movr PLACEMENT DEFAULT").restricted


class TestCreateTable:
    def test_localities(self):
        stmt = parse_one(
            'CREATE TABLE west_coast_users (id int PRIMARY KEY) '
            'LOCALITY REGIONAL BY TABLE IN "us-west1"')
        assert isinstance(stmt.locality, ast.LocalityRegionalByTable)
        assert stmt.locality.region == "us-west1"

        stmt = parse_one("CREATE TABLE users (id int PRIMARY KEY) "
                         "LOCALITY REGIONAL BY ROW")
        assert isinstance(stmt.locality, ast.LocalityRegionalByRow)

        stmt = parse_one("CREATE TABLE promo_codes (id int PRIMARY KEY) "
                         "LOCALITY GLOBAL")
        assert isinstance(stmt.locality, ast.LocalityGlobal)

    def test_in_primary_region(self):
        stmt = parse_one("CREATE TABLE t (id int PRIMARY KEY) "
                         "LOCALITY REGIONAL BY TABLE IN PRIMARY REGION")
        assert stmt.locality.region is None

    def test_column_attributes(self):
        stmt = parse_one(
            "CREATE TABLE t (id uuid PRIMARY KEY DEFAULT gen_random_uuid(), "
            "email string UNIQUE NOT NULL, "
            "crdb_region crdb_internal_region NOT VISIBLE NOT NULL "
            "DEFAULT gateway_region() ON UPDATE rehome_row()) "
            "LOCALITY REGIONAL BY ROW")
        by_name = {c.name: c for c in stmt.columns}
        assert isinstance(by_name["id"].default, ast.FuncCall)
        assert by_name["id"].default.name == "gen_random_uuid"
        assert by_name["email"].unique and by_name["email"].not_null
        region = by_name["crdb_region"]
        assert not region.visible
        assert region.on_update.name == "rehome_row"
        assert stmt.primary_key == ["id"]
        assert ["email"] in stmt.unique_constraints

    def test_computed_region_column(self):
        stmt = parse_one(
            "CREATE TABLE t (id int PRIMARY KEY, state string, "
            "crdb_region crdb_internal_region AS "
            "(CASE WHEN state = 'CA' THEN 'us-west1' ELSE 'us-east1' END) "
            "STORED) LOCALITY REGIONAL BY ROW")
        region = [c for c in stmt.columns if c.name == "crdb_region"][0]
        assert isinstance(region.computed, ast.CaseWhen)

    def test_table_level_constraints(self):
        stmt = parse_one(
            "CREATE TABLE t (a int, b int, c int, PRIMARY KEY (a, b), "
            "UNIQUE (c))")
        assert stmt.primary_key == ["a", "b"]
        assert ["c"] in stmt.unique_constraints

    def test_foreign_key_parsed_and_ignored(self):
        stmt = parse_one(
            "CREATE TABLE t (a int PRIMARY KEY, b int, "
            "FOREIGN KEY (b) REFERENCES parent (id) ON UPDATE CASCADE)")
        assert [c.name for c in stmt.columns] == ["a", "b"]


class TestAlterTable:
    def test_set_locality(self):
        stmt = parse_one("ALTER TABLE promo_codes SET LOCALITY GLOBAL")
        assert isinstance(stmt, ast.AlterTableSetLocality)
        assert isinstance(stmt.locality, ast.LocalityGlobal)

    def test_add_column_paper_example(self):
        stmt = parse_one(
            "ALTER TABLE users ADD COLUMN crdb_region crdb_internal_region "
            "NOT VISIBLE NOT NULL DEFAULT gateway_region()")
        assert isinstance(stmt, ast.AlterTableAddColumn)
        assert stmt.column.name == "crdb_region"
        assert not stmt.column.visible


class TestDML:
    def test_insert_multi_row(self):
        stmt = parse_one(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_select_star_where(self):
        stmt = parse_one("SELECT * FROM users WHERE email = 'some-email'")
        assert stmt.columns == ["*"]
        assert isinstance(stmt.where, ast.Comparison)

    def test_select_with_limit(self):
        stmt = parse_one("SELECT a FROM t WHERE b = 1 LIMIT 5")
        assert stmt.limit == 5

    def test_select_in_list(self):
        stmt = parse_one("SELECT * FROM t WHERE id IN (1, 2, 3)")
        assert isinstance(stmt.where, ast.InList)
        assert len(stmt.where.values) == 3

    def test_select_and_conditions(self):
        stmt = parse_one("SELECT * FROM t WHERE a = 1 AND b = 2")
        assert isinstance(stmt.where, ast.LogicalAnd)

    def test_as_of_exact(self):
        stmt = parse_one("SELECT * FROM t AS OF SYSTEM TIME '-30s'")
        assert stmt.as_of.kind == "exact"

    def test_as_of_min_timestamp(self):
        stmt = parse_one("SELECT * FROM t AS OF SYSTEM TIME "
                         "with_min_timestamp('2021-01-02')")
        assert stmt.as_of.kind == "min_timestamp"

    def test_as_of_max_staleness(self):
        stmt = parse_one("SELECT * FROM t AS OF SYSTEM TIME "
                         "with_max_staleness('30s') WHERE id = 1")
        assert stmt.as_of.kind == "max_staleness"
        assert stmt.where is not None

    def test_update(self):
        stmt = parse_one("UPDATE t SET a = 1, b = 'x' WHERE id = 9")
        assert stmt.assignments[0] == ("a", ast.Literal(1))
        assert len(stmt.assignments) == 2

    def test_delete(self):
        stmt = parse_one("DELETE FROM t WHERE id = 3")
        assert isinstance(stmt, ast.Delete)

    def test_show_regions(self):
        stmt = parse_one("SHOW REGIONS FROM DATABASE movr")
        assert stmt.from_database == "movr"


class TestScripts:
    def test_multi_statement_script(self):
        statements = parse("CREATE DATABASE a; CREATE DATABASE b;")
        assert len(statements) == 2

    def test_parse_one_rejects_scripts(self):
        with pytest.raises(SqlSyntaxError):
            parse_one("SELECT * FROM a; SELECT * FROM b")

    def test_unsupported_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse_one("GRANT ALL ON t TO bob")

    def test_error_reports_offset(self):
        with pytest.raises(SqlSyntaxError, match="offset"):
            parse_one("SELECT FROM WHERE")
