"""Tests for the paper's baselines: duplicate indexes and legacy DDL."""

import pytest

from repro.baselines import (
    DuplicateIndexTable,
    LegacySchema,
    LegacyTable,
    legacy_add_region_ddl,
    legacy_convert_ddl,
    legacy_drop_region_ddl,
    legacy_new_schema_ddl,
)
from repro.harness.runner import build_engine
from repro.sim.clock import Timestamp

REGIONS = ["us-east1", "us-west1", "europe-west2"]


def make_table():
    engine = build_engine(REGIONS, jitter_fraction=0.0)
    table = DuplicateIndexTable(engine.cluster, engine.coordinator, REGIONS)
    table.bulk_load([((k,), f"v{k}") for k in range(10)], Timestamp(-1000.0))
    engine.cluster.sim.run(until=500.0)
    return engine, table


def run(engine, gen):
    sim = engine.cluster.sim
    process = sim.spawn(gen)
    return sim.run_until_future(process)


class TestDuplicateIndexes:
    def test_one_pinned_index_per_region(self):
        engine, table = make_table()
        for region, rng in table.indexes.items():
            assert rng.leaseholder_node.locality.region == region

    def test_local_read_fast_everywhere(self):
        engine, table = make_table()
        sim = engine.cluster.sim
        for region in REGIONS:
            gateway = engine.cluster.gateway_for_region(region)
            start = sim.now
            value = run(engine, table.read_co(gateway, (3,)))
            assert value == "v3"
            assert sim.now - start < 10.0, region

    def test_write_fans_out_to_all_regions(self):
        engine, table = make_table()
        sim = engine.cluster.sim
        gateway = engine.cluster.gateway_for_region("us-east1")
        start = sim.now
        run(engine, table.write_co(gateway, (3,), "updated"))
        elapsed = sim.now - start
        # Must reach the furthest region (europe-west2: 87 ms RTT).
        assert elapsed >= 87.0
        # Every region now serves the new value locally.
        for region in REGIONS:
            gw = engine.cluster.gateway_for_region(region)
            assert run(engine, table.read_co(gw, (3,))) == "updated"

    def test_reader_blocks_on_inflight_writer(self):
        """The §7.3.2 tail mechanism: a read that catches the write
        mid-flight waits for the full WAN transaction."""
        engine, table = make_table()
        sim = engine.cluster.sim
        writer_gw = engine.cluster.gateway_for_region("us-east1")
        reader_gw = engine.cluster.gateway_for_region("europe-west2")

        writer = sim.spawn(table.write_co(writer_gw, (5,), "w"))
        latency = {}

        def read_later():
            yield sim.sleep(50.0)  # the europe intent is already laid
            start = sim.now
            value = yield from table.read_co(reader_gw, (5,))
            latency["ms"] = sim.now - start
            return value

        reader = sim.spawn(read_later())
        value = sim.run_until_future(reader)
        sim.run_until_future(writer)
        assert value == "w"
        # The reader waited on the writer's WAN commit, far above local.
        assert latency["ms"] > 20.0

    def test_contending_writers_serialize(self):
        engine, table = make_table()
        sim = engine.cluster.sim
        gws = [engine.cluster.gateway_for_region(r) for r in REGIONS]
        processes = [sim.spawn(table.write_co(gw, (7,), f"w{i}"))
                     for i, gw in enumerate(gws)]
        for process in processes:
            sim.run_until_future(process)
        # All three committed; the final value is one of them.
        value = run(engine, table.read_co(gws[0], (7,)))
        assert value in {"w0", "w1", "w2"}


MOVR = LegacySchema("movr", tables=[
    LegacyTable("users", "regional"),
    LegacyTable("promo_codes", "global"),
])


class TestLegacyDDL:
    def test_new_schema_statements(self):
        statements = legacy_new_schema_ddl(MOVR, REGIONS)
        # users: 1 partition + 3 zones; promo: 2 indexes + 3 zones.
        assert len(statements) == 4 + 5
        assert any("PARTITION BY LIST" in s for s in statements)
        assert any("CREATE INDEX" in s for s in statements)

    def test_convert_equals_new(self):
        assert len(legacy_convert_ddl(MOVR, REGIONS)) == \
            len(legacy_new_schema_ddl(MOVR, REGIONS))

    def test_add_region_statements(self):
        statements = legacy_add_region_ddl(MOVR, REGIONS, "asia-northeast1")
        # users: repartition + zone; promo: index + zone.
        assert len(statements) == 4
        assert any("asia-northeast1" in s for s in statements)

    def test_drop_region_statements(self):
        statements = legacy_drop_region_ddl(MOVR, REGIONS, "us-west1")
        assert len(statements) == 2
        assert any("DROP INDEX" in s for s in statements)

    def test_partition_column_adds_statement(self):
        schema = LegacySchema("x", tables=[
            LegacyTable("t", "regional", needs_partition_column=True)])
        statements = legacy_new_schema_ddl(schema, REGIONS)
        assert any("ADD COLUMN" in s for s in statements)

    def test_index_count_scales_statements(self):
        one = LegacySchema("a", tables=[LegacyTable("t", "regional",
                                                    index_count=1)])
        two = LegacySchema("b", tables=[LegacyTable("t", "regional",
                                                    index_count=2)])
        assert len(legacy_new_schema_ddl(two, REGIONS)) == \
            2 * len(legacy_new_schema_ddl(one, REGIONS))
