"""Tests for the Raft replication layer."""

import pytest

from repro.cluster import standard_cluster
from repro.errors import RangeUnavailableError
from repro.raft.group import RaftGroup, ReplicaType
from repro.sim.clock import Timestamp, TS_ZERO


def ts(physical, logical=0, synthetic=False):
    return Timestamp(physical, logical, synthetic)


def build_group(cluster, voters, learners=(), leader_index=0,
                timeout=None):
    """Create a RaftGroup whose 'state machine' appends commands per node."""
    applied = {node.node_id: [] for node in list(voters) + list(learners)}

    def apply_fn(node, command):
        applied[node.node_id].append(command)

    group = RaftGroup(cluster.sim, cluster.network, range_id=1,
                      apply_fn=apply_fn, proposal_timeout_ms=timeout)
    for node in voters:
        group.add_peer(node, ReplicaType.VOTER)
    for node in learners:
        group.add_peer(node, ReplicaType.NON_VOTER)
    group.set_leader(voters[leader_index].node_id)
    return group, applied


def one_region_cluster(n=3):
    return standard_cluster(["us-east1"], nodes_per_region=n,
                            jitter_fraction=0.0)


class TestBasicReplication:
    def test_propose_commits_and_applies_everywhere(self):
        cluster = one_region_cluster()
        group, applied = build_group(cluster, cluster.nodes)

        def main():
            entry = yield group.propose(("cmd", 1), TS_ZERO)
            return entry

        entry = cluster.sim.run_process(main())
        assert entry.index == 1
        assert group.commit_index == 1
        for node in cluster.nodes:
            assert applied[node.node_id] == [("cmd", 1)]

    def test_sequential_proposals_ordered(self):
        cluster = one_region_cluster()
        group, applied = build_group(cluster, cluster.nodes)

        def main():
            for i in range(5):
                yield group.propose(("cmd", i), TS_ZERO)

        cluster.sim.run_process(main())
        leader_id = group.leader_node_id
        assert applied[leader_id] == [("cmd", i) for i in range(5)]

    def test_concurrent_proposals_all_commit(self):
        cluster = one_region_cluster()
        group, applied = build_group(cluster, cluster.nodes)
        futures = [group.propose(("cmd", i), TS_ZERO) for i in range(10)]
        cluster.sim.run()
        assert all(f.done for f in futures)
        assert group.commit_index == 10

    def test_commit_latency_is_local_quorum(self):
        """With all voters in one region, commit should take ~1 intra-region
        RTT plus disk latency, not a WAN round trip."""
        cluster = one_region_cluster()
        group, _ = build_group(cluster, cluster.nodes)

        def main():
            yield group.propose(("cmd",), TS_ZERO)
            return cluster.sim.now

        elapsed = cluster.sim.run_process(main())
        assert elapsed < 5.0

    def test_cross_region_quorum_latency(self):
        """Voters spread across regions pay a WAN RTT to commit."""
        cluster = standard_cluster(["us-east1", "us-west1", "europe-west2"],
                                   nodes_per_region=1, jitter_fraction=0.0)
        group, _ = build_group(cluster, cluster.nodes)

        def main():
            yield group.propose(("cmd",), TS_ZERO)
            return cluster.sim.now

        elapsed = cluster.sim.run_process(main())
        # Nearest quorum from us-east1 is us-west1 (63 ms RTT).
        assert 63.0 <= elapsed <= 70.0


class TestLearners:
    def test_learner_receives_log_but_no_vote(self):
        cluster = standard_cluster(["us-east1", "australia-southeast1"],
                                   nodes_per_region=3, jitter_fraction=0.0)
        east = cluster.nodes_in_region("us-east1")
        aus = cluster.nodes_in_region("australia-southeast1")
        group, applied = build_group(cluster, east, learners=aus[:1])

        def main():
            yield group.propose(("cmd",), TS_ZERO)
            return cluster.sim.now

        elapsed = cluster.sim.run_process(main())
        # Quorum is local: commit latency unaffected by the learner.
        assert elapsed < 5.0
        # But the learner applied the command (eventually).
        assert applied[aus[0].node_id] == [("cmd",)]

    def test_learner_cannot_lead(self):
        cluster = one_region_cluster()
        group, _ = build_group(cluster, cluster.nodes[:2],
                               learners=cluster.nodes[2:])
        with pytest.raises(RangeUnavailableError):
            group.set_leader(cluster.nodes[2].node_id)

    def test_quorum_size_ignores_learners(self):
        cluster = one_region_cluster()
        group, _ = build_group(cluster, cluster.nodes[:1],
                               learners=cluster.nodes[1:])
        assert group.quorum_size() == 1


class TestClosedTimestamps:
    def test_closed_ts_propagates_with_entries(self):
        cluster = one_region_cluster()
        group, _ = build_group(cluster, cluster.nodes)

        def main():
            yield group.propose(("cmd",), ts(100))

        cluster.sim.run_process(main())
        cluster.sim.run()
        for peer in group.peers.values():
            assert peer.closed_ts == ts(100)

    def test_closed_ts_monotone_per_peer(self):
        cluster = one_region_cluster()
        group, _ = build_group(cluster, cluster.nodes)

        def main():
            yield group.propose(("a",), ts(100))
            yield group.propose(("b",), ts(50))   # lower: must not regress

        cluster.sim.run_process(main())
        cluster.sim.run()
        for peer in group.peers.values():
            assert peer.closed_ts == ts(100)

    def test_side_transport_advances_idle_followers(self):
        cluster = one_region_cluster()
        group, _ = build_group(cluster, cluster.nodes)
        group.broadcast_closed_ts(ts(500))
        cluster.sim.run()
        for peer in group.peers.values():
            assert peer.closed_ts == ts(500)

    def test_side_transport_requires_caught_up_application(self):
        """A follower that has not applied up to the commit index must not
        adopt a broadcast closed timestamp for data it lacks."""
        cluster = standard_cluster(["us-east1", "australia-southeast1"],
                                   nodes_per_region=2, jitter_fraction=0.0)
        east = cluster.nodes_in_region("us-east1")
        aus = cluster.nodes_in_region("australia-southeast1")
        group, _ = build_group(cluster, east, learners=aus[:1])
        # Propose and immediately broadcast: the learner is behind.
        group.propose(("cmd",), ts(10))
        group.broadcast_closed_ts(ts(999))
        learner = group.peers[aus[0].node_id]
        cluster.sim.run(until=50.0)
        # At 50 ms the append (~70 ms one-way) has not arrived; the
        # broadcast (sent at t=0) arrived but must have been ignored.
        assert learner.closed_ts < ts(999)
        cluster.sim.run()
        assert learner.closed_ts == ts(999)


class TestFailures:
    def test_quorum_loss_times_out(self):
        cluster = one_region_cluster()
        group, _ = build_group(cluster, cluster.nodes, timeout=500.0)
        cluster.network.kill_node(cluster.nodes[1].node_id)
        cluster.network.kill_node(cluster.nodes[2].node_id)

        def main():
            try:
                yield group.propose(("cmd",), TS_ZERO)
            except RangeUnavailableError:
                return "unavailable"
            return "committed"

        assert cluster.sim.run_process(main()) == "unavailable"

    def test_minority_failure_tolerated(self):
        cluster = one_region_cluster()
        group, _ = build_group(cluster, cluster.nodes, timeout=500.0)
        cluster.network.kill_node(cluster.nodes[2].node_id)

        def main():
            yield group.propose(("cmd",), TS_ZERO)
            return "committed"

        assert cluster.sim.run_process(main()) == "committed"

    def test_dead_leader_rejects_proposals(self):
        cluster = one_region_cluster()
        group, _ = build_group(cluster, cluster.nodes)
        cluster.network.kill_node(group.leader_node_id)

        def main():
            try:
                yield group.propose(("cmd",), TS_ZERO)
            except RangeUnavailableError:
                return "rejected"

        assert cluster.sim.run_process(main()) == "rejected"

    def test_leadership_transfer_allows_progress(self):
        cluster = one_region_cluster()
        group, applied = build_group(cluster, cluster.nodes)
        old_leader = group.leader_node_id
        cluster.network.kill_node(old_leader)
        new_leader = cluster.nodes[1].node_id
        group.transfer_leadership(new_leader)
        assert group.term == 2

        def main():
            yield group.propose(("after-failover",), TS_ZERO)
            return "ok"

        assert cluster.sim.run_process(main()) == "ok"
        assert ("after-failover",) in applied[new_leader]

    def test_has_quorum_accounting(self):
        cluster = one_region_cluster()
        group, _ = build_group(cluster, cluster.nodes)
        assert group.has_quorum()
        cluster.network.kill_node(cluster.nodes[1].node_id)
        assert group.has_quorum()
        cluster.network.kill_node(cluster.nodes[2].node_id)
        assert not group.has_quorum()


class TestMembership:
    def test_new_peer_catches_up(self):
        cluster = standard_cluster(["us-east1"], nodes_per_region=4,
                                   jitter_fraction=0.0)
        group, applied = build_group(cluster, cluster.nodes[:3])

        def main():
            yield group.propose(("before",), TS_ZERO)

        cluster.sim.run_process(main())
        # Add a learner after the fact: it snapshots the leader's state.
        late = cluster.nodes[3]
        applied[late.node_id] = []
        peer = group.add_peer(late, ReplicaType.NON_VOTER)
        assert peer.last_index == 1
        assert peer.applied_index == 1

    def test_remove_peer(self):
        cluster = one_region_cluster()
        group, _ = build_group(cluster, cluster.nodes)
        group.remove_peer(cluster.nodes[2].node_id)
        assert len(group.voters()) == 2
