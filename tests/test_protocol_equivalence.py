"""The CrdbProtocol extraction is a pure refactor.

Pulling the lease/intent/parallel-commit pipeline out of the
coordinator and behind the :class:`~repro.txn.protocol.TxnProtocol`
interface must not change a single simulated event: a coordinator
built with the default (``protocol=None``) and one built with an
explicit ``"crdb"`` spec must produce byte-identical histories and
chaos reports.  (The committed bench goldens in ``tests/goldens/`` and
``REBALANCE_golden.json`` pin the default path itself — this file pins
default == explicit.)
"""

import pytest

from repro.chaos import run_scenario
from repro.cluster import standard_cluster
from repro.errors import ConfigurationError
from repro.txn import (
    CrdbProtocol,
    EpochOccProtocol,
    TransactionCoordinator,
    TxnProtocol,
    resolve_protocol,
)
from repro.verify import run_verify

#: Small-but-representative verify workload (same shape the pipeline
#: determinism test uses) — a few seconds for all three seeds.
VERIFY_KWARGS = dict(clients_per_region=1, ops_per_client=4, stale_ops=2)
SEEDS = (0, 1, 2)


class TestResolveProtocol:
    def test_default_is_crdb(self):
        assert isinstance(resolve_protocol(None), CrdbProtocol)
        assert resolve_protocol(None).name == "crdb"

    @pytest.mark.parametrize("spec", ["crdb", "CRDB", "default", ""])
    def test_crdb_aliases(self, spec):
        assert isinstance(resolve_protocol(spec), CrdbProtocol)

    @pytest.mark.parametrize("spec", ["epoch-occ", "epoch_occ", "occ",
                                      "epoch"])
    def test_occ_aliases(self, spec):
        assert isinstance(resolve_protocol(spec), EpochOccProtocol)

    def test_instance_passes_through(self):
        configured = EpochOccProtocol(interval_ms=10.0, validate=False)
        assert resolve_protocol(configured) is configured

    def test_class_is_instantiated(self):
        assert isinstance(resolve_protocol(EpochOccProtocol),
                          EpochOccProtocol)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            resolve_protocol("two-phase-locking")

    def test_coordinator_default_protocol(self):
        cluster = standard_cluster(["us-east1"], seed=0)
        coord = TransactionCoordinator(cluster)
        assert isinstance(coord.protocol, CrdbProtocol)
        assert isinstance(coord.protocol, TxnProtocol)
        assert coord.protocol.wait_kind == "commit-wait"


class TestDefaultEqualsExplicitCrdb:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_verify_history_byte_identical(self, seed):
        default = run_verify(None, seed=seed, **VERIFY_KWARGS)
        explicit = run_verify(None, seed=seed, protocol="crdb",
                              **VERIFY_KWARGS)
        assert default.history.dumps() == explicit.history.dumps()
        assert default.report.dumps() == explicit.report.dumps()

    def test_verify_history_identical_under_nemesis(self):
        default = run_verify("crash-restart", seed=0, **VERIFY_KWARGS)
        explicit = run_verify("crash-restart", seed=0, protocol="crdb",
                              **VERIFY_KWARGS)
        assert default.history.dumps() == explicit.history.dumps()

    def test_chaos_report_identical(self):
        default = run_scenario("partition-leaseholder", 0)
        explicit = run_scenario("partition-leaseholder", 0,
                                txn_protocol="crdb")
        assert default.to_json() == explicit.to_json()

    def test_protocol_instance_matches_name(self):
        by_name = run_verify(None, seed=1, protocol="crdb",
                             **VERIFY_KWARGS)
        by_instance = run_verify(None, seed=1, protocol=CrdbProtocol(),
                                 **VERIFY_KWARGS)
        assert by_name.history.dumps() == by_instance.history.dumps()


class TestOverloadScenarioGuards:
    @pytest.mark.parametrize("name", ["overload-global",
                                      "overload-hot-region"])
    def test_overload_rejects_protocol_override(self, name):
        with pytest.raises(ValueError):
            run_scenario(name, 0, txn_protocol="epoch-occ")
