"""Tests for HLC timestamps, skew, and commit-wait."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.clock import HLC, SkewModel, Timestamp, TS_ZERO
from repro.sim.core import Simulator


class TestTimestamp:
    def test_ordering_by_physical(self):
        assert Timestamp(1.0) < Timestamp(2.0)
        assert Timestamp(2.0) > Timestamp(1.0)

    def test_ordering_by_logical(self):
        assert Timestamp(1.0, 0) < Timestamp(1.0, 1)

    def test_synthetic_does_not_affect_ordering(self):
        assert Timestamp(1.0, 0, synthetic=True) == Timestamp(1.0, 0)
        assert hash(Timestamp(1.0, 0, True)) == hash(Timestamp(1.0, 0, False))

    def test_next_is_strictly_greater(self):
        ts = Timestamp(5.0, 3)
        assert ts.next() > ts
        assert ts.next().physical == ts.physical

    def test_prev_is_strictly_smaller(self):
        ts = Timestamp(5.0, 3)
        assert ts.prev() < ts
        ts0 = Timestamp(5.0, 0)
        assert ts0.prev() < ts0

    def test_add_marks_synthetic(self):
        ts = Timestamp(5.0)
        future = ts.add(100.0)
        assert future.synthetic
        assert future.physical == 105.0

    def test_add_zero_keeps_real(self):
        assert not Timestamp(5.0).add(0.0).synthetic

    def test_with_synthetic(self):
        ts = Timestamp(5.0, 2, synthetic=True)
        real = ts.with_synthetic(False)
        assert not real.synthetic
        assert real == ts  # ordering ignores the flag

    @given(st.floats(min_value=0, max_value=1e9, allow_nan=False),
           st.integers(min_value=0, max_value=1000))
    def test_next_prev_roundtrip_property(self, physical, logical):
        ts = Timestamp(physical, logical)
        assert ts.prev() < ts < ts.next()


class TestSkewModel:
    def test_offsets_bounded_pairwise(self):
        skew = SkewModel(max_offset=250.0, seed=1)
        offsets = [skew.offset_for(i) for i in range(100)]
        for a in offsets:
            for b in offsets:
                assert abs(a - b) <= 250.0

    def test_offsets_stable(self):
        skew = SkewModel(max_offset=100.0, seed=2)
        assert skew.offset_for(7) == skew.offset_for(7)

    def test_zero_fraction_means_no_skew(self):
        skew = SkewModel(max_offset=100.0, seed=3, skew_fraction=0.0)
        assert skew.offset_for(1) == 0.0

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            SkewModel(max_offset=100.0, skew_fraction=1.5)


class TestHLC:
    def test_monotone_readings(self):
        sim = Simulator()
        clock = HLC(sim, node_id=1)
        first = clock.now()
        second = clock.now()
        assert second > first

    def test_advances_with_sim_time(self):
        sim = Simulator()
        clock = HLC(sim, node_id=1)
        t1 = clock.now()
        sim.call_after(10.0, lambda: None)
        sim.run()
        t2 = clock.now()
        assert t2.physical - t1.physical == pytest.approx(10.0)

    def test_update_folds_in_remote_timestamp(self):
        sim = Simulator()
        clock = HLC(sim, node_id=1)
        remote = Timestamp(1000.0, 5)
        after = clock.update(remote)
        assert after > remote

    def test_update_ignores_synthetic(self):
        sim = Simulator()
        clock = HLC(sim, node_id=1)
        future = Timestamp(1000.0, 0, synthetic=True)
        after = clock.update(future)
        assert after < future

    def test_skewed_physical(self):
        sim = Simulator()
        skew = SkewModel(max_offset=100.0, seed=4, skew_fraction=1.0)
        clock = HLC(sim, node_id=1, skew=skew)
        assert clock.physical_now() == skew.offset_for(1)

    def test_commit_wait_blocks_until_target(self):
        sim = Simulator()
        clock = HLC(sim, node_id=1)

        def proc():
            target = Timestamp(50.0, 0, synthetic=True)
            yield clock.wait_until(target)
            return sim.now

        assert sim.run_process(proc()) >= 50.0

    def test_commit_wait_no_op_for_past(self):
        sim = Simulator()
        clock = HLC(sim, node_id=1)
        sim.call_after(100.0, lambda: None)
        sim.run()

        def proc():
            waited = yield clock.wait_until(Timestamp(10.0))
            return waited, sim.now

        waited, now = sim.run_process(proc())
        assert waited == 0.0
        assert now == 100.0

    def test_ts_zero_is_minimum(self):
        assert TS_ZERO <= Timestamp(0.0)
        assert TS_ZERO < Timestamp(0.0, 1)
