"""Tests for the YCSB workload generator and its table modes."""

import pytest

from repro.harness.runner import build_engine, run_clients, sessions_per_region
from repro.metrics import LatencyRecorder
from repro.workloads.ycsb import YCSB_MODES, YCSBOptions, YCSBWorkload
from repro.workloads.zipf import UniformGenerator, ZipfGenerator

REGIONS = ["us-east1", "us-west1", "europe-west2"]


def make_workload(mode="default", **kwargs):
    engine = build_engine(REGIONS, jitter_fraction=0.0)
    options = YCSBOptions(mode=mode, keys_per_region=50, **kwargs)
    workload = YCSBWorkload(engine, REGIONS, options)
    workload.setup()
    workload.load()
    return engine, workload


class TestDistributions:
    def test_zipf_range_and_determinism(self):
        gen_a = ZipfGenerator(100, seed=7)
        gen_b = ZipfGenerator(100, seed=7)
        draws_a = [gen_a.next() for _ in range(500)]
        draws_b = [gen_b.next() for _ in range(500)]
        assert draws_a == draws_b
        assert all(0 <= d < 100 for d in draws_a)

    def test_zipf_skew(self):
        gen = ZipfGenerator(1000, seed=1)
        draws = [gen.next() for _ in range(5000)]
        counts = {}
        for d in draws:
            counts[d] = counts.get(d, 0) + 1
        top = max(counts.values())
        # The hottest key should take far more than a uniform share.
        assert top > 5 * (5000 / 1000)

    def test_uniform_range(self):
        gen = UniformGenerator(10, seed=2)
        draws = [gen.next() for _ in range(1000)]
        assert set(draws) == set(range(10))

    def test_rejects_empty_keyspace(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0)
        with pytest.raises(ValueError):
            UniformGenerator(0)


class TestSetupModes:
    @pytest.mark.parametrize("mode", YCSB_MODES)
    def test_all_modes_build(self, mode):
        engine, workload = make_workload(mode=mode)
        table = engine.catalog.database("ycsb").table("usertable")
        if mode in ("global",):
            assert table.locality.is_global
        elif mode in ("regional_table",):
            assert table.locality.is_regional_by_table
        else:
            assert table.locality.is_regional_by_row

    def test_unoptimized_disables_los(self):
        engine, workload = make_workload(mode="unoptimized")
        table = engine.catalog.database("ycsb").table("usertable")
        assert not table.locality_optimized_search

    def test_baseline_suppresses_uniqueness(self):
        engine, workload = make_workload(mode="baseline")
        table = engine.catalog.database("ycsb").table("usertable")
        assert table.suppress_uniqueness_checks

    def test_rehoming_sets_on_update(self):
        engine, workload = make_workload(mode="rehoming")
        table = engine.catalog.database("ycsb").table("usertable")
        assert table.auto_rehoming


class TestKeyLayout:
    def test_slice_layout_for_default_mode(self):
        engine, workload = make_workload(mode="default")
        assert workload._make_key(0, 5) == 5
        assert workload._make_key(2, 5) == 105
        assert workload._key_region_index(105) == 2

    def test_modular_layout_for_computed_mode(self):
        engine, workload = make_workload(mode="computed")
        key = workload._make_key(1, 7)
        assert key % 3 == 1
        assert workload._key_region_index(key) == 1

    def test_loaded_rows_in_right_partitions(self):
        engine, workload = make_workload(mode="default")
        table = engine.catalog.database("ycsb").table("usertable")
        for region in REGIONS:
            rng = table.primary_index.partitions[region]
            keys = rng.leaseholder_replica.store.keys()
            assert len(keys) == 50
            for (key,) in keys:
                assert workload._region_of_key(key) == region

    def test_insert_keys_unique_and_fresh(self):
        engine, workload = make_workload(mode="default")
        seen = set()
        for client in range(5):
            for _ in range(20):
                key = workload.next_insert_key("us-west1", client)
                assert key >= workload.total_keys()
                assert key not in seen
                seen.add(key)

    def test_insert_keys_modular_mode_land_locally(self):
        engine, workload = make_workload(mode="computed")
        key = workload.next_insert_key("us-west1", 0)
        assert workload._region_of_key(key) == "us-west1"

    def test_remote_pool_disjoint_across_clients(self):
        engine, workload = make_workload(mode="default",
                                         remote_pool_keys=5)
        pool_a = set(workload.remote_pool("us-east1", 0))
        pool_b = set(workload.remote_pool("us-east1", 2))
        assert pool_a and pool_b
        assert pool_a.isdisjoint(pool_b)

    def test_contended_pool_shared(self):
        engine, workload = make_workload(mode="rehoming", contended_keys=4)
        pool = workload.contended_pool()
        assert len(pool) == 4
        assert all(workload._region_of_key(k) == "us-east1" for k in pool)


class TestClientLoop:
    def _run(self, workload, engine, n_ops=30, clients_per_region=1,
             **client_kwargs):
        recorder = LatencyRecorder()
        sessions = sessions_per_region(engine, REGIONS, clients_per_region,
                                       "ycsb")
        clients = [
            (lambda s=s, i=i: workload.client(s, recorder, n_ops, i,
                                              **client_kwargs))
            for i, s in enumerate(sessions)
        ]
        run_clients(engine, clients, recorder, settle_ms=500.0)
        return recorder

    def test_variant_b_mix(self):
        engine, workload = make_workload(mode="default")
        recorder = self._run(workload, engine, n_ops=60)
        reads = recorder.count("read")
        updates = recorder.count("update")
        assert reads + updates == 180
        assert reads > updates * 5  # 95/5 mix

    def test_variant_a_mix(self):
        engine, workload = make_workload(mode="regional_table")
        workload.options.variant = "A"
        workload.options.distribution = "zipf"
        recorder = self._run(workload, engine, n_ops=60)
        reads = recorder.count("read")
        updates = recorder.count("update")
        assert abs(reads - updates) < 60  # roughly 1:1

    def test_variant_d_inserts(self):
        engine, workload = make_workload(mode="default")
        workload.options.variant = "D"
        recorder = self._run(workload, engine, n_ops=60)
        assert recorder.count("insert") > 0

    def test_warmup_not_recorded(self):
        engine, workload = make_workload(mode="default")
        recorder = self._run(workload, engine, n_ops=10, warmup_ops=10)
        assert recorder.total_ops() == 30  # 10 per client, 3 clients

    def test_stale_reads_recorded(self):
        engine, workload = make_workload(mode="regional_table")
        workload.options.read_staleness_ms = 30_000.0
        recorder = self._run(workload, engine, n_ops=40)
        remote_reads = recorder.samples("read", "local", "europe-west2")
        assert remote_reads
        # Stale reads from a non-primary region stay local-fast.
        assert sorted(remote_reads)[len(remote_reads) // 2] < 10.0
