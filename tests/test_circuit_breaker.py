"""Circuit-breaker unit tests: trip/cooldown/probe lifecycle, the
HALF_OPEN single-probe rule under concurrency, and reset-on-restart."""

from repro.cluster import standard_cluster
from repro.kv.circuit import BreakerSet, BreakerState, CircuitBreaker
from repro.kv.distsender import DistSender

REGIONS3 = ["us-east1", "europe-west2", "asia-northeast1"]


class TestBreakerLifecycle:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_ms=500.0)
        for t in (0.0, 1.0):
            breaker.record_failure(t)
            assert breaker.state == BreakerState.CLOSED
        breaker.record_failure(2.0)
        assert breaker.state == BreakerState.OPEN
        assert breaker.trips == 1
        assert not breaker.allow(100.0)
        assert breaker.blocked(100.0)

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        breaker.record_success()
        breaker.record_failure(2.0)
        breaker.record_failure(3.0)
        assert breaker.state == BreakerState.CLOSED

    def test_successful_probe_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ms=100.0)
        breaker.record_failure(0.0)
        assert breaker.allow(150.0)  # the probe
        breaker.record_success()
        assert breaker.state == BreakerState.CLOSED
        assert breaker.allow(151.0)

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ms=100.0)
        breaker.record_failure(0.0)
        assert breaker.allow(150.0)
        breaker.record_failure(150.0)
        assert breaker.state == BreakerState.OPEN
        assert not breaker.allow(200.0)   # cooldown restarted at 150
        assert breaker.allow(260.0)       # 110ms later: next probe


class TestHalfOpenSingleProbe:
    def test_concurrent_requests_admit_exactly_one_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ms=100.0)
        breaker.record_failure(0.0)
        # Cooldown elapsed; a burst of concurrent requests arrives.
        admitted = [breaker.allow(150.0) for _ in range(5)]
        assert admitted == [True, False, False, False, False]
        assert breaker.state == BreakerState.HALF_OPEN
        # Probe succeeds: the breaker closes and traffic flows again.
        breaker.record_success()
        assert all(breaker.allow(151.0) for _ in range(3))

    def test_next_probe_allowed_after_probe_fails(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ms=100.0)
        breaker.record_failure(0.0)
        assert breaker.allow(150.0)
        assert not breaker.allow(150.0)
        breaker.record_failure(151.0)
        # Back to OPEN; after another full cooldown exactly one probe.
        admitted = [breaker.allow(260.0) for _ in range(3)]
        assert admitted == [True, False, False]


class TestReset:
    def test_reset_clears_state_and_stranded_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ms=100.0)
        breaker.record_failure(0.0)
        assert breaker.allow(150.0)  # probe departs... and is abandoned
        breaker.reset()
        assert breaker.state == BreakerState.CLOSED
        assert breaker.consecutive_failures == 0
        assert breaker.trips == 1  # lifetime counter survives
        # Without the reset the stranded probe would deny forever.
        assert breaker.allow(151.0)
        assert breaker.allow(152.0)

    def test_breaker_set_reset_targets_one_node(self):
        breakers = BreakerSet(failure_threshold=1)
        breakers.for_node(1).record_failure(0.0)
        breakers.for_node(2).record_failure(0.0)
        breakers.reset(1)
        breakers.reset(99)  # unknown node: no-op
        assert breakers.for_node(1).state == BreakerState.CLOSED
        assert breakers.for_node(2).state == BreakerState.OPEN
        assert breakers.total_trips() == 2

    def test_distsender_resets_breaker_when_node_restarts(self):
        cluster = standard_cluster(REGIONS3, nodes_per_region=1, seed=0)
        sender = DistSender(cluster)
        victim = cluster.nodes[0].node_id
        breaker = sender.breakers.for_node(victim)
        for t in (0.0, 1.0, 2.0):
            breaker.record_failure(t)
        assert breaker.is_open
        cluster.network.crash_node(victim)
        cluster.network.restart_node(victim)
        assert breaker.state == BreakerState.CLOSED
        assert breaker.allow(3.0)
