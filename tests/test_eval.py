"""Unit tests for SQL expression evaluation."""

import pytest

from repro.errors import SchemaError
from repro.sql import ast
from repro.sql.eval import EvalEnv, columns_referenced, evaluate


def lit(v):
    return ast.Literal(v)


def col(name):
    return ast.ColumnRef(name)


class TestLiteralAndColumns:
    def test_literal(self):
        assert evaluate(lit(42)) == 42
        assert evaluate(lit("x")) == "x"
        assert evaluate(lit(None)) is None

    def test_column_lookup(self):
        assert evaluate(col("a"), {"a": 7}) == 7

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            evaluate(col("missing"), {"a": 1})


class TestComparisons:
    @pytest.mark.parametrize("op,left,right,expected", [
        ("=", 1, 1, True), ("=", 1, 2, False),
        ("<>", 1, 2, True), ("<>", 1, 1, False),
        ("<", 1, 2, True), ("<=", 2, 2, True),
        (">", 3, 2, True), (">=", 1, 2, False),
    ])
    def test_operators(self, op, left, right, expected):
        expr = ast.Comparison(op, lit(left), lit(right))
        assert evaluate(expr) is expected

    def test_null_comparisons_false(self):
        assert evaluate(ast.Comparison("=", lit(None), lit(None))) is False
        assert evaluate(ast.Comparison("<", lit(None), lit(1))) is False

    def test_logical_and(self):
        expr = ast.LogicalAnd(parts=(
            ast.Comparison("=", lit(1), lit(1)),
            ast.Comparison("=", lit(2), lit(2))))
        assert evaluate(expr) is True
        expr = ast.LogicalAnd(parts=(
            ast.Comparison("=", lit(1), lit(1)),
            ast.Comparison("=", lit(2), lit(3))))
        assert evaluate(expr) is False

    def test_in_list(self):
        expr = ast.InList(column=col("a"), values=(lit(1), lit(2)))
        assert evaluate(expr, {"a": 2}) is True
        assert evaluate(expr, {"a": 3}) is False


class TestCaseWhen:
    def test_branches(self):
        expr = ast.CaseWhen(
            whens=((ast.Comparison("=", col("state"), lit("CA")),
                    lit("us-west1")),),
            default=lit("us-east1"))
        assert evaluate(expr, {"state": "CA"}) == "us-west1"
        assert evaluate(expr, {"state": "NY"}) == "us-east1"

    def test_first_matching_branch_wins(self):
        expr = ast.CaseWhen(
            whens=((ast.Comparison("<", col("x"), lit(10)), lit("small")),
                   (ast.Comparison("<", col("x"), lit(100)), lit("mid"))),
            default=lit("big"))
        assert evaluate(expr, {"x": 5}) == "small"
        assert evaluate(expr, {"x": 50}) == "mid"
        assert evaluate(expr, {"x": 500}) == "big"


class TestBuiltins:
    def test_gateway_region(self):
        env = EvalEnv(gateway_region="us-west1")
        assert evaluate(ast.FuncCall("gateway_region"), {}, env) == \
            "us-west1"

    def test_gateway_region_requires_session(self):
        with pytest.raises(SchemaError):
            evaluate(ast.FuncCall("gateway_region"))

    def test_rehome_row_returns_gateway(self):
        env = EvalEnv(gateway_region="eu")
        assert evaluate(ast.FuncCall("rehome_row"), {}, env) == "eu"

    def test_gen_random_uuid_deterministic_with_source(self):
        import random
        env1 = EvalEnv(uuid_source=random.Random(1))
        env2 = EvalEnv(uuid_source=random.Random(1))
        u1 = evaluate(ast.FuncCall("gen_random_uuid"), {}, env1)
        u2 = evaluate(ast.FuncCall("gen_random_uuid"), {}, env2)
        assert u1 == u2
        assert len(u1) == 36

    def test_string_functions(self):
        assert evaluate(ast.FuncCall("lower", (lit("AbC"),))) == "abc"
        assert evaluate(ast.FuncCall("upper", (lit("x"),))) == "X"
        assert evaluate(ast.FuncCall("concat", (lit("a"), lit("b")))) == "ab"

    def test_mod(self):
        assert evaluate(ast.FuncCall("mod", (lit(7), lit(3)))) == 1

    def test_unknown_function_raises(self):
        with pytest.raises(SchemaError):
            evaluate(ast.FuncCall("no_such_fn"))


class TestColumnsReferenced:
    def test_column_ref(self):
        assert columns_referenced(col("a")) == {"a"}

    def test_nested(self):
        expr = ast.CaseWhen(
            whens=((ast.Comparison("=", col("a"), col("b")), col("c")),),
            default=ast.FuncCall("mod", (col("d"), lit(2))))
        assert columns_referenced(expr) == {"a", "b", "c", "d"}

    def test_in_list(self):
        expr = ast.InList(column=col("x"), values=(lit(1), col("y")))
        assert columns_referenced(expr) == {"x", "y"}

    def test_literal_empty(self):
        assert columns_referenced(lit(5)) == set()
