"""Tests for multi-region schema changes (paper §2, §3.3)."""

import pytest

from repro.errors import ConfigurationError, SchemaError
from repro.sql import DEFAULT_PARTITION, REGION_COLUMN, TableLocality

from .sql_util import REGIONS3, REGIONS5, connect, make_engine, movr_engine


class TestCreateDatabase:
    def test_regions_recorded(self):
        engine, session = movr_engine()
        database = engine.catalog.database("movr")
        assert database.primary_region == "us-east1"
        assert database.regions == REGIONS3

    def test_region_must_have_nodes(self):
        engine = make_engine()
        session = engine.connect("us-east1")
        with pytest.raises(SchemaError):
            session.execute('CREATE DATABASE bad PRIMARY REGION "mars"')

    def test_show_regions(self):
        engine, session = movr_engine()
        assert session.execute("SHOW REGIONS FROM DATABASE movr") == REGIONS3


class TestTableLocalities:
    def test_regional_by_table_default(self):
        """REGIONAL BY TABLE in the PRIMARY region is the default (§2.3.1)."""
        engine, session = movr_engine()
        session.execute("CREATE TABLE plain (id int PRIMARY KEY)")
        table = engine.catalog.database("movr").table("plain")
        assert table.locality.is_regional_by_table
        assert table.home_region() == "us-east1"

    def test_regional_by_table_in_region(self):
        engine, session = movr_engine()
        session.execute('CREATE TABLE west (id int PRIMARY KEY) '
                        'LOCALITY REGIONAL BY TABLE IN "us-west1"')
        table = engine.catalog.database("movr").table("west")
        assert table.home_region() == "us-west1"
        rng = table.primary_index.partitions[DEFAULT_PARTITION]
        assert rng.leaseholder_node.locality.region == "us-west1"

    def test_regional_by_row_creates_hidden_column(self):
        """§2.3.2: crdb_region appears, hidden, defaulting to
        gateway_region()."""
        engine, session = movr_engine()
        table = engine.catalog.database("movr").table("users")
        column = table.columns[REGION_COLUMN]
        assert not column.visible
        assert column.not_null
        assert column.default.name == "gateway_region"

    def test_regional_by_row_partitions_per_region(self):
        engine, session = movr_engine()
        table = engine.catalog.database("movr").table("users")
        for index in table.indexes:
            assert sorted(index.partitions.keys()) == sorted(REGIONS3)

    def test_regional_by_row_secondary_indexes_partitioned(self):
        """§2.5: secondary indexes are partitioned like the primary."""
        engine, session = movr_engine()
        table = engine.catalog.database("movr").table("users")
        email_index = [i for i in table.indexes if not i.is_primary][0]
        assert email_index.partitioned
        assert sorted(email_index.partitions.keys()) == sorted(REGIONS3)

    def test_regional_by_row_leaseholders_in_home_region(self):
        engine, session = movr_engine()
        table = engine.catalog.database("movr").table("users")
        for region, rng in table.primary_index.partitions.items():
            assert rng.leaseholder_node.locality.region == region

    def test_global_table_lead_policy(self):
        engine, session = movr_engine()
        table = engine.catalog.database("movr").table("promo_codes")
        rng = table.primary_index.partitions[DEFAULT_PARTITION]
        assert rng.policy.leads
        assert rng.leaseholder_node.locality.region == "us-east1"

    def test_global_table_replica_in_every_region(self):
        engine, session = movr_engine()
        table = engine.catalog.database("movr").table("promo_codes")
        rng = table.primary_index.partitions[DEFAULT_PARTITION]
        regions = {r.node.locality.region for r in rng.replicas.values()}
        assert regions == set(REGIONS3)

    def test_primary_key_required(self):
        engine, session = movr_engine()
        with pytest.raises(SchemaError):
            session.execute("CREATE TABLE nopk (a int)")


class TestAlterLocality:
    def test_alter_to_global(self):
        engine, session = movr_engine()
        session.execute("CREATE TABLE ref (id int PRIMARY KEY, v string)")
        session.execute("INSERT INTO ref (id, v) VALUES (1, 'one')")
        session.execute("ALTER TABLE ref SET LOCALITY GLOBAL")
        table = engine.catalog.database("movr").table("ref")
        assert table.locality.is_global
        rng = table.primary_index.partitions[DEFAULT_PARTITION]
        assert rng.policy.leads
        # Data survived the rebuild.
        assert session.execute("SELECT v FROM ref WHERE id = 1") == \
            [{"v": "one"}]

    def test_alter_to_regional_by_row(self):
        """§2.4.2: converting re-partitions all indexes; existing rows
        land in the PRIMARY region."""
        engine, session = movr_engine()
        session.execute("CREATE TABLE t (id int PRIMARY KEY, v string)")
        session.execute("INSERT INTO t (id, v) VALUES (7, 'x')")
        session.execute("ALTER TABLE t SET LOCALITY REGIONAL BY ROW")
        table = engine.catalog.database("movr").table("t")
        assert table.locality.is_regional_by_row
        assert sorted(table.primary_index.partitions.keys()) == \
            sorted(REGIONS3)
        rows = session.execute("SELECT * FROM t WHERE id = 7")
        assert rows == [{"id": 7, "v": "x"}]
        # The row is homed in the primary region.
        hidden = session.execute(
            "SELECT crdb_region FROM t WHERE id = 7")
        assert hidden == [{"crdb_region": "us-east1"}]

    def test_alter_rbr_to_regional_by_table(self):
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (1, 'a@x', 'A')")
        session.execute("ALTER TABLE users SET LOCALITY "
                        'REGIONAL BY TABLE IN "us-west1"')
        table = engine.catalog.database("movr").table("users")
        assert table.locality.is_regional_by_table
        assert session.execute("SELECT name FROM users WHERE id = 1") == \
            [{"name": "A"}]


class TestAddDropRegion:
    def test_add_region_extends_partitions(self):
        engine, session = movr_engine(regions=REGIONS5[:4])
        session.execute('ALTER DATABASE movr DROP REGION "asia-northeast1"')
        session.execute('ALTER DATABASE movr ADD REGION "asia-northeast1"')
        database = engine.catalog.database("movr")
        assert "asia-northeast1" in database.regions
        table = database.table("users")
        assert "asia-northeast1" in table.primary_index.partitions

    def test_add_region_needs_nodes(self):
        engine, session = movr_engine()
        with pytest.raises(SchemaError):
            session.execute('ALTER DATABASE movr ADD REGION "nowhere"')

    def test_drop_region_removes_partition(self):
        engine, session = movr_engine()
        session.execute('ALTER DATABASE movr DROP REGION "europe-west2"')
        database = engine.catalog.database("movr")
        assert "europe-west2" not in database.regions
        assert "europe-west2" not in \
            database.table("users").primary_index.partitions

    def test_drop_region_with_rows_fails_atomically(self):
        """§2.4.1: validation fails => rollback, region stays writable."""
        engine, session = movr_engine()
        west = connect(engine, "us-west1")
        west.execute("INSERT INTO users (id, email, name) "
                     "VALUES (5, 'w@x', 'W')")
        with pytest.raises(SchemaError, match="still has"):
            session.execute('ALTER DATABASE movr DROP REGION "us-west1"')
        database = engine.catalog.database("movr")
        assert "us-west1" in database.regions
        assert not database.region_enum.is_read_only("us-west1")
        # Still writable afterwards.
        west.execute("INSERT INTO users (id, email, name) "
                     "VALUES (6, 'w2@x', 'W2')")

    def test_drop_primary_region_rejected(self):
        engine, session = movr_engine()
        with pytest.raises(SchemaError):
            session.execute('ALTER DATABASE movr DROP REGION "us-east1"')

    def test_read_only_region_value_rejected_on_write(self):
        engine, session = movr_engine()
        database = engine.catalog.database("movr")
        database.region_enum.set_read_only("us-west1", True)
        west = connect(engine, "us-west1")
        with pytest.raises(SchemaError, match="READ ONLY"):
            west.execute("INSERT INTO users (id, email, name) "
                         "VALUES (9, 'r@x', 'R')")


class TestSurvivabilityChanges:
    def test_survive_region_failure_reconfigures(self):
        engine, session = movr_engine()
        session.execute("ALTER DATABASE movr SURVIVE REGION FAILURE")
        database = engine.catalog.database("movr")
        assert database.survival_goal == "region"
        table = database.table("users")
        for region, rng in table.primary_index.partitions.items():
            assert len(rng.group.voters()) == 5
            home_voters = [v for v in rng.group.voters()
                           if v.node.locality.region == region]
            assert len(home_voters) == 2

    def test_survive_region_needs_three_regions(self):
        engine = make_engine(["us-east1", "us-west1"])
        session = engine.connect("us-east1")
        session.execute('CREATE DATABASE d PRIMARY REGION "us-east1" '
                        'REGIONS "us-west1"')
        with pytest.raises(ConfigurationError):
            session.execute("ALTER DATABASE d SURVIVE REGION FAILURE")

    def test_region_survival_tolerates_home_region_loss(self):
        engine, session = movr_engine()
        session.execute("ALTER DATABASE movr SURVIVE REGION FAILURE")
        table = engine.catalog.database("movr").table("users")
        rng = table.primary_index.partitions["us-east1"]
        for node in engine.cluster.nodes_in_region("us-east1"):
            engine.cluster.network.kill_node(node.node_id)
        assert rng.group.has_quorum()


class TestPlacementRestricted:
    def test_restricted_removes_remote_replicas(self):
        """§3.3.4: no replicas outside the home region for REGIONAL
        tables under PLACEMENT RESTRICTED."""
        engine, session = movr_engine()
        session.execute("ALTER DATABASE movr PLACEMENT RESTRICTED")
        table = engine.catalog.database("movr").table("users")
        for region, rng in table.primary_index.partitions.items():
            regions = {r.node.locality.region for r in rng.replicas.values()}
            assert regions == {region}

    def test_restricted_does_not_affect_global_tables(self):
        engine, session = movr_engine()
        session.execute("ALTER DATABASE movr PLACEMENT RESTRICTED")
        table = engine.catalog.database("movr").table("promo_codes")
        rng = list(table.primary_index.partitions.values())[0]
        regions = {r.node.locality.region for r in rng.replicas.values()}
        assert regions == set(REGIONS3)

    def test_restricted_incompatible_with_region_survival(self):
        engine, session = movr_engine()
        session.execute("ALTER DATABASE movr SURVIVE REGION FAILURE")
        with pytest.raises(ConfigurationError):
            session.execute("ALTER DATABASE movr PLACEMENT RESTRICTED")


class TestSecondaryIndexes:
    def test_create_unique_index_backfills(self):
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (1, 'a@x', 'A')")
        session.execute("CREATE UNIQUE INDEX by_name ON users (name)")
        rows = session.execute("SELECT email FROM users WHERE name = 'A'")
        assert rows == [{"email": "a@x"}]

    def test_drop_table(self):
        engine, session = movr_engine()
        session.execute("DROP TABLE promo_codes")
        with pytest.raises(SchemaError):
            session.execute("SELECT * FROM promo_codes WHERE code = 'x'")
