"""Tests for locality-aware planning (§4): LOS and uniqueness rules."""

import pytest

from repro.optimizer import (
    FanoutPointRead,
    FullScan,
    LocalityOptimizedRead,
    PartitionPointRead,
    Planner,
    equality_bindings,
)
from repro.sql import DEFAULT_PARTITION, parse_one
from repro.sql.eval import EvalEnv

from .sql_util import connect, make_engine, movr_engine


def planner_for(engine, table_name, region="us-east1", db="movr"):
    table = engine.catalog.database(db).table(table_name)
    return Planner(table, gateway_region=region,
                   env=EvalEnv(gateway_region=region)), table


def where_of(sql):
    return parse_one(sql).where


class TestEqualityBindings:
    def test_simple(self):
        where = where_of("SELECT * FROM t WHERE id = 5")
        assert equality_bindings(where) == {"id": 5}

    def test_and_chain(self):
        where = where_of("SELECT * FROM t WHERE a = 1 AND b = 'x'")
        assert equality_bindings(where) == {"a": 1, "b": "x"}

    def test_reversed_operands(self):
        where = where_of("SELECT * FROM t WHERE 5 = id")
        assert equality_bindings(where) == {"id": 5}

    def test_inequality_ignored(self):
        where = where_of("SELECT * FROM t WHERE a > 1")
        assert equality_bindings(where) == {}

    def test_none_where(self):
        assert equality_bindings(None) == {}


class TestPointQueryPlans:
    def test_pk_bound_without_region_uses_los(self):
        engine, _session = movr_engine()
        planner, _ = planner_for(engine, "users")
        plan = planner.plan_point_query(where_of(
            "SELECT * FROM users WHERE id = 1"))
        assert isinstance(plan, LocalityOptimizedRead)
        assert plan.local_partition == "us-east1"
        assert sorted(plan.remote_partitions) == \
            ["europe-west2", "us-west1"]

    def test_unique_email_uses_los(self):
        engine, _session = movr_engine()
        planner, _ = planner_for(engine, "users")
        plan = planner.plan_point_query(where_of(
            "SELECT * FROM users WHERE email = 'a@x'"))
        assert isinstance(plan, LocalityOptimizedRead)

    def test_region_bound_single_partition(self):
        engine, _session = movr_engine()
        planner, _ = planner_for(engine, "users")
        plan = planner.plan_point_query(where_of(
            "SELECT * FROM users WHERE id = 1 AND "
            "crdb_region = 'us-west1'"))
        assert isinstance(plan, PartitionPointRead)
        assert plan.partition == "us-west1"

    def test_los_disabled_gives_fanout(self):
        engine, _session = movr_engine()
        planner, table = planner_for(engine, "users")
        table.locality_optimized_search = False
        plan = planner.plan_point_query(where_of(
            "SELECT * FROM users WHERE id = 1"))
        assert isinstance(plan, FanoutPointRead)
        assert len(plan.partitions) == 3

    def test_unpartitioned_table_single_partition(self):
        engine, _session = movr_engine()
        planner, _ = planner_for(engine, "promo_codes")
        plan = planner.plan_point_query(where_of(
            "SELECT * FROM promo_codes WHERE code = 'X'"))
        assert isinstance(plan, PartitionPointRead)
        assert plan.partition == DEFAULT_PARTITION

    def test_unbound_key_full_scan(self):
        engine, _session = movr_engine()
        planner, _ = planner_for(engine, "users")
        plan = planner.plan_point_query(where_of(
            "SELECT * FROM users WHERE name = 'A'"))
        assert isinstance(plan, FullScan)

    def test_computed_region_inferred_from_determinants(self):
        engine, session = movr_engine()
        session.execute(
            "CREATE TABLE accounts (id int PRIMARY KEY, state string, "
            "crdb_region crdb_internal_region AS "
            "(CASE WHEN state = 'CA' THEN 'us-west1' ELSE 'us-east1' END) "
            "STORED) LOCALITY REGIONAL BY ROW")
        planner, _ = planner_for(engine, "accounts")
        plan = planner.plan_point_query(where_of(
            "SELECT * FROM accounts WHERE id = 1 AND state = 'CA'"))
        assert isinstance(plan, PartitionPointRead)
        assert plan.partition == "us-west1"

    def test_gateway_outside_db_regions_fans_out(self):
        """A gateway whose region is not a partition cannot do LOS."""
        engine, _session = movr_engine()
        planner, _ = planner_for(engine, "users", region="mars")
        plan = planner.plan_point_query(where_of(
            "SELECT * FROM users WHERE id = 1"))
        assert isinstance(plan, FanoutPointRead)

    def test_explain_strings(self):
        engine, _session = movr_engine()
        planner, _ = planner_for(engine, "users")
        plan = planner.plan_point_query(where_of(
            "SELECT * FROM users WHERE id = 1"))
        assert "locality-optimized-search" in plan.explain()


class TestUniquenessCheckPlans:
    def test_default_rbr_needs_global_checks(self):
        """No help from the user: pk and email check every region."""
        engine, _session = movr_engine()
        planner, table = planner_for(engine, "users")
        row = {"id": 1, "email": "a@x", "name": "A",
               "crdb_region": "us-east1"}
        checks = planner.plan_uniqueness_checks(row)
        by_reason = {c.index.name: c for c in checks}
        assert all(len(c.partitions) == 3 for c in checks)
        assert len(checks) == 2  # pk + email

    def test_rule1_generated_uuid_skipped(self):
        engine, session = movr_engine()
        session.execute(
            "CREATE TABLE sessions (id uuid PRIMARY KEY "
            "DEFAULT gen_random_uuid(), v string) "
            "LOCALITY REGIONAL BY ROW")
        planner, _ = planner_for(engine, "sessions")
        row = {"id": "u-u-i-d", "v": "x", "crdb_region": "us-east1"}
        checks = planner.plan_uniqueness_checks(
            row, generated_columns=frozenset({"id"}))
        assert checks == []

    def test_rule1_explicit_value_still_checked(self):
        """A user-provided value for the UUID column is still checked."""
        engine, session = movr_engine()
        session.execute(
            "CREATE TABLE sessions2 (id uuid PRIMARY KEY "
            "DEFAULT gen_random_uuid(), v string) "
            "LOCALITY REGIONAL BY ROW")
        planner, _ = planner_for(engine, "sessions2")
        row = {"id": "explicit", "v": "x", "crdb_region": "us-east1"}
        checks = planner.plan_uniqueness_checks(row)
        assert len(checks) == 1
        assert len(checks[0].partitions) == 3

    def test_rule2_region_in_constraint_local_only(self):
        engine, session = movr_engine()
        session.execute(
            "CREATE TABLE percity (id int PRIMARY KEY, code string, "
            "UNIQUE (crdb_region, code)) LOCALITY REGIONAL BY ROW")
        planner, _ = planner_for(engine, "percity")
        row = {"id": 1, "code": "c", "crdb_region": "us-west1"}
        checks = planner.plan_uniqueness_checks(row)
        code_checks = [c for c in checks if "code" in c.constraint]
        assert len(code_checks) == 1
        assert code_checks[0].partitions == ["us-west1"]

    def test_rule3_computed_region_local_only(self):
        engine, session = movr_engine()
        session.execute(
            "CREATE TABLE accounts (id int PRIMARY KEY, "
            "crdb_region crdb_internal_region AS "
            "(CASE WHEN mod(id, 2) = 0 THEN 'us-west1' ELSE 'us-east1' END)"
            " STORED) LOCALITY REGIONAL BY ROW")
        planner, _ = planner_for(engine, "accounts")
        row = {"id": 2, "crdb_region": "us-west1"}
        checks = planner.plan_uniqueness_checks(row)
        assert len(checks) == 1
        assert checks[0].partitions == ["us-west1"]
        assert checks[0].reason == "region computed from key"

    def test_update_checks_only_changed_constraints(self):
        engine, _session = movr_engine()
        planner, _ = planner_for(engine, "users")
        row = {"id": 1, "email": "a@x", "name": "B",
               "crdb_region": "us-east1"}
        checks = planner.plan_uniqueness_checks(
            row, changed_columns=frozenset({"name"}))
        assert checks == []
        checks = planner.plan_uniqueness_checks(
            row, changed_columns=frozenset({"email"}))
        assert len(checks) == 1
        assert checks[0].constraint == ("email",)

    def test_suppressed_checks(self):
        engine, _session = movr_engine()
        planner, table = planner_for(engine, "users")
        table.suppress_uniqueness_checks = True
        row = {"id": 1, "email": "a@x", "name": "A",
               "crdb_region": "us-east1"}
        assert planner.plan_uniqueness_checks(row) == []

    def test_non_partitioned_table_single_check(self):
        engine, _session = movr_engine()
        planner, _ = planner_for(engine, "promo_codes")
        row = {"code": "X", "description": "d"}
        checks = planner.plan_uniqueness_checks(row)
        assert len(checks) == 1
        assert checks[0].partitions == [DEFAULT_PARTITION]
