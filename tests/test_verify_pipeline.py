"""End-to-end recorder -> checker pipeline tests.

Exercises the recording hooks in the transaction coordinator and the
SQL session layer against a live simulated cluster, then feeds the
captured history through the pure checkers.
"""

import pytest

from repro.verify import HistoryRecorder, VerifyHistory, check, run_verify

from .kv_util import REGIONS3, KVTestBed
from .sql_util import movr_engine, connect


def attach_recorder(bed):
    recorder = HistoryRecorder(bed.sim)
    bed.coord.recorder = recorder
    return recorder


class TestKvRecording:
    def _rmw_workload(self, bed, rng):
        """Three clients doing list appends + register RMWs, serially."""
        seq = {"n": 0}

        def append_fn(label):
            def txn_fn(txn):
                current = yield from txn.read(rng, "l0")
                seq["n"] += 1
                value = f"{label}:{seq['n']}"
                yield from txn.write(rng, "l0", list(current or []) + [value])
                yield from txn.write(rng, "r0", value)
                return value
            return txn_fn

        for i, region in enumerate(REGIONS3 * 2):
            bed.run_txn(region, append_fn(f"cli-{i % 3}"))

    def test_clean_workload_records_and_passes(self):
        bed = KVTestBed(regions=REGIONS3)
        rng = bed.make_range("us-east1")
        recorder = attach_recorder(bed)
        recorder.meta["keys"] = {
            f"{rng.name}/l0": {"kind": "list", "global": False},
            f"{rng.name}/r0": {"kind": "register", "global": False},
        }
        self._rmw_workload(bed, rng)
        bed.settle(500.0)
        final, _ = bed.do_read("us-east1", rng, "l0")
        recorder.final[f"{rng.name}/l0"] = final

        history = recorder.finalize()
        committed = [t for t in history.txns if t.status == "committed"]
        # 6 workload txns + the final audit read.
        assert len(committed) == 7
        assert all(t.commit_ts is not None for t in committed)
        assert all(t.end_ms is not None for t in committed)
        # Every op carries a full "<range>/<key>" key and a version ts.
        ops = [op for t in committed for op in t.ops]
        assert ops and all("/" in op.key for op in ops)
        assert all(op.version_ts is not None for op in ops
                   if not op.from_intent)

        report = check(history)
        assert report.ok, report.render()
        assert len(final) == 6

    def test_history_round_trips_and_report_is_replayable(self):
        bed = KVTestBed(regions=REGIONS3)
        rng = bed.make_range("us-east1")
        recorder = attach_recorder(bed)
        recorder.meta["keys"] = {
            f"{rng.name}/l0": {"kind": "list", "global": False},
            f"{rng.name}/r0": {"kind": "register", "global": False},
        }
        self._rmw_workload(bed, rng)
        history = recorder.finalize()

        dumped = history.dumps()
        reloaded = VerifyHistory.loads(dumped)
        assert reloaded.dumps() == dumped
        assert check(reloaded).dumps() == check(history).dumps()

    def test_aborted_txn_recorded_as_aborted(self):
        bed = KVTestBed(regions=REGIONS3)
        rng = bed.make_range("us-east1")
        recorder = attach_recorder(bed)

        class Boom(Exception):
            pass

        def txn_fn(txn):
            yield from txn.write(rng, "r0", "doomed")
            raise Boom()

        with pytest.raises(Boom):
            bed.run_txn("us-east1", txn_fn)
        history = recorder.finalize()
        assert [t.status for t in history.txns] == ["aborted"]
        assert check(history).ok

    def test_recorder_off_by_default(self):
        bed = KVTestBed(regions=REGIONS3)
        rng = bed.make_range("us-east1")
        assert bed.coord.recorder is None
        bed.do_write("us-east1", rng, "k", "v")  # must not blow up


class TestSqlRecording:
    def _engine_with_recorder(self):
        engine, session = movr_engine(closed_ts_lag_ms=100.0)
        recorder = HistoryRecorder(engine.cluster.sim)
        engine.coordinator.recorder = recorder
        return engine, session, recorder

    def test_sql_txns_and_stale_selects_recorded(self):
        engine, session, recorder = self._engine_with_recorder()
        session.label = "writer"
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (1, 'a@x', 'A')")
        session.execute("INSERT INTO promo_codes (code, description) "
                        "VALUES ('P', 'promo')")
        sim = engine.cluster.sim
        sim.run(until=sim.now + 4000.0)

        west = connect(engine, "us-west1")
        west.label = "stale-reader"
        rows = west.execute(
            "SELECT name FROM users AS OF SYSTEM TIME '-2s' WHERE id = 1")
        assert rows == [{"name": "A"}]
        rows = west.execute(
            "SELECT description FROM promo_codes "
            "AS OF SYSTEM TIME with_max_staleness('30s') WHERE code = 'P'")
        assert rows == [{"description": "promo"}]

        history = recorder.finalize()
        writers = [t for t in history.txns
                   if t.label == "writer" and t.status == "committed"]
        assert len(writers) == 2
        assert any(op.kind == "w" for t in writers for op in t.ops)

        stale = [t for t in history.txns if t.mode in ("exact", "bounded")]
        assert sorted(t.mode for t in stale) == ["bounded", "exact"]
        for t in stale:
            assert t.label == "stale-reader"
            assert t.status == "committed"
            assert t.requested_ts is not None
            assert any(op.kind == "r" for op in t.ops)
        bounded = next(t for t in stale if t.mode == "bounded")
        assert bounded.effective_ts is not None
        assert bounded.effective_ts >= bounded.requested_ts

        report = check(history)
        assert report.ok, report.render()

    def test_stale_select_observes_old_version_cleanly(self):
        """The dml-suite scenario: a '-3s' read legitimately missing a
        fresh write must not be flagged (and the overshoot checker must
        still see the requested timestamp)."""
        engine, session, recorder = self._engine_with_recorder()
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (1, 'a@x', 'A')")
        sim = engine.cluster.sim
        sim.run(until=sim.now + 5000.0)
        session.execute("UPDATE users SET name = 'A2' WHERE id = 1")
        rows = session.execute(
            "SELECT name FROM users AS OF SYSTEM TIME '-3s' WHERE id = 1")
        assert rows == [{"name": "A"}]

        report = check(recorder.finalize())
        assert report.ok, report.render()


class TestGeneratorSmoke:
    def test_fault_free_run_is_clean_and_deterministic(self):
        first = run_verify(None, seed=1, clients_per_region=1,
                           ops_per_client=4, stale_ops=2)
        assert first.ok, first.report.render()
        assert first.stats["txns_recorded"] > 0
        second = run_verify(None, seed=1, clients_per_region=1,
                            ops_per_client=4, stale_ops=2)
        assert second.history.dumps() == first.history.dumps()
        assert second.report.dumps() == first.report.dumps()
