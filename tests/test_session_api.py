"""Tests for the Session API surface: intervals, errors, SHOW statements,
IN-list queries, statement counting."""

import pytest

from repro.errors import SchemaError, SqlSyntaxError
from repro.sql.session import parse_interval_ms

from .sql_util import REGIONS3, connect, make_engine, movr_engine


class TestIntervalParsing:
    @pytest.mark.parametrize("text,expected", [
        ("-30s", -30_000.0),
        ("500ms", 500.0),
        ("2m", 120_000.0),
        ("1h", 3_600_000.0),
        ("1.5s", 1500.0),
    ])
    def test_valid(self, text, expected):
        assert parse_interval_ms(text) == expected

    @pytest.mark.parametrize("text", ["", "10", "s", "10 sec", "abc"])
    def test_invalid(self, text):
        with pytest.raises(SqlSyntaxError):
            parse_interval_ms(text)


class TestSessionErrors:
    def test_dml_without_database(self):
        engine = make_engine()
        session = engine.connect("us-east1")
        with pytest.raises(SchemaError, match="no database"):
            session.execute("SELECT * FROM t WHERE id = 1")

    def test_use_unknown_database(self):
        engine = make_engine()
        session = engine.connect("us-east1")
        with pytest.raises(SchemaError):
            session.execute("USE nope")

    def test_unknown_table(self):
        engine, session = movr_engine()
        with pytest.raises(SchemaError):
            session.execute("SELECT * FROM ghosts WHERE id = 1")

    def test_syntax_error(self):
        engine, session = movr_engine()
        with pytest.raises(SqlSyntaxError):
            session.execute("SELEC * FROM users")

    def test_unknown_column_in_insert(self):
        engine, session = movr_engine()
        with pytest.raises(SchemaError):
            session.execute("INSERT INTO users (nope) VALUES (1)")


class TestShowStatements:
    def test_show_regions_cluster(self):
        engine, session = movr_engine()
        assert session.execute("SHOW REGIONS") == REGIONS3

    def test_show_ranges_reports_placement(self):
        engine, session = movr_engine()
        rows = session.execute("SHOW RANGES FROM TABLE users")
        # 2 indexes (pk + email) x 3 partitions.
        assert len(rows) == 6
        for row in rows:
            assert row["lease_region"] == row["partition"]
            assert len(row["voters"]) == 3
            assert set(row["voters"]) == {row["partition"]}

    def test_show_ranges_global_table(self):
        engine, session = movr_engine()
        rows = session.execute("SHOW RANGES FROM TABLE promo_codes")
        assert len(rows) == 1
        assert rows[0]["lease_region"] == "us-east1"
        assert len(rows[0]["non_voters"]) == 2

    def test_show_zone_configuration_fields(self):
        engine, session = movr_engine()
        rows = session.execute("SHOW ZONE CONFIGURATION FOR TABLE users")
        assert len(rows) == 3
        for row in rows:
            assert row["num_voters"] == 3
            assert row["lease_preferences"] == [row["partition"]]

    def test_show_zone_configuration_region_survival(self):
        engine, session = movr_engine()
        session.execute("ALTER DATABASE movr SURVIVE REGION FAILURE")
        rows = session.execute("SHOW ZONE CONFIGURATION FOR TABLE users")
        for row in rows:
            assert row["num_voters"] == 5
            assert row["voter_constraints"][row["partition"]] == 2


class TestInListQueries:
    def test_in_list_returns_all_matches(self):
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) VALUES "
                        "(1, 'a@x', 'A'), (2, 'b@x', 'B'), (3, 'c@x', 'C')")
        rows = session.execute(
            "SELECT name FROM users WHERE id IN (1, 3, 404)")
        assert sorted(r["name"] for r in rows) == ["A", "C"]

    def test_in_list_local_latency_for_local_rows(self):
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) VALUES "
                        "(1, 'a@x', 'A'), (2, 'b@x', 'B')")
        sim = engine.cluster.sim
        start = sim.now
        session.execute("SELECT name FROM users WHERE id IN (1, 2)")
        assert sim.now - start < 10.0

    def test_in_list_on_unique_column(self):
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) VALUES "
                        "(1, 'a@x', 'A'), (2, 'b@x', 'B')")
        rows = session.execute(
            "SELECT id FROM users WHERE email IN ('a@x', 'b@x')")
        assert sorted(r["id"] for r in rows) == [1, 2]

    def test_in_list_explain_shows_multi_search(self):
        engine, session = movr_engine()
        lines = session.execute(
            "EXPLAIN SELECT * FROM users WHERE id IN (1, 2, 3)")
        assert any("3 keys" in line for line in lines)

    def test_in_list_on_non_unique_column_scans(self):
        engine, session = movr_engine()
        lines = session.execute(
            "EXPLAIN SELECT * FROM users WHERE name IN ('A', 'B')")
        assert any("full-scan" in line for line in lines)


class TestStatementCounters:
    def test_ddl_vs_dml_counting(self):
        engine, session = movr_engine()
        ddl_before = session.ddl_statement_count
        dml_before = session.dml_statement_count
        session.execute("CREATE TABLE x (id int PRIMARY KEY)")
        session.execute("INSERT INTO x (id) VALUES (1)")
        session.execute("SELECT * FROM x WHERE id = 1")
        assert session.ddl_statement_count == ddl_before + 1
        assert session.dml_statement_count == dml_before + 2

    def test_multi_statement_script_result_is_last(self):
        engine, session = movr_engine()
        result = session.execute(
            "INSERT INTO users (id, email, name) VALUES (7, 'g@x', 'G');"
            "SELECT name FROM users WHERE id = 7;")
        assert result == [{"name": "G"}]


class TestScans:
    def test_full_scan_without_where(self):
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) VALUES "
                        "(1, 'a@x', 'A'), (2, 'b@x', 'B')")
        rows = session.execute("SELECT * FROM users")
        assert len(rows) == 2

    def test_full_scan_with_filter(self):
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) VALUES "
                        "(1, 'a@x', 'A'), (2, 'b@x', 'A'), (3, 'c@x', 'B')")
        rows = session.execute("SELECT id FROM users WHERE name = 'A'")
        assert sorted(r["id"] for r in rows) == [1, 2]

    def test_scan_sees_rows_from_all_partitions(self):
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (1, 'a@x', 'A')")
        west = connect(engine, "us-west1")
        west.execute("INSERT INTO users (id, email, name) "
                     "VALUES (2, 'b@x', 'B')")
        rows = session.execute("SELECT id FROM users")
        assert sorted(r["id"] for r in rows) == [1, 2]
