"""Whole-system isolation checks.

Serializability: run many concurrent read-modify-write transactions on
a small key set, then verify the final database state is exactly what
*some* serial order produces — specifically the commit-timestamp order,
which is the serial order a timestamp-based MVCC system promises.

Linearizability (single key, GLOBAL tables): once a write is
acknowledged, every subsequently-issued read must observe it (paper
§6.1/§6.2) — even from other regions, even with clock skew.
"""

import random

import pytest

from repro.kv.distsender import ReadRouting

from .kv_util import KVTestBed, REGIONS3, REGIONS5

PRIMARY = "us-east1"


class TestSerializability:
    @pytest.mark.parametrize("global_reads,seed", [
        (False, 1), (False, 2), (True, 3), (False, 4), (True, 5),
    ])
    def test_concurrent_increments_match_serial_order(self, global_reads,
                                                      seed):
        """Counters incremented concurrently from every region: the sum
        of all committed increments must equal the final counter values
        (no lost updates), and per-key history must be contiguous."""
        bed = KVTestBed(regions=REGIONS3, skew_fraction=0.5, seed=seed)
        rng_table = bed.make_range(PRIMARY, global_reads=global_reads)
        keys = ["k0", "k1", "k2"]
        for key in keys:
            bed.do_write(PRIMARY, rng_table, key, 0)
        bed.settle(2000.0)

        sim = bed.sim
        committed = []
        rng = random.Random(seed)
        routing = (ReadRouting.NEAREST if global_reads
                   else ReadRouting.LEASEHOLDER)

        def client(region, client_id, n_txns):
            gateway = bed.gateway(region, client_id)
            for i in range(n_txns):
                key = rng.choice(keys)

                def txn_fn(txn, key=key):
                    value = yield from txn.read(rng_table, key,
                                                routing=routing)
                    yield sim.sleep(rng.uniform(0.0, 5.0))
                    yield from txn.write(rng_table, key, value + 1)
                    return key

                result, commit_ts = yield from bed.coord.run(gateway, txn_fn)
                committed.append((result, commit_ts))

        processes = []
        for r_i, region in enumerate(REGIONS3):
            for c in range(2):
                processes.append(sim.spawn(client(region, c, 4)))
        for process in processes:
            sim.run_until_future(process)

        # Every committed increment is reflected: final value per key ==
        # number of commits that incremented it (serializability: the
        # read inside each txn saw every earlier committed increment).
        expected = {key: 0 for key in keys}
        for key, _ts in committed:
            expected[key] += 1
        for key in keys:
            value, _ = bed.do_read(PRIMARY, rng_table, key)
            assert value == expected[key], key

    def test_commit_timestamps_totally_ordered_per_key(self):
        """Commit timestamps of conflicting (same-key) transactions are
        distinct — the serial order is well-defined."""
        bed = KVTestBed(regions=REGIONS3, seed=9)
        rng_table = bed.make_range(PRIMARY)
        bed.do_write(PRIMARY, rng_table, "k", 0)
        sim = bed.sim
        commit_timestamps = []

        def incr(txn):
            value = yield from txn.read(rng_table, "k")
            yield from txn.write(rng_table, "k", value + 1)

        def client(region, index):
            gateway = bed.gateway(region, index)
            for _ in range(3):
                _res, ts = yield from bed.coord.run(gateway, incr)
                commit_timestamps.append(ts)

        processes = [sim.spawn(client(region, 0)) for region in REGIONS3]
        for process in processes:
            sim.run_until_future(process)
        assert len(set(commit_timestamps)) == len(commit_timestamps)


class TestLinearizability:
    @pytest.mark.parametrize("skew_fraction", [0.05, 0.5, 1.0])
    def test_acknowledged_global_write_visible_everywhere(self,
                                                          skew_fraction):
        """The §6.2 guarantee under increasing (bounded) clock skew: a
        read issued after the writer's ack — from any region — sees the
        write."""
        bed = KVTestBed(regions=REGIONS5, skew_fraction=skew_fraction,
                        seed=11)
        rng_table = bed.make_range(PRIMARY, global_reads=True)
        bed.do_write(PRIMARY, rng_table, "k", "v0")
        bed.settle(2000.0)

        for i in range(3):
            bed.do_write(PRIMARY, rng_table, "k", f"v{i + 1}")
            for region in REGIONS5:
                value, _ = bed.do_read(region, rng_table, "k",
                                       routing=ReadRouting.NEAREST)
                assert value == f"v{i + 1}", (region, skew_fraction)

    def test_monotonic_reads_across_regions(self):
        """Reads issued one after another (in real time) from different
        regions never observe older values than an earlier read did."""
        bed = KVTestBed(regions=REGIONS3, skew_fraction=1.0, seed=13)
        rng_table = bed.make_range(PRIMARY, global_reads=True)
        bed.do_write(PRIMARY, rng_table, "k", 0)
        bed.settle(2000.0)
        sim = bed.sim

        observed = []

        def writer():
            gateway = bed.gateway(PRIMARY)
            for i in range(4):
                def txn_fn(txn, i=i):
                    yield from txn.write(rng_table, "k", i + 1)
                yield from bed.coord.run(gateway, txn_fn)
                yield sim.sleep(50.0)

        def reader():
            regions = REGIONS3 * 6
            for region in regions:
                gateway = bed.gateway(region)

                def txn_fn(txn):
                    value = yield from txn.read(
                        rng_table, "k", routing=ReadRouting.NEAREST)
                    return value

                value, _ = yield from bed.coord.run(gateway, txn_fn)
                observed.append(value)
                yield sim.sleep(30.0)

        wp = sim.spawn(writer())
        rp = sim.spawn(reader())
        sim.run_until_future(rp)
        sim.run_until_future(wp)
        assert observed == sorted(observed), observed
