"""Whole-system isolation checks, driven through the verify pipeline.

Serializability: run many concurrent read-modify-write transactions on
a small key set and feed the recorded history to the Elle-style checker
(:mod:`repro.verify`) — version orders, wr/ww/rw cycles, lost updates
and final-state agreement are all derived from the history itself
rather than hand-rolled per-test bookkeeping.

Linearizability (single key, GLOBAL tables): once a write is
acknowledged, every subsequently-issued read must observe it (paper
§6.1/§6.2) — even from other regions, even with clock skew.
"""

import random

import pytest

from repro.kv.distsender import ReadRouting
from repro.verify import HistoryRecorder, check

from .kv_util import KVTestBed, REGIONS3, REGIONS5

PRIMARY = "us-east1"


def attach_recorder(bed, rng_table, keys, kind, global_reads=False):
    recorder = HistoryRecorder(bed.sim)
    bed.coord.recorder = recorder
    recorder.meta["keys"] = {
        f"{rng_table.name}/{key}": {"kind": kind, "global": global_reads}
        for key in keys}
    return recorder


def record_final(bed, recorder, rng_table, keys, routing=None):
    for key in keys:
        kwargs = {} if routing is None else {"routing": routing}
        value, _ = bed.do_read(PRIMARY, rng_table, key, **kwargs)
        recorder.final[f"{rng_table.name}/{key}"] = value


class TestSerializability:
    @pytest.mark.parametrize("global_reads,seed", [
        (False, 1), (False, 2), (True, 3), (False, 4), (True, 5),
    ])
    def test_concurrent_appends_match_serial_order(self, global_reads, seed):
        """List keys appended concurrently from every region: the
        recorded history must be free of isolation anomalies (no lost
        updates, no dependency cycles, data-derived version order
        agreeing with commit timestamps) and every acknowledged append
        must survive into the final state."""
        bed = KVTestBed(regions=REGIONS3, skew_fraction=0.5, seed=seed)
        rng_table = bed.make_range(PRIMARY, global_reads=global_reads)
        keys = ["k0", "k1", "k2"]
        recorder = attach_recorder(bed, rng_table, keys, "list",
                                   global_reads)
        for key in keys:
            bed.do_write(PRIMARY, rng_table, key, [])
        bed.settle(2000.0)

        sim = bed.sim
        rng = random.Random(seed)
        routing = (ReadRouting.NEAREST if global_reads
                   else ReadRouting.LEASEHOLDER)
        attempt = {"n": 0}

        def client(region, client_id, n_txns):
            gateway = bed.gateway(region, client_id)
            label = f"{region}/{client_id}"
            for _ in range(n_txns):
                key = rng.choice(keys)

                def txn_fn(txn, key=key):
                    value = yield from txn.read(rng_table, key,
                                                routing=routing)
                    yield sim.sleep(rng.uniform(0.0, 5.0))
                    # The appended token is regenerated per attempt so
                    # retried transactions still write unique values.
                    attempt["n"] += 1
                    token = f"{label}:{attempt['n']}"
                    yield from txn.write(rng_table, key,
                                         list(value or []) + [token])

                yield from bed.coord.run(gateway, txn_fn, label=label)

        processes = []
        for region in REGIONS3:
            for c in range(2):
                processes.append(sim.spawn(client(region, c, 4)))
        for process in processes:
            sim.run_until_future(process)

        record_final(bed, recorder, rng_table, keys)
        history = recorder.finalize()
        report = check(history)
        assert report.ok, report.render()

        # Cross-check against the recorder itself: one surviving append
        # per committed client transaction — nothing lost, nothing extra.
        committed_appends = [t for t in history.txns
                             if t.status == "committed" and "/" in t.label]
        assert len(committed_appends) == 24
        total = sum(len(recorder.final[f"{rng_table.name}/{key}"])
                    for key in keys)
        assert total == len(committed_appends)

    def test_commit_timestamps_totally_ordered_per_key(self):
        """Commit timestamps of conflicting (same-key) transactions are
        distinct — the serial order is well-defined."""
        bed = KVTestBed(regions=REGIONS3, seed=9)
        rng_table = bed.make_range(PRIMARY)
        bed.do_write(PRIMARY, rng_table, "k", 0)
        sim = bed.sim
        commit_timestamps = []

        def incr(txn):
            value = yield from txn.read(rng_table, "k")
            yield from txn.write(rng_table, "k", value + 1)

        def client(region, index):
            gateway = bed.gateway(region, index)
            for _ in range(3):
                _res, ts = yield from bed.coord.run(gateway, incr)
                commit_timestamps.append(ts)

        processes = [sim.spawn(client(region, 0)) for region in REGIONS3]
        for process in processes:
            sim.run_until_future(process)
        assert len(set(commit_timestamps)) == len(commit_timestamps)


class TestLinearizability:
    @pytest.mark.parametrize("skew_fraction", [0.05, 0.5, 1.0])
    def test_acknowledged_global_write_visible_everywhere(self,
                                                          skew_fraction):
        """The §6.2 guarantee under increasing (bounded) clock skew: a
        read issued after the writer's ack — from any region — sees the
        write.  The direct assertion is kept, and the recorded history
        goes through the checker whose stale-strong-read rule verifies
        the same property systematically."""
        bed = KVTestBed(regions=REGIONS5, skew_fraction=skew_fraction,
                        seed=11)
        rng_table = bed.make_range(PRIMARY, global_reads=True)
        recorder = attach_recorder(bed, rng_table, ["k"], "register",
                                   global_reads=True)
        bed.do_write(PRIMARY, rng_table, "k", "v0")
        bed.settle(2000.0)

        for i in range(3):
            bed.do_write(PRIMARY, rng_table, "k", f"v{i + 1}")
            for region in REGIONS5:
                value, _ = bed.do_read(region, rng_table, "k",
                                       routing=ReadRouting.NEAREST)
                assert value == f"v{i + 1}", (region, skew_fraction)

        recorder.final[f"{rng_table.name}/k"] = "v3"
        report = check(recorder.finalize())
        assert report.ok, report.render()

    def test_monotonic_reads_across_regions(self):
        """Reads issued one after another (in real time) from different
        regions never observe older values than an earlier read did.
        All reader transactions share one session label; the checker's
        non-monotonic-session rule enforces the invariant from the
        recorded history."""
        bed = KVTestBed(regions=REGIONS3, skew_fraction=1.0, seed=13)
        rng_table = bed.make_range(PRIMARY, global_reads=True)
        recorder = attach_recorder(bed, rng_table, ["k"], "register",
                                   global_reads=True)
        bed.do_write(PRIMARY, rng_table, "k", "w0")
        bed.settle(2000.0)
        sim = bed.sim
        seq = {"n": 0}

        def writer():
            gateway = bed.gateway(PRIMARY)
            for _ in range(4):
                def txn_fn(txn):
                    # Value regenerated per attempt: stays unique even
                    # if the transaction retries.
                    seq["n"] += 1
                    yield from txn.write(rng_table, "k", f"w{seq['n']}")
                yield from bed.coord.run(gateway, txn_fn, label="writer")
                yield sim.sleep(50.0)

        def reader():
            for region in REGIONS3 * 6:
                gateway = bed.gateway(region)

                def txn_fn(txn):
                    value = yield from txn.read(
                        rng_table, "k", routing=ReadRouting.NEAREST)
                    return value

                yield from bed.coord.run(gateway, txn_fn, label="reader")
                yield sim.sleep(30.0)

        wp = sim.spawn(writer())
        rp = sim.spawn(reader())
        sim.run_until_future(rp)
        sim.run_until_future(wp)

        record_final(bed, recorder, rng_table, ["k"],
                     routing=ReadRouting.NEAREST)
        history = recorder.finalize()
        readers = [t for t in history.txns
                   if t.label == "reader" and t.status == "committed"]
        assert len(readers) == 18  # the monotonic check has teeth
        report = check(history)
        assert report.ok, report.render()
