"""Tests for EXPLAIN, SELECT FOR UPDATE, adaptive follower waits, and
multi-key bounded-staleness negotiation."""

import pytest

from repro.errors import SchemaError
from repro.kv.distsender import DistSender, ReadRouting
from repro.sim.clock import Timestamp

from .kv_util import KVTestBed
from .sql_util import REGIONS3, connect, movr_engine


class TestExplain:
    def test_explain_select_shows_los(self):
        engine, session = movr_engine()
        lines = session.execute("EXPLAIN SELECT * FROM users WHERE id = 1")
        assert any("locality-optimized-search" in line for line in lines)
        assert any("local=us-east1" in line for line in lines)

    def test_explain_from_remote_gateway(self):
        engine, session = movr_engine()
        west = connect(engine, "us-west1")
        lines = west.execute("EXPLAIN SELECT * FROM users WHERE id = 1")
        assert any("local=us-west1" in line for line in lines)

    def test_explain_select_with_region_is_point_read(self):
        engine, session = movr_engine()
        lines = session.execute(
            "EXPLAIN SELECT * FROM users WHERE id = 1 AND "
            "crdb_region = 'europe-west2'")
        assert any("point-read" in line for line in lines)

    def test_explain_insert_lists_checks(self):
        engine, session = movr_engine()
        lines = session.execute(
            "EXPLAIN INSERT INTO users (id, email, name) "
            "VALUES (9, 'x@y', 'X')")
        checks = [line for line in lines if "uniqueness-check" in line]
        assert len(checks) == 2  # pk + email
        assert all("global check" in line for line in checks)

    def test_explain_insert_uuid_no_checks(self):
        engine, session = movr_engine()
        session.execute(
            "CREATE TABLE tokens (id uuid PRIMARY KEY DEFAULT "
            "gen_random_uuid(), v string) LOCALITY REGIONAL BY ROW")
        lines = session.execute(
            "EXPLAIN INSERT INTO tokens (v) VALUES ('x')")
        assert "uniqueness-checks: none" in lines

    def test_explain_update_only_changed_constraints(self):
        engine, session = movr_engine()
        lines = session.execute(
            "EXPLAIN UPDATE users SET name = 'n' WHERE id = 1")
        assert not any("uniqueness-check" in line for line in lines)
        lines = session.execute(
            "EXPLAIN UPDATE users SET email = 'e@x' WHERE id = 1")
        assert any("uniqueness-check" in line and "email" in line
                   for line in lines)

    def test_explain_for_update_notes_lock(self):
        engine, session = movr_engine()
        lines = session.execute(
            "EXPLAIN SELECT * FROM users WHERE id = 1 FOR UPDATE")
        assert "lock: exclusive (FOR UPDATE)" in lines

    def test_explain_ddl_rejected(self):
        engine, session = movr_engine()
        with pytest.raises(SchemaError):
            session.execute("EXPLAIN CREATE TABLE t (id int PRIMARY KEY)")


class TestSelectForUpdate:
    def test_lock_blocks_concurrent_writer(self):
        """A FOR UPDATE lock makes a concurrent writer queue behind the
        transaction instead of racing it."""
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (1, 'a@x', 'A')")
        sim = engine.cluster.sim
        order = []

        def rmw(handle):
            rows = yield from handle.execute(
                "SELECT name FROM users WHERE id = 1 FOR UPDATE")
            yield sim.sleep(30.0)  # hold the lock
            yield from handle.execute(
                f"UPDATE users SET name = '{rows[0]['name']}+' "
                f"WHERE id = 1")
            order.append("rmw")

        def blind(handle):
            yield from handle.execute(
                "UPDATE users SET name = 'blind' WHERE id = 1")
            order.append("blind")

        p1 = sim.spawn(session.run_txn_co(rmw))
        session2 = connect(engine, "us-east1", db="movr", index=1)

        def delayed():
            yield sim.sleep(5.0)  # start while the lock is held
            result = yield from session2.run_txn_co(blind)
            return result

        p2 = sim.spawn(delayed())
        sim.run_until_future(p1)
        sim.run_until_future(p2)
        assert order == ["rmw", "blind"]
        rows = session.execute("SELECT name FROM users WHERE id = 1")
        assert rows == [{"name": "blind"}]  # blind applied after rmw

    def test_rmw_with_lock_never_retries(self):
        """FOR UPDATE removes write-too-old retries for contended RMW."""
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (1, 'a@x', 'c0')")
        sim = engine.cluster.sim
        before = engine.coordinator.stats.aborted_retries

        def incr(handle):
            rows = yield from handle.execute(
                "SELECT name FROM users WHERE id = 1 FOR UPDATE")
            n = int(rows[0]["name"][1:])
            yield from handle.execute(
                f"UPDATE users SET name = 'c{n + 1}' WHERE id = 1")

        sessions = [connect(engine, "us-east1", db="movr", index=i)
                    for i in range(3)]
        processes = [sim.spawn(s.run_txn_co(incr)) for s in sessions]
        for process in processes:
            sim.run_until_future(process)
        rows = session.execute("SELECT name FROM users WHERE id = 1")
        assert rows == [{"name": "c3"}]
        # Lock-first RMW serializes via the lock queue, not via retries.
        assert engine.coordinator.stats.aborted_retries == before


class TestAdaptiveFollowerWait:
    def test_wait_avoids_wan_fallback(self):
        """With the adaptive policy, a read whose closed timestamp is a
        few ms short waits locally instead of paying a WAN round trip."""
        bed = KVTestBed(regions=REGIONS3, jitter_fraction=0.0,
                        side_transport_interval_ms=100.0)
        rng = bed.make_range("us-east1", closed_ts_lag_ms=150.0)
        bed.do_write("us-east1", rng, "k", "v")
        bed.settle(2000.0)
        sim = bed.sim

        for adaptive, expect_fast in ((0.0, False), (400.0, True)):
            ds = DistSender(bed.cluster,
                            adaptive_follower_wait_ms=adaptive)
            gateway = bed.gateway("europe-west2")
            # A timestamp slightly above the follower's current closed
            # timestamp: reachable within ~1 side-transport interval.
            replica = ds.nearest_replica(gateway, rng)
            target = replica.closed_ts.add(10.0).with_synthetic(False)
            start = sim.now
            process = sim.spawn(_read(ds, gateway, rng, "k", target))
            result = sim.run_until_future(process)
            elapsed = sim.now - start
            assert result == "v"
            if expect_fast:
                # Local wait (~1 side-transport interval) beats the WAN.
                assert elapsed < 75.0, "adaptive wait should stay local"
            else:
                assert elapsed >= 80.0, "non-adaptive pays the WAN RTT"

    def test_wait_deadline_falls_back(self):
        """If the closed timestamp cannot catch up in time, the read
        still redirects to the leaseholder."""
        bed = KVTestBed(regions=REGIONS3, jitter_fraction=0.0)
        rng = bed.make_range("us-east1")
        bed.do_write("us-east1", rng, "k", "v")
        bed.settle(1000.0)
        ds = DistSender(bed.cluster, adaptive_follower_wait_ms=30.0)
        gateway = bed.gateway("europe-west2")
        # Far-future target: unreachable within the wait budget.
        target = Timestamp(bed.sim.now + 60_000.0)
        process = bed.sim.spawn(_read(ds, gateway, rng, "k", target))
        result = bed.sim.run_until_future(process)
        assert result == "v"
        assert ds.follower_read_fallbacks == 1


def _read(ds, gateway, rng, key, ts):
    result, _ts = yield ds.read(gateway, rng, key, ts,
                                routing=ReadRouting.NEAREST)
    return result.value


class TestMultiKeyBoundedStaleness:
    def test_negotiated_fanout_read(self):
        """A bounded-staleness fan-out (LOS disabled) negotiates one
        timestamp across partitions and reads locally."""
        engine, session = movr_engine(closed_ts_lag_ms=100.0)
        table = engine.catalog.database("movr").table("users")
        table.locality_optimized_search = False  # force fan-out
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (1, 'a@x', 'A')")
        sim = engine.cluster.sim
        sim.run(until=sim.now + 4000.0)
        west = connect(engine, "us-west1")
        start = sim.now
        rows = west.execute(
            "SELECT name FROM users AS OF SYSTEM TIME "
            "with_max_staleness('30s') WHERE id = 1")
        assert rows == [{"name": "A"}]
        # Negotiation + reads at nearby replicas: no WAN hop.
        assert sim.now - start < 15.0

    def test_negotiation_future_bound_errors(self):
        bed = KVTestBed(regions=REGIONS3, jitter_fraction=0.0)
        rng_a = bed.make_range("us-east1")
        rng_b = bed.make_range("us-east1")
        bed.settle(1000.0)
        gateway = bed.gateway("us-west1")
        min_ts = Timestamp(bed.sim.now + 60_000.0)

        def main():
            from repro.errors import StaleReadBoundError
            try:
                yield bed.ds.negotiate_bounded_staleness(
                    gateway, [(rng_a, "x"), (rng_b, "y")], min_ts)
            except StaleReadBoundError:
                return "bound"

        process = bed.sim.spawn(main())
        assert bed.sim.run_until_future(process) == "bound"
