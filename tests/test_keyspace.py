"""Elastic keyspace tests: encoded-key ordering, the descriptor
lifecycle (adopt / split / merge), the DistSender span cache with its
RangeKeyMismatch invalidation protocol, and the rebalance queue's
size/load splits, cold merges, and follow-the-workload lease moves."""

import pytest

from repro.cluster import StoreLiveness, standard_cluster
from repro.kv.keyspace import (
    MIN_KEY,
    RangeLoad,
    TableSpan,
    encode_key,
    live_ranges,
)
from repro.placement import (
    Allocator,
    RebalanceQueue,
    SurvivalGoal,
    ZoneConfig,
    provision_range,
    zone_config_for_home,
)
from repro.txn import TransactionCoordinator

from .kv_util import REGIONS3, KVTestBed


class TestEncodeKey:
    def test_total_order_across_types(self):
        """Heterogeneous keys must compare without TypeError, in a
        stable type-rank order: None < numbers < bytes < str < tuple."""
        keys = [("u", 7), "acct0", b"\x01", 3, 2.5, None]
        encoded = sorted(encode_key(k) for k in keys)
        assert encoded == [encode_key(k) for k in
                           [None, 2.5, 3, b"\x01", "acct0", ("u", 7)]]

    def test_min_key_below_everything(self):
        for key in [None, -10, "", "a", b"", ()]:
            assert MIN_KEY < encode_key(key)

    def test_string_order_preserved(self):
        assert encode_key("u001") < encode_key("u002") < encode_key("u010")


class TestRangeLoad:
    def test_qps_reports_previous_completed_window(self):
        load = RangeLoad()
        for i in range(10):
            load.record(100.0 * i, key=f"k{i % 3}", region="us-east1")
        # Rolling into the next window exposes the completed one.
        load.record(1100.0, key="k0", region="us-east1")
        assert load.qps(1100.0) == pytest.approx(10.0)

    def test_split_key_is_load_weighted_median(self):
        load = RangeLoad()
        now = 0.0
        for _ in range(8):
            load.record(now, key="a", region="r")
        for _ in range(2):
            load.record(now, key="b", region="r")
        load.record(now, key="c", region="r")
        load.record(1000.0, key="a", region="r")  # close the window
        # Half the load sits on "a", so the split lands right after it.
        assert load.split_key(1000.0) == "b"

    def test_split_key_needs_two_distinct_keys(self):
        load = RangeLoad()
        for _ in range(5):
            load.record(0.0, key="only", region="r")
        load.record(1000.0, key="only", region="r")
        assert load.split_key(1000.0) is None

    def test_dominant_region(self):
        load = RangeLoad()
        for i in range(9):
            load.record(0.0, key=f"k{i}",
                        region="eu" if i < 6 else "us")
        load.record(1000.0, key="k0", region="eu")
        # Previous window (6 eu / 3 us) merged with the current one
        # (1 eu): 7 of 10 requests originate in Europe.
        region, share = load.dominant_region(1000.0)
        assert region == "eu"
        assert share == pytest.approx(0.7)


class _ElasticBed(KVTestBed):
    """KVTestBed plus an adopted span over one REGION-survivable range."""

    def __init__(self, **kwargs):
        super().__init__(regions=REGIONS3, goal=SurvivalGoal.REGION,
                         **kwargs)
        self.range = self.make_range("us-east1")
        self.keyspace = self.cluster.keyspace
        self.span = self.keyspace.adopt(self.range, name="kv")

    def seed(self, keys):
        ts = self.range.leaseholder_node.clock.now()
        self.span.bulk_ingest([(key, f"v:{key}") for key in keys], ts)
        self.sim.run(until=self.sim.now + 200.0)


class TestDescriptorLifecycle:
    def test_adopt_is_idempotent_and_covers_everything(self):
        bed = _ElasticBed()
        assert bed.keyspace.adopt(bed.range) is bed.span
        [descriptor] = bed.span.descriptors
        assert descriptor.start_key == MIN_KEY
        assert descriptor.end_key is None
        assert descriptor.generation == 1
        assert descriptor.contains_key("anything")

    def test_split_partitions_span_and_bumps_generations(self):
        bed = _ElasticBed()
        bed.seed(["a", "b", "c", "d"])
        parent = bed.span.descriptors[0]
        child = bed.keyspace.split(parent, "c", trigger="test")
        assert [d.span_repr() for d in bed.span.descriptors] == [
            parent.span_repr(), child.span_repr()]
        assert parent.end_key == encode_key("c")
        assert child.start_key == encode_key("c")
        assert child.end_key is None
        assert parent.generation == child.generation == 2
        assert bed.keyspace.splits == 1
        # Data moved with the boundary: each side's leaseholder store
        # holds exactly its own keys.
        parent_keys = sorted(parent.rng.leaseholder_replica.store.keys())
        child_keys = sorted(child.rng.leaseholder_replica.store.keys())
        assert parent_keys == ["a", "b"]
        assert child_keys == ["c", "d"]

    def test_split_rejects_out_of_bounds_and_boundary_keys(self):
        bed = _ElasticBed()
        bed.seed(["a", "b", "c", "d"])
        parent = bed.span.descriptors[0]
        child = bed.keyspace.split(parent, "c", trigger="test")
        with pytest.raises(ValueError):
            bed.keyspace.split(parent, "d", trigger="test")  # not owned
        with pytest.raises(ValueError):
            bed.keyspace.split(child, "c", trigger="test")  # at start

    def test_reads_and_writes_route_across_split(self):
        bed = _ElasticBed()
        bed.seed(["a", "b", "c", "d"])
        bed.keyspace.split(bed.span.descriptors[0], "c", trigger="test")
        for key in ["a", "b", "c", "d"]:
            value, _ = bed.do_read("europe-west2", bed.span, key)
            assert value == f"v:{key}"
        bed.do_write("us-east1", bed.span, "b", "new-b")
        bed.do_write("us-east1", bed.span, "d", "new-d")
        assert bed.do_read("us-east1", bed.span, "b")[0] == "new-b"
        assert bed.do_read("us-east1", bed.span, "d")[0] == "new-d"

    def test_merge_restores_single_range(self):
        bed = _ElasticBed()
        bed.seed(["a", "b", "c", "d"])
        left = bed.span.descriptors[0]
        right_rng = bed.keyspace.split(left, "c", trigger="test").rng
        bed.do_write("us-east1", bed.span, "d", "post-split")
        left, right = bed.span.descriptors
        assert bed.keyspace.can_merge(left, right)
        bed.keyspace.merge(left, right)
        assert len(bed.span.descriptors) == 1
        assert left.start_key == MIN_KEY and left.end_key is None
        assert bed.keyspace.merges == 1
        # The right side is an emptied husk: it owns nothing but its
        # Raft group survives so anchored txn records stay resolvable.
        assert right.start_key == right.end_key
        assert live_ranges(bed.span) == [left.rng]
        merged = sorted(left.rng.leaseholder_replica.store.keys())
        assert merged == ["a", "b", "c", "d"]
        assert bed.do_read("europe-west2", bed.span, "d")[0] == "post-split"
        assert right_rng._successors == [left.rng]

    def test_can_merge_rejects_non_adjacent(self):
        bed = _ElasticBed()
        bed.seed(["a", "b", "c", "d"])
        first = bed.span.descriptors[0]
        bed.keyspace.split(first, "b", trigger="test")
        bed.keyspace.split(bed.span.descriptors[1], "c", trigger="test")
        a, b, c = bed.span.descriptors
        assert not bed.keyspace.can_merge(a, c)
        assert bed.keyspace.can_merge(b, c)

    def test_live_ranges_on_plain_range_is_identity(self):
        bed = KVTestBed(regions=REGIONS3, goal=SurvivalGoal.REGION)
        rng = bed.make_range("us-east1")
        assert live_ranges(rng) == [rng]


class TestDistSenderSpanCache:
    def test_miss_then_hits_then_invalidation_on_split(self):
        bed = _ElasticBed()
        bed.seed(["a", "b", "c", "d"])
        assert bed.ds.range_cache_misses == 0
        bed.do_read("us-east1", bed.span, "a")
        first_misses = bed.ds.range_cache_misses
        assert first_misses >= 1
        hits_before = bed.ds.range_cache_hits
        bed.do_read("us-east1", bed.span, "b")
        assert bed.ds.range_cache_hits > hits_before
        assert bed.ds.range_cache_misses == first_misses
        # A split bumps the span generation and notifies subscribers:
        # the snapshot is dropped and the next resolve re-misses.
        bed.keyspace.split(bed.span.descriptors[0], "c", trigger="test")
        assert bed.ds.range_cache_invalidations >= 1
        bed.do_read("us-east1", bed.span, "d")
        assert bed.ds.range_cache_misses > first_misses

    def test_stale_cache_bounce_reroutes_to_new_owner(self):
        """A client that cached the pre-split descriptor map must be
        bounced by RangeKeyMismatch and land on the new owner."""
        bed = _ElasticBed()
        bed.seed(["a", "b", "c", "d"])
        bed.do_read("us-east1", bed.span, "d")  # warm the cache
        parent = bed.span.descriptors[0]
        child = bed.keyspace.split(parent, "c", trigger="test")
        # Re-prime a deliberately stale snapshot: resolve subscribes
        # fresh, then we forge the pre-split single-descriptor view.
        bed.do_read("us-east1", bed.span, "a")
        bed.ds._span_cache[bed.span.name] = (
            1, [MIN_KEY], [parent])
        value, _ = bed.do_read("us-east1", bed.span, "d")
        assert value == "v:d"
        assert bed.ds.resolve(bed.span, "d") is child.rng


def _flat_config(home):
    # No lease preference: follow-the-workload may move the lease.
    return ZoneConfig(num_replicas=3, num_voters=3, constraints={home: 1})


class _QueueBed:
    """A cluster with an adopted span managed by a RebalanceQueue."""

    def __init__(self, seed=0, **queue_kwargs):
        self.cluster = standard_cluster(REGIONS3, seed=seed)
        self.sim = self.cluster.sim
        self.coord = TransactionCoordinator(self.cluster)
        self.config = _flat_config("us-east1")
        self.range = provision_range(
            self.cluster, self.config, name="kv",
            side_transport_interval_ms=100.0,
            proposal_timeout_ms=1000.0, retransmit_interval_ms=150.0)
        self.span = self.cluster.keyspace.adopt(self.range)
        self.liveness = StoreLiveness(self.cluster)
        kwargs = dict(split_max_keys=8, split_qps=10.0, merge_qps=1.0,
                      merge_patience=2, lease_cooldown_ms=500.0)
        kwargs.update(queue_kwargs)
        self.queue = RebalanceQueue(self.cluster, self.liveness,
                                    interval_ms=200.0, **kwargs)
        self.queue.manage_span(self.span, self.config)
        self.queue.start()

    def seed(self, count):
        ts = self.range.leaseholder_node.clock.now()
        self.span.bulk_ingest(
            [(f"k{i:03d}", 0) for i in range(count)], ts)

    def drive(self, region, keys, duration_ms, think_ms=5.0):
        """A closed-loop client hammering ``keys`` from ``region``."""
        gateway = self.cluster.gateway_for_region(region)
        end = self.sim.now + duration_ms

        def client():
            index = 0
            while self.sim.now < end:
                key = keys[index % len(keys)]
                index += 1

                def txn_fn(txn, key=key):
                    value = yield from txn.read(self.span, key)
                    yield from txn.write(self.span, key, (value or 0) + 1)

                try:
                    yield from self.coord.run(gateway, txn_fn)
                except Exception:
                    pass
                yield self.sim.sleep(think_ms)

        return self.sim.spawn(client())


class TestRebalanceQueue:
    def test_size_split_to_bounded_ranges(self):
        bed = _QueueBed()
        bed.seed(20)  # 20 keys > 8 forces recursive size splits
        bed.sim.run(until=2000.0)
        assert bed.cluster.keyspace.splits >= 2
        assert len(bed.span.descriptors) >= 3  # ceil(20 / 8)
        for descriptor in bed.span.descriptors:
            keys = descriptor.rng.leaseholder_replica.store.keys()
            assert len(list(keys)) <= 8
        # Everything is cold, but merging any neighbor pair would cross
        # the size threshold and immediately re-split — the merge
        # hysteresis holds the range count at the floor.
        count = len(bed.span.descriptors)
        bed.sim.run(until=6000.0)
        assert len(bed.span.descriptors) == count

    def test_cold_merge_after_drain(self):
        bed = _QueueBed()
        bed.seed(6)  # under the size threshold: no size splits
        bed.sim.run(until=400.0)
        bed.cluster.keyspace.split(bed.span.descriptors[0], "k003",
                                   trigger="test")
        assert len(bed.span.descriptors) == 2
        # Both sides are cold and small; the queue merges them back.
        bed.sim.run(until=4000.0)
        assert len(bed.span.descriptors) == 1
        assert bed.cluster.keyspace.merges == 1

    def test_load_split_on_hot_keys(self):
        bed = _QueueBed(split_max_keys=64, split_qps=5.0)
        bed.seed(4)  # too few keys for a size split
        client = bed.drive("us-east1", ["k000", "k001", "k002", "k003"],
                           3000.0, think_ms=2.0)
        bed.sim.run_until_future(client)
        assert bed.cluster.keyspace.splits >= 1
        assert len(bed.span.descriptors) >= 2

    def test_follow_the_workload_moves_lease(self):
        bed = _QueueBed(split_max_keys=64, split_qps=1000.0)
        bed.seed(4)
        assert bed.range.leaseholder_node.locality.region == "us-east1"
        client = bed.drive("europe-west2",
                           ["k000", "k001", "k002", "k003"], 4000.0,
                           think_ms=2.0)
        bed.sim.run_until_future(client)
        [descriptor] = bed.span.descriptors
        lease_region = descriptor.rng.leaseholder_node.locality.region
        assert lease_region == "europe-west2"

    def test_lease_preferences_disable_follow_the_workload(self):
        config = zone_config_for_home(
            "us-east1", REGIONS3, SurvivalGoal.REGION)
        bed = _QueueBed(split_max_keys=64, split_qps=1000.0)
        bed.queue._spans["kv"] = (bed.span, config)
        client = bed.drive("europe-west2",
                           ["k000", "k001", "k002", "k003"], 3000.0,
                           think_ms=2.0)
        bed.sim.run_until_future(client)
        [descriptor] = bed.span.descriptors
        lease_region = descriptor.rng.leaseholder_node.locality.region
        assert lease_region == "us-east1"


class TestLoadAwareAllocator:
    def test_load_fn_breaks_replica_count_ties(self):
        cluster = standard_cluster(REGIONS3, seed=0)
        hot = cluster.nodes_in_region("us-east1")[0].node_id
        allocator = Allocator(
            cluster, load_fn=lambda n: 100.0 if n.node_id == hot else 0.0)
        config = ZoneConfig(num_replicas=3, num_voters=3)
        placement = allocator.place(config)
        assert hot not in [n.node_id for n in placement.voters]
