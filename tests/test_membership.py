"""Safe Raft membership changes: learner join, snapshot catch-up,
promotion, and the one-at-a-time config-change discipline.

The acceptance bar for the self-healing PR: a range never has two
in-flight config changes and never loses a live quorum during a
replacement.
"""

import pytest

from repro.placement import SurvivalGoal
from repro.raft import ConfigChangeError
from repro.raft.group import ReplicaType
from repro.raft.membership import ConfigChangeGuard

from .kv_util import REGIONS3, KVTestBed


def make_bed():
    bed = KVTestBed(regions=REGIONS3, goal=SurvivalGoal.REGION, seed=0)
    rng = bed.make_range(REGIONS3[0])
    # A non-trivial log for snapshots/catch-up to move.
    for i in range(4):
        bed.do_write(REGIONS3[0], rng, f"k{i}", i)
    return bed, rng


def spare_nodes(bed, rng):
    members = set(rng.group.peers)
    return [n for n in bed.cluster.nodes if n.node_id not in members]


def run_coroutine(bed, gen):
    process = bed.sim.spawn(gen)
    return bed.sim.run_until_future(process)


class TestGuard:
    def test_conflicting_acquire_raises(self):
        guard = ConfigChangeGuard(range_id=7)
        guard.acquire("first", 0.0)
        with pytest.raises(ConfigChangeError, match="first"):
            guard.acquire("second", 1.0)
        guard.release(2.0)
        guard.acquire("second", 3.0)
        guard.release(4.0)
        assert guard.changes == 2
        assert guard.max_inflight == 1
        assert [d for d, _s, _e in guard.history] == ["first", "second"]

    def test_release_without_acquire_raises(self):
        guard = ConfigChangeGuard(range_id=7)
        with pytest.raises(ConfigChangeError):
            guard.release(0.0)


class TestSafeAddPipeline:
    def test_learner_join_snapshot_catchup_promote(self):
        bed, rng = make_bed()
        joiner = spare_nodes(bed, rng)[0]
        voters_before = len(rng.group.voters())
        replica = run_coroutine(bed, rng.add_replica_safely(joiner))
        peer = rng.group.peers[joiner.node_id]
        assert peer.replica_type == ReplicaType.VOTER
        assert len(rng.group.voters()) == voters_before + 1
        # Snapshot + live stream left the new replica fully caught up.
        assert peer.last_index >= rng.group.commit_index
        assert rng.group.log_complete(peer)
        assert replica.store.get("k3", rng.group.leader.closed_ts) is not None
        assert rng.group.config_guard.max_inflight == 1
        assert rng.group.config_guard.in_flight is None

    def test_add_non_voter_never_enters_electorate(self):
        bed, rng = make_bed()
        joiner = spare_nodes(bed, rng)[0]
        voters_before = len(rng.group.voters())
        run_coroutine(bed,
                      rng.add_replica_safely(joiner, ReplicaType.NON_VOTER))
        assert len(rng.group.voters()) == voters_before
        assert rng.group.peers[joiner.node_id].replica_type == \
            ReplicaType.NON_VOTER

    def test_overlapping_change_raises_not_queues(self):
        bed, rng = make_bed()
        first, second = spare_nodes(bed, rng)[:2]
        process = bed.sim.spawn(rng.add_replica_safely(first))
        # Let the pipeline start (snapshot in transit, guard held)...
        bed.sim.run(until=bed.sim.now + 2.0)
        assert rng.group.config_guard.in_flight is not None
        # ...then any other membership change must fail loudly.
        with pytest.raises(ConfigChangeError):
            rng.add_replica(second)
        with pytest.raises(ConfigChangeError):
            bed.sim.run_until_future(
                bed.sim.spawn(rng.add_replica_safely(second)))
        # The original change is unharmed and completes.
        bed.sim.run_until_future(process)
        assert first.node_id in rng.group.peers
        assert second.node_id not in rng.group.peers
        assert rng.group.config_guard.max_inflight == 1

    def test_failed_add_rolls_back_cleanly(self):
        bed, rng = make_bed()
        joiner = spare_nodes(bed, rng)[0]
        process = bed.sim.spawn(rng.add_replica_safely(joiner))
        bed.cluster.crash_node(joiner.node_id)
        with pytest.raises(Exception):
            bed.sim.run_until_future(process)
        assert joiner.node_id not in rng.group.peers
        assert joiner.node_id not in rng.replicas
        assert rng.group.config_guard.in_flight is None
        # The range is exactly as before: a fresh add works.
        bed.cluster.restart_node(joiner.node_id)
        run_coroutine(bed, rng.add_replica_safely(joiner))
        assert joiner.node_id in rng.group.peers


class TestPromotionSafety:
    def test_promote_requires_caught_up_log(self):
        bed, rng = make_bed()
        joiner = spare_nodes(bed, rng)[0]
        replica_cls = type(rng.replicas[rng.leaseholder_node_id])
        rng.replicas[joiner.node_id] = replica_cls(rng, joiner)
        rng.group.add_learner(joiner)  # empty log, leader has entries
        with pytest.raises(ConfigChangeError, match="not caught up"):
            rng.group.promote_learner(joiner.node_id)

    def test_promote_rejects_non_learner(self):
        bed, rng = make_bed()
        voter_id = next(iter(rng.group.peers))
        with pytest.raises(ConfigChangeError):
            rng.group.promote_learner(voter_id)


class TestRemovalSafety:
    def test_refuses_to_remove_leaseholder(self):
        bed, rng = make_bed()
        with pytest.raises(ConfigChangeError, match="leaseholder"):
            rng.remove_replica_safely(rng.leaseholder_node_id)

    def test_refuses_removal_that_loses_live_quorum(self):
        bed, rng = make_bed()
        voters = [p.node.node_id for p in rng.group.voters()
                  if p.node.node_id != rng.leaseholder_node_id]
        # 5 voters, kill 2: quorum (3) barely survives.  Removing a
        # *live* voter would leave 4 voters with only 2 live — refuse.
        bed.cluster.crash_node(voters[0])
        bed.cluster.crash_node(voters[1])
        with pytest.raises(ConfigChangeError, match="quorum"):
            rng.remove_replica_safely(voters[2])
        # Removing a *dead* voter is fine: 4 voters, 3 live.
        rng.remove_replica_safely(voters[0])
        assert voters[0] not in rng.group.peers

    def test_demote_refuses_leader(self):
        bed, rng = make_bed()
        with pytest.raises(ConfigChangeError, match="leader"):
            rng.group.demote_voter(rng.group.leader_node_id)


class TestReplacementInvariants:
    def test_replacement_one_at_a_time_and_quorum_safe(self):
        """The PR's acceptance criterion, asserted directly: replacing a
        dead voter never overlaps config changes and never drops the
        range below a live quorum — sampled every sim-millisecond."""
        bed, rng = make_bed()
        guard = rng.group.config_guard
        dead = next(p.node.node_id for p in rng.group.voters()
                    if p.node.node_id != rng.leaseholder_node_id)
        bed.cluster.crash_node(dead)
        joiner = spare_nodes(bed, rng)[0]
        samples = []
        done = []

        def monitor():
            while not done:
                samples.append((rng.group.has_quorum(),
                                guard.max_inflight))
                yield bed.sim.sleep(1.0)

        def replacement():
            yield from rng.add_replica_safely(joiner)
            rng.remove_replica_safely(dead)
            done.append(True)

        bed.sim.spawn(monitor(), name="invariant-monitor")
        process = bed.sim.spawn(replacement(), name="replacement")
        bed.sim.run_until_future(process)

        assert len(samples) > 5
        assert all(has_quorum for has_quorum, _ in samples), \
            "range lost a live quorum mid-replacement"
        assert guard.max_inflight == 1, \
            "two config changes were in flight concurrently"
        assert dead not in rng.group.peers
        assert joiner.node_id in rng.group.peers
        assert len(rng.group.voters()) == 5

    def test_writes_survive_concurrent_replacement(self):
        """Client writes issued while a replacement is in flight are
        acked and durable afterwards."""
        bed, rng = make_bed()
        dead = next(p.node.node_id for p in rng.group.voters()
                    if p.node.node_id != rng.leaseholder_node_id)
        bed.cluster.crash_node(dead)
        joiner = spare_nodes(bed, rng)[0]
        process = bed.sim.spawn(rng.add_replica_safely(joiner))
        bed.do_write(REGIONS3[0], rng, "mid-repair", 42)
        bed.sim.run_until_future(process)
        rng.remove_replica_safely(dead)
        value, _ = bed.do_read(REGIONS3[0], rng, "mid-repair")
        assert value == 42
