"""Tests for the network latency model and RPC fabric."""

import pytest

from repro.cluster import Cluster, Locality, standard_cluster
from repro.sim.core import Simulator
from repro.sim.network import (
    LatencyModel,
    Network,
    NetworkUnavailableError,
    TABLE1_REGIONS,
    TABLE1_RTT_MS,
    synthetic_rtt_matrix,
)


class TestTable1Matrix:
    def test_symmetric(self):
        for (a, b), rtt in TABLE1_RTT_MS.items():
            assert TABLE1_RTT_MS[(b, a)] == rtt

    def test_all_pairs_present(self):
        for a in TABLE1_REGIONS:
            for b in TABLE1_REGIONS:
                if a != b:
                    assert (a, b) in TABLE1_RTT_MS

    def test_paper_values(self):
        # Spot-check the exact numbers from Table 1.
        assert TABLE1_RTT_MS[("us-east1", "us-west1")] == 63.0
        assert TABLE1_RTT_MS[("europe-west2", "australia-southeast1")] == 274.0
        assert TABLE1_RTT_MS[("us-west1", "asia-northeast1")] == 90.0


class TestSyntheticMatrix:
    def test_shape_and_symmetry(self):
        regions = [f"r{i}" for i in range(26)]
        matrix = synthetic_rtt_matrix(regions)
        assert matrix[("r0", "r13")] == matrix[("r13", "r0")]
        assert len(matrix) == 26 * 25

    def test_range_plausible(self):
        matrix = synthetic_rtt_matrix([f"r{i}" for i in range(10)])
        assert all(10.0 < v < 350.0 for v in matrix.values())

    def test_deterministic(self):
        regions = ["a", "b", "c"]
        assert synthetic_rtt_matrix(regions, seed=3) == \
            synthetic_rtt_matrix(regions, seed=3)


class TestLatencyModel:
    def test_intra_zone_cheapest(self):
        model = LatencyModel(jitter_fraction=0.0)
        same_zone = model.rtt("us-east1", "a", "us-east1", "a")
        same_region = model.rtt("us-east1", "a", "us-east1", "b")
        cross = model.rtt("us-east1", "a", "us-west1", "a")
        assert same_zone < same_region < cross

    def test_one_way_is_half_rtt_without_jitter(self):
        model = LatencyModel(jitter_fraction=0.0)
        assert model.one_way("us-east1", "a", "us-west1", "b") == 63.0 / 2

    def test_jitter_bounded(self):
        model = LatencyModel(jitter_fraction=0.1, seed=5)
        base = 63.0 / 2
        for _ in range(100):
            delay = model.one_way("us-east1", "a", "us-west1", "b")
            assert base <= delay <= base * 1.1

    def test_unknown_pair_uses_default(self):
        model = LatencyModel(jitter_fraction=0.0, default_remote_rtt=99.0)
        assert model.rtt("mars", "a", "venus", "b") == 99.0


def _two_node_cluster():
    cluster = standard_cluster(["us-east1", "us-west1"], nodes_per_region=1,
                               jitter_fraction=0.0)
    return cluster, cluster.nodes[0], cluster.nodes[1]


class TestRPC:
    def test_call_round_trip_latency(self):
        cluster, east, west = _two_node_cluster()
        sim = cluster.sim

        def handler():
            return "reply"
            yield  # pragma: no cover

        def main():
            reply = yield cluster.network.call(east, west, handler)
            return reply, sim.now

        reply, now = sim.run_process(main())
        assert reply == "reply"
        # One RTT plus processing overhead on both legs.
        assert 63.0 <= now <= 64.0

    def test_call_handler_exception_propagates(self):
        cluster, east, west = _two_node_cluster()

        def handler():
            raise RuntimeError("handler blew up")
            yield  # pragma: no cover

        def main():
            try:
                yield cluster.network.call(east, west, handler)
            except RuntimeError as err:
                return str(err)

        assert cluster.sim.run_process(main()) == "handler blew up"

    def test_call_to_dead_node_rejects(self):
        cluster, east, west = _two_node_cluster()
        cluster.network.kill_node(west.node_id)

        def main():
            try:
                yield cluster.network.call(east, west, lambda: iter(()))
            except NetworkUnavailableError:
                return "unavailable"

        assert cluster.sim.run_process(main()) == "unavailable"

    def test_partitioned_region_unreachable(self):
        cluster, east, west = _two_node_cluster()
        cluster.network.partition_region("us-west1")

        def main():
            try:
                yield cluster.network.call(east, west, lambda: iter(()))
            except NetworkUnavailableError:
                return "partitioned"

        assert cluster.sim.run_process(main()) == "partitioned"

    def test_heal_restores_connectivity(self):
        cluster, east, west = _two_node_cluster()
        cluster.network.partition_region("us-west1")
        cluster.network.heal_region("us-west1")

        def handler():
            return "ok"
            yield  # pragma: no cover

        def main():
            reply = yield cluster.network.call(east, west, handler)
            return reply

        assert cluster.sim.run_process(main()) == "ok"

    def test_same_region_calls_unaffected_by_partition(self):
        cluster = standard_cluster(["us-east1", "us-west1"],
                                   nodes_per_region=2, jitter_fraction=0.0)
        west_nodes = cluster.nodes_in_region("us-west1")
        cluster.network.partition_region("us-west1")

        def handler():
            return "local"
            yield  # pragma: no cover

        def main():
            reply = yield cluster.network.call(west_nodes[0], west_nodes[1],
                                               handler)
            return reply

        assert cluster.sim.run_process(main()) == "local"

    def test_send_one_way(self):
        cluster, east, west = _two_node_cluster()
        seen = []
        cluster.network.send(east, west, lambda: seen.append(cluster.sim.now))
        cluster.sim.run()
        assert len(seen) == 1
        assert 31.0 <= seen[0] <= 32.0

    def test_message_accounting(self):
        cluster, east, west = _two_node_cluster()
        cluster.network.send(east, west, lambda: None)
        cluster.sim.run()
        assert cluster.network.messages_sent == 1


class TestClusterTopology:
    def test_standard_cluster_layout(self):
        cluster = standard_cluster(["a", "b"], nodes_per_region=3)
        assert len(cluster.nodes) == 6
        assert cluster.regions() == ["a", "b"]
        assert len(cluster.zones_in_region("a")) == 3

    def test_locality_parse(self):
        loc = Locality.parse("region=us-east1,zone=us-east1b")
        assert loc.region == "us-east1"
        assert loc.zone == "us-east1b"

    def test_locality_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Locality.parse("zone=only")
        with pytest.raises(ValueError):
            Locality.parse("region=")

    def test_diversity_score(self):
        a = Locality("r1", "z1")
        assert a.diversity_from(Locality("r2", "z9")) == 1.0
        assert a.diversity_from(Locality("r1", "z2")) == 0.5
        assert a.diversity_from(Locality("r1", "z1")) == 0.0

    def test_gateway_selection(self):
        cluster = standard_cluster(["a", "b"], nodes_per_region=2)
        gw = cluster.gateway_for_region("b")
        assert gw.locality.region == "b"

    def test_remove_node_updates_regions(self):
        cluster = standard_cluster(["a", "b"], nodes_per_region=1)
        cluster.remove_node(cluster.nodes_in_region("b")[0])
        assert cluster.regions() == ["a"]
