"""End-to-end transaction tests over provisioned ranges.

These validate the latency *and* consistency claims of paper §5–§6:
REGIONAL tables are fast at home and slow remotely; GLOBAL tables serve
strongly-consistent reads everywhere at local latency while writes pay
commit wait; stale reads are local everywhere.
"""

import pytest

from repro.errors import StaleReadBoundError
from repro.kv.distsender import ReadRouting
from repro.sim.clock import Timestamp

from .kv_util import KVTestBed, REGIONS5

PRIMARY = "us-east1"
REMOTE = "europe-west2"


@pytest.fixture
def bed():
    return KVTestBed()


class TestRegionalTables:
    def test_write_read_roundtrip(self, bed):
        rng = bed.make_range(PRIMARY)
        bed.do_write(PRIMARY, rng, "k", "v1")
        value, _ = bed.do_read(PRIMARY, rng, "k")
        assert value == "v1"

    def test_local_write_is_fast(self, bed):
        rng = bed.make_range(PRIMARY)
        _, elapsed = bed.do_write(PRIMARY, rng, "k", "v")
        # Quorum is in-region: a few ms at most.
        assert elapsed < 10.0

    def test_local_read_is_fast(self, bed):
        rng = bed.make_range(PRIMARY)
        bed.do_write(PRIMARY, rng, "k", "v")
        _, elapsed = bed.do_read(PRIMARY, rng, "k")
        assert elapsed < 10.0

    def test_remote_fresh_read_pays_wan_rtt(self, bed):
        rng = bed.make_range(PRIMARY)
        bed.do_write(PRIMARY, rng, "k", "v")
        value, elapsed = bed.do_read(REMOTE, rng, "k")
        assert value == "v"
        # europe-west2 <-> us-east1 RTT is 87 ms.
        assert 87.0 <= elapsed <= 95.0

    def test_remote_write_pays_wan_rtt(self, bed):
        rng = bed.make_range(PRIMARY)
        _, elapsed = bed.do_write(REMOTE, rng, "k", "v")
        assert elapsed >= 87.0

    def test_read_your_deleted_row(self, bed):
        rng = bed.make_range(PRIMARY)
        bed.do_write(PRIMARY, rng, "k", "v")

        def txn_fn(txn):
            yield from txn.delete(rng, "k")
            value = yield from txn.read(rng, "k")
            return value

        value, _ = bed.run_txn(PRIMARY, txn_fn)
        assert value is None

    def test_overwrite_visible(self, bed):
        rng = bed.make_range(PRIMARY)
        bed.do_write(PRIMARY, rng, "k", "v1")
        bed.do_write(PRIMARY, rng, "k", "v2")
        value, _ = bed.do_read(PRIMARY, rng, "k")
        assert value == "v2"

    def test_read_write_txn(self, bed):
        rng = bed.make_range(PRIMARY)
        bed.do_write(PRIMARY, rng, "counter", 10)

        def txn_fn(txn):
            value = yield from txn.read(rng, "counter")
            yield from txn.write(rng, "counter", value + 1)
            return value

        bed.run_txn(PRIMARY, txn_fn)
        value, _ = bed.do_read(PRIMARY, rng, "counter")
        assert value == 11


class TestStaleReads:
    def test_bounded_staleness_remote_is_local(self, bed):
        rng = bed.make_range(PRIMARY, closed_ts_lag_ms=100.0)
        bed.do_write(PRIMARY, rng, "k", "v")
        bed.settle(1000.0)  # let closed timestamps reach followers

        gateway = bed.gateway(REMOTE)
        start = bed.sim.now
        min_ts = Timestamp(bed.sim.now - 5000.0)  # 5 s staleness bound

        def main():
            (result, served_ts) = yield bed.ds.bounded_staleness_read(
                gateway, rng, "k", min_ts)
            return result.value, served_ts

        process = bed.sim.spawn(main())
        value, served_ts = bed.sim.run_until_future(process)
        elapsed = bed.sim.now - start
        assert value == "v"
        assert elapsed < 5.0  # served by the local non-voter
        assert served_ts >= min_ts

    def test_bounded_staleness_nearest_only_error(self, bed):
        rng = bed.make_range(PRIMARY)
        bed.do_write(PRIMARY, rng, "k", "v")
        gateway = bed.gateway(REMOTE)
        # Bound tighter than the lag policy can satisfy locally.
        min_ts = Timestamp(bed.sim.now + 10.0)

        def main():
            try:
                yield bed.ds.bounded_staleness_read(
                    gateway, rng, "k", min_ts, nearest_only=True)
            except StaleReadBoundError:
                return "bound-error"

        process = bed.sim.spawn(main())
        assert bed.sim.run_until_future(process) == "bound-error"

    def test_bounded_staleness_falls_back_to_leaseholder(self, bed):
        rng = bed.make_range(PRIMARY)
        commit_ts, _ = bed.do_write(PRIMARY, rng, "k", "v")
        gateway = bed.gateway(REMOTE)
        # A bound at the commit timestamp is too fresh for followers
        # (the lag policy closes ~3 s behind) but must see the value.
        min_ts = commit_ts.with_synthetic(False)
        start = bed.sim.now

        def main():
            (result, served_ts) = yield bed.ds.bounded_staleness_read(
                gateway, rng, "k", min_ts)
            return result.value

        process = bed.sim.spawn(main())
        value = bed.sim.run_until_future(process)
        assert value == "v"
        assert bed.sim.now - start >= 87.0  # redirected across the WAN

    def test_exact_staleness_read_local(self, bed):
        rng = bed.make_range(PRIMARY, closed_ts_lag_ms=100.0)
        bed.do_write(PRIMARY, rng, "k", "v")
        bed.settle(4000.0)
        gateway = bed.gateway(REMOTE)
        # Well after the write, well below the followers' closed ts.
        ts = Timestamp(bed.sim.now - 2000.0)
        start = bed.sim.now

        def main():
            result = yield bed.ds.exact_staleness_read(gateway, rng, "k", ts)
            return result.value

        process = bed.sim.spawn(main())
        value = bed.sim.run_until_future(process)
        assert value == "v"
        assert bed.sim.now - start < 5.0

    def test_stale_read_does_not_see_recent_write(self, bed):
        rng = bed.make_range(PRIMARY, closed_ts_lag_ms=100.0)
        bed.do_write(PRIMARY, rng, "k", "old")
        bed.settle(3000.0)
        checkpoint = Timestamp(bed.sim.now)
        bed.do_write(PRIMARY, rng, "k", "new")
        gateway = bed.gateway(REMOTE)

        def main():
            result = yield bed.ds.exact_staleness_read(
                gateway, rng, "k", checkpoint)
            return result.value

        process = bed.sim.spawn(main())
        assert bed.sim.run_until_future(process) == "old"


class TestGlobalTables:
    def test_global_write_pays_commit_wait(self, bed):
        rng = bed.make_range(PRIMARY, global_reads=True)
        _, elapsed = bed.do_write(PRIMARY, rng, "k", "v")
        # Commit wait ~ lead time = L_raft + L_replicate + max_offset.
        # Furthest follower from us-east1 is australia (99 ms one-way),
        # max_offset 250 ms -> at least ~350 ms.
        assert elapsed >= 300.0
        assert bed.coord.stats.commit_waits >= 1

    def test_global_read_fast_everywhere(self, bed):
        rng = bed.make_range(PRIMARY, global_reads=True)
        bed.do_write(PRIMARY, rng, "k", "v")
        bed.settle(2000.0)
        for region in REGIONS5:
            value, elapsed = bed.do_read(region, rng, "k",
                                         routing=ReadRouting.NEAREST)
            assert value == "v", region
            assert elapsed < 10.0, region

    def test_global_read_linearizes_after_write_ack(self, bed):
        """Once the writer is acked, every region must see the value
        (the core §6.2 guarantee)."""
        rng = bed.make_range(PRIMARY, global_reads=True)
        bed.do_write(PRIMARY, rng, "k", "fresh")
        # No settle: read immediately after the ack.
        for region in REGIONS5:
            value, _ = bed.do_read(region, rng, "k",
                                   routing=ReadRouting.NEAREST)
            assert value == "fresh", region

    def test_reader_near_write_commit_waits_bounded(self, bed):
        """A reader observing a just-written future value commit waits,
        but no longer than max_clock_offset (§6.2.1)."""
        rng = bed.make_range(PRIMARY, global_reads=True)
        bed.do_write(PRIMARY, rng, "warm", "x")
        bed.settle(2000.0)

        # Write and read concurrently from different regions.
        sim = bed.sim
        gw_write = bed.gateway(PRIMARY)
        gw_read = bed.gateway(REMOTE)

        def writer(txn):
            yield from txn.write(rng, "contended", "new")
            return None

        def reader(txn):
            value = yield from txn.read(rng, "contended",
                                        routing=ReadRouting.NEAREST)
            return value

        def write_main():
            yield from bed.coord.run(gw_write, writer)

        read_latency = {}

        def read_main():
            # Start the read while the writer is still commit-waiting
            # (lead time ~580 ms) but close enough that the future value
            # falls inside the reader's uncertainty interval — Fig 2
            # case (4).
            yield sim.sleep(500.0)
            start = sim.now
            value, _ = yield from bed.coord.run(gw_read, reader)
            read_latency["elapsed"] = sim.now - start
            return value

        wp = sim.spawn(write_main())
        process = sim.spawn(read_main())
        value = sim.run_until_future(process)
        sim.run_until_future(wp)
        assert value == "new"
        # The read either waited for the writer's intent and/or commit
        # waited; in all cases the total must be far below a WAN RTT
        # blow-up and bounded by ~max_offset + small slack.
        assert read_latency["elapsed"] <= 250.0 + 100.0

    def test_global_read_does_not_block_on_unrelated_keys(self, bed):
        rng = bed.make_range(PRIMARY, global_reads=True)
        bed.do_write(PRIMARY, rng, "a", "1")
        bed.settle(2000.0)
        # Concurrent write to "b" must not slow a read of "a".
        sim = bed.sim

        def writer(txn):
            yield from txn.write(rng, "b", "2")

        wp = sim.spawn(bed.coord.run(bed.gateway(PRIMARY), writer))
        value, elapsed = bed.do_read(REMOTE, rng, "a",
                                     routing=ReadRouting.NEAREST)
        assert value == "1"
        assert elapsed < 10.0
        sim.run_until_future(wp)


class TestConflicts:
    def test_write_write_conflict_serialized(self, bed):
        rng = bed.make_range(PRIMARY)
        bed.do_write(PRIMARY, rng, "k", 0)
        sim = bed.sim
        gateway = bed.gateway(PRIMARY)

        def incr(txn):
            value = yield from txn.read(rng, "k")
            yield sim.sleep(5.0)  # widen the race window
            yield from txn.write(rng, "k", value + 1)

        p1 = sim.spawn(bed.coord.run(gateway, incr))
        p2 = sim.spawn(bed.coord.run(gateway, incr))
        sim.run_until_future(p1)
        sim.run_until_future(p2)
        value, _ = bed.do_read(PRIMARY, rng, "k")
        assert value == 2  # serializable: no lost update

    def test_many_concurrent_increments(self, bed):
        rng = bed.make_range(PRIMARY)
        bed.do_write(PRIMARY, rng, "k", 0)
        sim = bed.sim

        def incr(txn):
            value = yield from txn.read(rng, "k")
            yield from txn.write(rng, "k", value + 1)

        processes = [sim.spawn(bed.coord.run(bed.gateway(PRIMARY, i), incr))
                     for i in range(6)]
        for process in processes:
            sim.run_until_future(process)
        value, _ = bed.do_read(PRIMARY, rng, "k")
        assert value == 6

    def test_multi_range_transaction_atomic(self, bed):
        rng_a = bed.make_range(PRIMARY)
        rng_b = bed.make_range(PRIMARY)

        def txn_fn(txn):
            yield from txn.write(rng_a, "x", "vx")
            yield from txn.write(rng_b, "y", "vy")

        bed.run_txn(PRIMARY, txn_fn)
        assert bed.do_read(PRIMARY, rng_a, "x")[0] == "vx"
        assert bed.do_read(PRIMARY, rng_b, "y")[0] == "vy"


class TestAblation:
    def test_contending_writers_commit_wait_concurrently(self):
        """Paper §6.2/§7.3: CRDB releases locks concurrently with commit
        wait, so contending writers overlap their waits; the
        Spanner-style ablation (hold locks through the wait) serializes
        them, and the slowest writer's latency grows with the queue."""
        slowest = {}
        for style in ("crdb", "spanner"):
            bed = KVTestBed(spanner_style_commit_wait=(style == "spanner"))
            rng = bed.make_range(PRIMARY, global_reads=True)
            sim = bed.sim

            def writer(txn):
                yield from txn.write(rng, "k", "v")

            processes = [
                sim.spawn(bed.coord.run(bed.gateway(PRIMARY, i), writer))
                for i in range(3)
            ]
            for process in processes:
                sim.run_until_future(process)
            slowest[style] = sim.now
        assert slowest["spanner"] > slowest["crdb"] * 2.0


class TestTxnStats:
    def test_commit_counts(self, bed):
        rng = bed.make_range(PRIMARY)
        bed.do_write(PRIMARY, rng, "a", 1)
        bed.do_read(PRIMARY, rng, "a")
        assert bed.coord.stats.committed == 2
        assert bed.coord.stats.begun >= 2
