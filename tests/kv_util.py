"""Shared helpers for KV-level integration tests."""

from repro.cluster import standard_cluster
from repro.kv.distsender import DistSender, ReadRouting
from repro.placement import SurvivalGoal, provision_range, zone_config_for_home
from repro.txn import TransactionCoordinator

REGIONS5 = ["us-east1", "us-west1", "europe-west2", "asia-northeast1",
            "australia-southeast1"]
REGIONS3 = ["us-east1", "europe-west2", "asia-northeast1"]


class KVTestBed:
    """A cluster, a coordinator, and helpers for one-shot transactions."""

    def __init__(self, regions=REGIONS5, nodes_per_region=3,
                 max_clock_offset=250.0, skew_fraction=0.5,
                 jitter_fraction=0.0, goal=SurvivalGoal.ZONE, seed=0,
                 spanner_style_commit_wait=False,
                 side_transport_interval_ms=100.0):
        self.cluster = standard_cluster(
            regions, nodes_per_region=nodes_per_region,
            max_clock_offset=max_clock_offset, skew_fraction=skew_fraction,
            jitter_fraction=jitter_fraction, seed=seed)
        self.goal = goal
        self.side_transport_interval_ms = side_transport_interval_ms
        self.coord = TransactionCoordinator(
            self.cluster,
            spanner_style_commit_wait=spanner_style_commit_wait)
        self.ds = self.coord.distsender

    @property
    def sim(self):
        return self.cluster.sim

    def make_range(self, home_region, global_reads=False,
                   placement_restricted=False, closed_ts_lag_ms=None):
        config = zone_config_for_home(
            home_region, self.cluster.regions(), self.goal,
            placement_restricted=placement_restricted)
        return provision_range(
            self.cluster, config, global_reads=global_reads,
            side_transport_interval_ms=self.side_transport_interval_ms,
            closed_ts_lag_ms=closed_ts_lag_ms)

    def gateway(self, region, index=0):
        return self.cluster.gateway_for_region(region, index)

    # -- one-shot transaction helpers ------------------------------------------

    def do_write(self, region, rng, key, value):
        """Run a single-write transaction from ``region``; returns
        (commit_ts, elapsed_ms)."""
        gateway = self.gateway(region)
        start = self.sim.now

        def txn_fn(txn):
            yield from txn.write(rng, key, value)
            return None

        def main():
            _result, commit_ts = yield from self.coord.run(gateway, txn_fn)
            return commit_ts

        process = self.sim.spawn(main())
        commit_ts = self.sim.run_until_future(process)
        return commit_ts, self.sim.now - start

    def do_read(self, region, rng, key, routing=ReadRouting.LEASEHOLDER):
        """Run a single-read transaction from ``region``; returns
        (value, elapsed_ms)."""
        gateway = self.gateway(region)
        start = self.sim.now

        def txn_fn(txn):
            value = yield from txn.read(rng, key, routing=routing)
            return value

        def main():
            value, _commit_ts = yield from self.coord.run(gateway, txn_fn)
            return value

        process = self.sim.spawn(main())
        value = self.sim.run_until_future(process)
        return value, self.sim.now - start

    def run_txn(self, region, txn_fn):
        """Run an arbitrary transaction function; returns (result, elapsed)."""
        gateway = self.gateway(region)
        start = self.sim.now

        def main():
            result, _commit_ts = yield from self.coord.run(gateway, txn_fn)
            return result

        process = self.sim.spawn(main())
        result = self.sim.run_until_future(process)
        return result, self.sim.now - start

    def settle(self, ms=500.0):
        """Let replication/side-transport catch up."""
        self.sim.run(until=self.sim.now + ms)
