"""Tests for the MVCC store: versions, intents, uncertainty."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import (
    ReadWithinUncertaintyIntervalError,
    WriteIntentError,
    WriteTooOldError,
)
from repro.sim.clock import Timestamp, TS_ZERO
from repro.storage.mvcc import MVCCStore


def ts(physical, logical=0, synthetic=False):
    return Timestamp(physical, logical, synthetic)


class TestCommittedReads:
    def test_missing_key_reads_none(self):
        store = MVCCStore()
        result = store.get("k", ts(10))
        assert result.value is None
        assert not result.exists

    def test_read_sees_latest_at_or_below(self):
        store = MVCCStore()
        store.put_committed("k", ts(1), "v1")
        store.put_committed("k", ts(5), "v5")
        store.put_committed("k", ts(9), "v9")
        assert store.get("k", ts(5)).value == "v5"
        assert store.get("k", ts(6)).value == "v5"
        assert store.get("k", ts(100)).value == "v9"

    def test_read_below_first_version(self):
        store = MVCCStore()
        store.put_committed("k", ts(5), "v5")
        assert store.get("k", ts(4)).value is None

    def test_read_exact_boundary_inclusive(self):
        store = MVCCStore()
        store.put_committed("k", ts(5), "v5")
        assert store.get("k", ts(5)).value == "v5"

    def test_tombstone_reads_none(self):
        store = MVCCStore()
        store.put_committed("k", ts(1), "v1")
        store.put_committed("k", ts(2), None)
        assert store.get("k", ts(3)).value is None
        assert store.get("k", ts(1)).value == "v1"

    def test_out_of_order_commits_sorted(self):
        store = MVCCStore()
        store.put_committed("k", ts(9), "v9")
        store.put_committed("k", ts(1), "v1")
        assert store.get("k", ts(2)).value == "v1"
        assert store.version_count("k") == 2


class TestIntents:
    def test_own_intent_visible(self):
        store = MVCCStore()
        store.put_intent("k", ts(5), "mine", txn_id=1)
        result = store.get("k", ts(10), txn_id=1)
        assert result.value == "mine"
        assert result.from_intent

    def test_own_intent_visible_even_below_read_ts(self):
        store = MVCCStore()
        store.put_intent("k", ts(50), "mine", txn_id=1)
        assert store.get("k", ts(10), txn_id=1).value == "mine"

    def test_foreign_intent_below_read_conflicts(self):
        store = MVCCStore()
        store.put_intent("k", ts(5), "theirs", txn_id=2)
        with pytest.raises(WriteIntentError):
            store.get("k", ts(10), txn_id=1)

    def test_foreign_intent_above_read_invisible(self):
        store = MVCCStore()
        store.put_committed("k", ts(1), "old")
        store.put_intent("k", ts(50), "theirs", txn_id=2)
        assert store.get("k", ts(10), txn_id=1).value == "old"

    def test_foreign_intent_in_uncertainty_window_conflicts(self):
        store = MVCCStore()
        store.put_intent("k", ts(15), "theirs", txn_id=2)
        with pytest.raises(WriteIntentError):
            store.get("k", ts(10), txn_id=1, uncertainty_limit=ts(20))

    def test_commit_intent_creates_version(self):
        store = MVCCStore()
        store.put_intent("k", ts(5), "v", txn_id=1)
        assert store.resolve_intent("k", 1, ts(7))
        assert store.intent_for("k") is None
        assert store.get("k", ts(7)).value == "v"
        assert store.get("k", ts(6)).value is None

    def test_abort_intent_removes_it(self):
        store = MVCCStore()
        store.put_intent("k", ts(5), "v", txn_id=1)
        assert store.resolve_intent("k", 1, None)
        assert store.get("k", ts(10)).value is None

    def test_resolve_is_idempotent(self):
        store = MVCCStore()
        store.put_intent("k", ts(5), "v", txn_id=1)
        assert store.resolve_intent("k", 1, ts(5))
        assert not store.resolve_intent("k", 1, ts(5))
        assert store.version_count("k") == 1

    def test_resolve_wrong_txn_noop(self):
        store = MVCCStore()
        store.put_intent("k", ts(5), "v", txn_id=1)
        assert not store.resolve_intent("k", 99, ts(5))
        assert store.intent_for("k") is not None

    def test_replacing_own_intent(self):
        store = MVCCStore()
        store.put_intent("k", ts(5), "v1", txn_id=1)
        store.put_intent("k", ts(6), "v2", txn_id=1)
        assert store.get("k", ts(10), txn_id=1).value == "v2"

    def test_foreign_intent_blocks_new_intent(self):
        store = MVCCStore()
        store.put_intent("k", ts(5), "v", txn_id=1)
        with pytest.raises(WriteIntentError):
            store.put_intent("k", ts(6), "w", txn_id=2)


class TestUncertainty:
    def test_value_in_window_raises(self):
        store = MVCCStore()
        store.put_committed("k", ts(15), "future")
        with pytest.raises(ReadWithinUncertaintyIntervalError) as exc:
            store.get("k", ts(10), uncertainty_limit=ts(20))
        assert exc.value.value_ts == ts(15)

    def test_value_above_window_ignored(self):
        store = MVCCStore()
        store.put_committed("k", ts(25), "far-future")
        assert store.get("k", ts(10), uncertainty_limit=ts(20)).value is None

    def test_value_at_limit_is_uncertain(self):
        store = MVCCStore()
        store.put_committed("k", ts(20), "edge")
        with pytest.raises(ReadWithinUncertaintyIntervalError):
            store.get("k", ts(10), uncertainty_limit=ts(20))

    def test_no_window_no_uncertainty(self):
        store = MVCCStore()
        store.put_committed("k", ts(15), "future")
        assert store.get("k", ts(10)).value is None


class TestWriteChecks:
    def test_write_above_history_ok(self):
        store = MVCCStore()
        store.put_committed("k", ts(5), "v")
        assert store.check_write("k", ts(6), txn_id=1) == ts(6)

    def test_write_below_committed_raises(self):
        store = MVCCStore()
        store.put_committed("k", ts(5), "v")
        with pytest.raises(WriteTooOldError) as exc:
            store.check_write("k", ts(5), txn_id=1)
        assert exc.value.existing_ts == ts(5)

    def test_write_on_foreign_intent_raises(self):
        store = MVCCStore()
        store.put_intent("k", ts(5), "v", txn_id=2)
        with pytest.raises(WriteIntentError):
            store.check_write("k", ts(6), txn_id=1)

    def test_write_on_own_intent_ok(self):
        store = MVCCStore()
        store.put_intent("k", ts(5), "v", txn_id=1)
        assert store.check_write("k", ts(6), txn_id=1) == ts(6)


class TestChangedInInterval:
    def test_no_change(self):
        store = MVCCStore()
        store.put_committed("k", ts(5), "v")
        assert not store.changed_in_interval("k", ts(5), ts(10))

    def test_committed_change_detected(self):
        store = MVCCStore()
        store.put_committed("k", ts(7), "v")
        assert store.changed_in_interval("k", ts(5), ts(10))

    def test_boundaries(self):
        store = MVCCStore()
        store.put_committed("k", ts(5), "v")
        # lo is exclusive, hi inclusive.
        assert not store.changed_in_interval("k", ts(5), ts(10))
        store.put_committed("k", ts(10), "w")
        assert store.changed_in_interval("k", ts(5), ts(10))

    def test_foreign_intent_counts(self):
        store = MVCCStore()
        store.put_intent("k", ts(7), "v", txn_id=2)
        assert store.changed_in_interval("k", ts(5), ts(10), txn_id=1)

    def test_own_intent_ignored(self):
        store = MVCCStore()
        store.put_intent("k", ts(7), "v", txn_id=1)
        assert not store.changed_in_interval("k", ts(5), ts(10), txn_id=1)

    def test_missing_key_unchanged(self):
        store = MVCCStore()
        assert not store.changed_in_interval("k", ts(0), ts(100))


class TestSnapshot:
    def test_snapshot_at_timestamp(self):
        store = MVCCStore()
        store.put_committed("a", ts(1), "a1")
        store.put_committed("b", ts(5), "b5")
        snap = store.snapshot_at(ts(3))
        assert snap == {"a": "a1"}

    def test_snapshot_skips_tombstones(self):
        store = MVCCStore()
        store.put_committed("a", ts(1), "a1")
        store.put_committed("a", ts(2), None)
        assert store.snapshot_at(ts(3)) == {}


@given(st.lists(st.tuples(st.integers(min_value=1, max_value=100),
                          st.integers(min_value=0, max_value=9)),
                min_size=1, max_size=30))
def test_property_read_sees_newest_at_or_below(writes):
    """For any committed history, a read at T returns the version with the
    largest timestamp <= T."""
    store = MVCCStore()
    seen = {}
    for physical, value in writes:
        t = Timestamp(float(physical), seen.get(physical, 0))
        seen[physical] = seen.get(physical, 0) + 1
        store.put_committed("k", t, value)

    read_at = Timestamp(50.0, 1 << 20)
    # Brute-force expectation: enumerate all (ts, value) pairs we inserted.
    expected = None
    history = []
    seen2 = {}
    for physical, value in writes:
        t = Timestamp(float(physical), seen2.get(physical, 0))
        seen2[physical] = seen2.get(physical, 0) + 1
        history.append((t, value))
    eligible = [(t, v) for t, v in history if t <= read_at]
    if eligible:
        expected = max(eligible, key=lambda pair: pair[0].key())[1]
    assert store.get("k", read_at).value == expected
