"""Tests for the fault plane: asymmetric cuts, seeded loss, latency
multipliers, crash-restart catch-up, and the RPC circuit breaker."""

import pytest

from repro.cluster import standard_cluster
from repro.kv.circuit import BreakerState, CircuitBreaker
from repro.placement.goals import SurvivalGoal
from repro.sim.network import FaultPlane, NetworkUnavailableError

from .kv_util import KVTestBed, REGIONS3


def _east_west_cluster():
    cluster = standard_cluster(["us-east1", "us-west1"], nodes_per_region=1,
                               jitter_fraction=0.0)
    return cluster, cluster.nodes[0], cluster.nodes[1]


class TestAsymmetricCuts:
    def test_cut_is_directional(self):
        cluster, east, west = _east_west_cluster()
        faults = cluster.network.faults
        faults.cut_link("us-east1", "us-west1", bidirectional=False)
        assert not cluster.network.reachable(east, west)
        assert cluster.network.reachable(west, east)

    def test_bidirectional_cut_and_heal(self):
        cluster, east, west = _east_west_cluster()
        faults = cluster.network.faults
        faults.cut_link("us-east1", "us-west1", bidirectional=True)
        assert not cluster.network.reachable(east, west)
        assert not cluster.network.reachable(west, east)
        faults.heal_link("us-east1", "us-west1", bidirectional=True)
        assert cluster.network.reachable(east, west)
        assert cluster.network.reachable(west, east)

    def test_node_level_cut(self):
        cluster, east, west = _east_west_cluster()
        faults = cluster.network.faults
        faults.cut_link(east.node_id, west.node_id)
        assert not cluster.network.reachable(east, west)
        assert cluster.network.reachable(west, east)

    def test_reply_direction_blocked_rejects_call(self):
        """The request flows, the handler runs, but the reply can't come
        back: the caller must get an error (and an ambiguous outcome),
        not a silently-delivered answer through a one-way cut."""
        cluster, east, west = _east_west_cluster()
        faults = cluster.network.faults
        faults.cut_link("us-west1", "us-east1", bidirectional=False)
        ran = []
        dropped_before = cluster.network.messages_dropped

        def handler():
            ran.append(True)
            return 42
            yield  # pragma: no cover

        def main():
            with pytest.raises(NetworkUnavailableError):
                yield cluster.network.call(east, west, handler)

        process = cluster.sim.spawn(main())
        cluster.sim.run_until_future(process)
        assert ran == [True]  # side effects on the destination stand
        assert cluster.network.messages_dropped > dropped_before


class TestSeededLossAndLatency:
    def test_loss_sampling_is_deterministic_per_seed(self):
        def sample(seed):
            cluster, east, west = _east_west_cluster()
            faults = FaultPlane(seed=seed)
            faults.set_loss("us-east1", "us-west1", 0.5)
            return [faults.should_drop(east, west) for _ in range(64)]

        assert sample(7) == sample(7)
        assert sample(7) != sample(8)
        assert any(sample(7)) and not all(sample(7))

    def test_loss_zero_clears_rule(self):
        cluster, east, west = _east_west_cluster()
        faults = cluster.network.faults
        faults.set_loss("us-east1", "us-west1", 0.9)
        faults.set_loss("us-east1", "us-west1", 0.0)
        assert not any(faults.should_drop(east, west) for _ in range(64))

    def test_latency_factor_scales_one_way(self):
        cluster, east, west = _east_west_cluster()
        base = cluster.network.one_way_latency(east, west)
        cluster.network.faults.set_latency_factor(
            "us-east1", "us-west1", 3.0)
        assert cluster.network.one_way_latency(east, west) == \
            pytest.approx(3.0 * base)

    def test_gray_node_slows_both_directions(self):
        cluster, east, west = _east_west_cluster()
        base_out = cluster.network.one_way_latency(east, west)
        base_in = cluster.network.one_way_latency(west, east)
        cluster.network.faults.slow_node(east.node_id, 10.0)
        assert cluster.network.one_way_latency(east, west) == \
            pytest.approx(10.0 * base_out)
        assert cluster.network.one_way_latency(west, east) == \
            pytest.approx(10.0 * base_in)

    def test_heal_all_links_scrubs_everything(self):
        cluster, east, west = _east_west_cluster()
        faults = cluster.network.faults
        faults.cut_link("us-east1", "us-west1")
        faults.set_loss("us-east1", "us-west1", 0.5)
        faults.set_latency_factor("us-east1", "us-west1", 2.0)
        faults.slow_node(east.node_id, 5.0)
        faults.heal_all_links()
        assert cluster.network.reachable(east, west)
        assert not faults.should_drop(east, west)
        assert faults.latency_factor(east, west) == 1.0


class TestCrashRestartCatchUp:
    def test_restarted_follower_catches_up(self):
        """A follower that crashes, misses writes, and restarts must
        resync: its log and applied state converge on the leader's."""
        bed = KVTestBed(regions=REGIONS3, goal=SurvivalGoal.REGION, seed=3)
        rng = bed.make_range("us-east1")
        rng.group.start_retransmission(interval_ms=150.0)
        bed.do_write("us-east1", rng, "k", 0)

        follower = next(
            peer.node.node_id for peer in rng.group.voters()
            if peer.node.node_id != rng.leaseholder_node_id)
        bed.cluster.crash_node(follower)
        for value in range(1, 4):
            bed.do_write("us-east1", rng, "k", value)
        leader_last = rng.group.peers[rng.leaseholder_node_id].last_index
        assert rng.group.peers[follower].last_index < leader_last

        bed.cluster.restart_node(follower)
        bed.sim.run(until=bed.sim.now + 2000.0)
        peer = rng.group.peers[follower]
        leader = rng.group.peers[rng.leaseholder_node_id]
        assert peer.last_index == leader.last_index
        assert peer.applied_index == leader.applied_index
        assert peer.log[-1] is leader.log[-1]
        assert bed.cluster.network.faults.restart_counts[follower] == 1


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_ms=500.0)
        for _ in range(2):
            breaker.record_failure(now_ms=100.0)
        assert breaker.state == BreakerState.CLOSED
        breaker.record_failure(now_ms=100.0)
        assert breaker.state == BreakerState.OPEN
        assert breaker.trips == 1
        assert not breaker.allow(now_ms=200.0)

    def test_half_open_single_probe_then_close(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ms=500.0)
        breaker.record_failure(now_ms=0.0)
        assert breaker.blocked(now_ms=499.0)
        # Cooldown elapsed: exactly one probe allowed.
        assert breaker.allow(now_ms=600.0)
        assert breaker.state == BreakerState.HALF_OPEN
        assert not breaker.allow(now_ms=601.0)
        breaker.record_success()
        assert breaker.state == BreakerState.CLOSED
        assert breaker.allow(now_ms=602.0)

    def test_failed_probe_reopens_full_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ms=500.0)
        breaker.record_failure(now_ms=0.0)
        assert breaker.allow(now_ms=600.0)
        breaker.record_failure(now_ms=600.0)
        assert breaker.state == BreakerState.OPEN
        assert not breaker.allow(now_ms=1000.0)
        assert breaker.allow(now_ms=1101.0)
