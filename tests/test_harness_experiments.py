"""Tiny-scale runs of every experiment, checking structure and claims.

The full-size runs live in ``benchmarks/``; these keep the experiment
code itself covered by the regular test suite.
"""

import pytest

from repro.harness.experiments import (
    run_fig3,
    run_fig4a,
    run_fig4b,
    run_fig4c,
    run_fig5,
    run_fig6,
    run_table1,
    run_table2,
)


class TestFig3:
    def test_tiny_run_has_all_configs(self):
        result = run_fig3(clients_per_region=1, ops_per_client=10)
        assert set(result.recorders) == {"global", "regional_latest",
                                         "regional_stale"}
        table_text = result.table().render()
        assert "global" in table_text

    def test_subset_of_configs(self):
        result = run_fig3(clients_per_region=1, ops_per_client=6,
                          configs=("global",))
        assert list(result.recorders) == ["global"]
        assert result.summary("global", "read", primary=True).count > 0


class TestFig4:
    def test_fig4a_variants_present(self):
        result = run_fig4a(clients_per_region=1, ops_per_client=15,
                           localities=(0.5,), warmup_ops=5)
        variants = {variant for variant, _loc in result.recorders}
        assert variants == {"unoptimized", "default", "rehoming",
                            "baseline"}

    def test_fig4b_insert_labels(self):
        result = run_fig4b(clients_per_region=1, ops_per_client=25,
                           variants=("computed", "default"))
        assert result.insert_summary("computed").count > 0
        assert result.insert_summary("default").count > 0

    def test_fig4c_config_labels(self):
        result = run_fig4c(contending_clients=(1, 2), ops_per_client=15,
                           warmup_ops=5)
        assert set(result.recorders) == {"rehoming_c1", "rehoming_c2",
                                         "default"}


class TestFig5:
    def test_tiny_run_tail_claim(self):
        result = run_fig5(clients_per_region=2, ops_per_client=15,
                          keys_per_region=30,
                          configs=("global_250", "dup_idx"))
        # Even tiny runs preserve the common-case claim.
        assert result.summary("global_250", "read").p50 < 10.0
        assert result.summary("dup_idx", "read").p50 < 10.0
        assert result.summary("dup_idx", "write").p50 > 100.0
        assert result.cdf("global_250", "write")


class TestFig6:
    def test_two_point_scaling(self):
        result = run_fig6(region_counts=(3, 5), clients_per_region=1,
                          txns_per_client=6)
        assert len(result.points) == 2
        small, large = result.points
        assert large.new_orders >= 0
        assert large.warehouses > small.warehouses
        # Efficiency is computable and positive.
        assert result.efficiency(large) > 0.5
        assert "tpmC" in result.table().render()


class TestTables:
    def test_table1_renders_paper_values(self):
        text = run_table1().render()
        assert "63.0" in text and "274.0" in text

    def test_table2_counts_positive_and_improving(self):
        result = run_table2()
        assert len(result.counts) == 12
        for (schema, op), (before, after) in result.counts.items():
            assert before >= 1 and after >= 1
            assert after <= before
        text = result.table().render()
        assert "movr" in text
