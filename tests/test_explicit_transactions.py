"""Explicit BEGIN / COMMIT / ROLLBACK transactions on sessions."""

import pytest

from repro.errors import SchemaError, TransactionRetryError

from .sql_util import connect, movr_engine


class TestExplicitTransactions:
    def test_begin_commit_applies_writes(self):
        engine, session = movr_engine()
        session.execute("BEGIN")
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (1, 'a@x', 'A')")
        session.execute("UPDATE users SET name = 'AA' WHERE id = 1")
        session.execute("COMMIT")
        assert session.execute("SELECT name FROM users WHERE id = 1") == \
            [{"name": "AA"}]

    def test_rollback_discards_writes(self):
        engine, session = movr_engine()
        session.execute("BEGIN")
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (2, 'b@x', 'B')")
        session.execute("ROLLBACK")
        assert session.execute("SELECT * FROM users WHERE id = 2") == []

    def test_uncommitted_writes_invisible_to_others(self):
        engine, session = movr_engine()
        other = connect(engine, "us-east1", index=1)
        session.execute("BEGIN")
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (3, 'c@x', 'C')")
        # Reads-own-writes inside the transaction...
        assert session.execute("SELECT name FROM users WHERE id = 3") == \
            [{"name": "C"}]
        session.execute("ROLLBACK")
        # ...and nothing escaped.
        assert other.execute("SELECT * FROM users WHERE id = 3") == []

    def test_commit_without_begin(self):
        engine, session = movr_engine()
        with pytest.raises(SchemaError, match="no transaction"):
            session.execute("COMMIT")

    def test_nested_begin_rejected(self):
        engine, session = movr_engine()
        session.execute("BEGIN")
        with pytest.raises(SchemaError, match="already open"):
            session.execute("BEGIN")
        session.execute("ROLLBACK")

    def test_stale_read_rejected_inside_txn(self):
        engine, session = movr_engine()
        session.execute("BEGIN")
        with pytest.raises(SchemaError):
            session.execute(
                "SELECT * FROM users AS OF SYSTEM TIME '-1s' WHERE id = 1")
        session.execute("ROLLBACK")

    def test_script_with_explicit_txn(self):
        engine, session = movr_engine()
        session.execute(
            "BEGIN; "
            "INSERT INTO users (id, email, name) VALUES (4, 'd@x', 'D'); "
            "COMMIT;")
        assert session.execute("SELECT name FROM users WHERE id = 4") == \
            [{"name": "D"}]

    def test_serialization_failure_surfaces_to_client(self):
        """A refresh failure inside an explicit transaction is returned
        to the client (like SQLSTATE 40001), not silently retried."""
        engine, session = movr_engine()
        session.execute("INSERT INTO users (id, email, name) "
                        "VALUES (5, 'e@x', 'v0')")
        other = connect(engine, "us-east1", index=1)

        session.execute("BEGIN")
        # Pin a read.
        session.execute("SELECT name FROM users WHERE id = 5")
        # A concurrent autocommit write invalidates the read window.
        other.execute("UPDATE users SET name = 'v1' WHERE id = 5")
        # Writing now bumps the txn above its read; COMMIT must fail.
        with pytest.raises(TransactionRetryError):
            session.execute(
                "UPDATE users SET name = 'mine' WHERE id = 5; COMMIT;")
        # The transaction is gone; the session is usable again.
        assert session.execute("SELECT name FROM users WHERE id = 5") == \
            [{"name": "v1"}]
