"""ON UPDATE CASCADE collocation (§2.3.2): child rows follow their
parent's region."""

import pytest

from repro.errors import ForeignKeyViolationError

from .sql_util import connect, movr_engine


def setup(session):
    session.execute(
        "CREATE TABLE parents (id int PRIMARY KEY, name string, "
        "crdb_region crdb_internal_region NOT VISIBLE NOT NULL "
        "DEFAULT gateway_region()) LOCALITY REGIONAL BY ROW")
    session.execute(
        "CREATE TABLE children (id int PRIMARY KEY, parent_id int, "
        "v string, crdb_region crdb_internal_region NOT VISIBLE NOT NULL "
        "DEFAULT gateway_region(), "
        "FOREIGN KEY (parent_id, crdb_region) REFERENCES parents "
        "(id, crdb_region) ON UPDATE CASCADE) LOCALITY REGIONAL BY ROW")
    # Keep the measurement clean of uniqueness fan-outs.
    for name in ("parents", "children"):
        session.engine.catalog.database("movr").table(name) \
            .suppress_uniqueness_checks = True


class TestCascadeCollocation:
    def test_children_follow_rehomed_parent(self):
        engine, session = movr_engine()
        setup(session)
        session.execute("INSERT INTO parents (id, name) VALUES (1, 'P')")
        session.execute(
            "INSERT INTO children (id, parent_id, v) VALUES "
            "(10, 1, 'a'), (11, 1, 'b')")
        # Move the parent to us-west1; the cascade moves the children.
        session.execute(
            "UPDATE parents SET crdb_region = 'us-west1' WHERE id = 1")
        homes = session.execute(
            "SELECT crdb_region FROM children WHERE parent_id = 1 "
            "AND crdb_region = 'us-west1'")
        assert len(homes) == 2
        # And the children are now local to a us-west1 client.
        west = connect(engine, "us-west1")
        sim = engine.cluster.sim
        start = sim.now
        rows = west.execute(
            "SELECT v FROM children WHERE id = 10 AND "
            "crdb_region = 'us-west1'")
        assert rows == [{"v": "a"}]
        assert sim.now - start < 10.0

    def test_unrelated_children_unmoved(self):
        engine, session = movr_engine()
        setup(session)
        session.execute("INSERT INTO parents (id, name) VALUES "
                        "(1, 'P1'), (2, 'P2')")
        session.execute(
            "INSERT INTO children (id, parent_id, v) VALUES "
            "(10, 1, 'a'), (20, 2, 'b')")
        session.execute(
            "UPDATE parents SET crdb_region = 'us-west1' WHERE id = 1")
        other = session.execute(
            "SELECT crdb_region FROM children WHERE id = 20")
        assert other == [{"crdb_region": "us-east1"}]

    def test_non_region_parent_update_no_move(self):
        engine, session = movr_engine()
        setup(session)
        session.execute("INSERT INTO parents (id, name) VALUES (1, 'P')")
        session.execute(
            "INSERT INTO children (id, parent_id, v) VALUES (10, 1, 'a')")
        session.execute("UPDATE parents SET name = 'P2' WHERE id = 1")
        rows = session.execute(
            "SELECT crdb_region FROM children WHERE id = 10")
        assert rows == [{"crdb_region": "us-east1"}]

    def test_table_level_fk_validated_on_insert(self):
        engine, session = movr_engine()
        setup(session)
        session.execute("INSERT INTO parents (id, name) VALUES (1, 'P')")
        with pytest.raises(ForeignKeyViolationError):
            session.execute(
                "INSERT INTO children (id, parent_id, v) VALUES "
                "(30, 99, 'x')")

    def test_fk_with_matching_region_validates_locally(self):
        """The collocated FK's parent lookup pins the region column, so
        validation is a single-partition point read."""
        engine, session = movr_engine()
        setup(session)
        west = connect(engine, "us-west1")
        west.execute("INSERT INTO parents (id, name) VALUES (5, 'W')")
        sim = engine.cluster.sim
        start = sim.now
        west.execute(
            "INSERT INTO children (id, parent_id, v) VALUES (50, 5, 'c')")
        assert sim.now - start < 10.0
