"""Clock-fault nemesis surface and clock-safety monitor.

Unit tests for the dynamic :class:`ClockModel` mutators (drift, jump,
freeze), the re-arming ``HLC.wait_until`` under mid-wait clock faults,
HLC monotonicity edge cases, and the :class:`ClockMonitor` measurement
/ fencing / serve-side rejection logic.  The end-to-end chaos and
fencing-ablation sweeps live in ``test_clock_sweep.py`` (tier-2,
``pytest -m clock``).
"""

import pytest

from repro.cluster.clocksync import install_clock_monitor
from repro.errors import ClockFencedError, ClockOutlierRejectedError
from repro.sim.clock import HLC, ClockModel, SkewModel, Timestamp
from repro.sim.core import Simulator

from .kv_util import KVTestBed, REGIONS3


def _model(sim, **kwargs):
    kwargs.setdefault("skew_fraction", 0.0)  # base offsets 0: exact asserts
    return ClockModel(250.0, seed=0, sim=sim, **kwargs)


def _advance(sim, ms):
    sim.run(until=sim.now + ms)


class TestClockModelFaults:
    def test_drift_accumulates_linearly(self):
        sim = Simulator()
        model = _model(sim)
        model.set_drift(1, 0.01)
        _advance(sim, 100.0)
        assert model.effective_offset(1) == pytest.approx(1.0)
        assert model.is_faulted(1)

    def test_piecewise_drift_keeps_prior_error(self):
        sim = Simulator()
        model = _model(sim)
        model.set_drift(1, 0.01)
        _advance(sim, 100.0)          # +1.0
        model.set_drift(1, -0.02)
        _advance(sim, 50.0)           # -1.0
        assert model.effective_offset(1) == pytest.approx(0.0)

    def test_clear_drift_retains_accumulated_error(self):
        sim = Simulator()
        model = _model(sim)
        model.set_drift(1, 0.05)
        _advance(sim, 100.0)
        model.clear_drift(1)
        _advance(sim, 200.0)
        assert model.effective_offset(1) == pytest.approx(5.0)

    def test_jumps_stack_in_either_direction(self):
        sim = Simulator()
        model = _model(sim)
        model.jump(1, 100.0)
        assert model.effective_offset(1) == pytest.approx(100.0)
        model.jump(1, -250.0)
        assert model.effective_offset(1) == pytest.approx(-150.0)

    def test_freeze_holds_the_reading(self):
        sim = Simulator()
        model = _model(sim)
        _advance(sim, 100.0)
        model.freeze(1)
        _advance(sim, 500.0)
        assert model.physical_now(1, sim.now) == pytest.approx(100.0)
        assert model.effective_offset(1) == pytest.approx(-500.0)

    def test_jump_while_frozen_moves_the_frozen_value(self):
        sim = Simulator()
        model = _model(sim)
        _advance(sim, 100.0)
        model.freeze(1)
        model.jump(1, 50.0)
        _advance(sim, 300.0)
        assert model.physical_now(1, sim.now) == pytest.approx(150.0)

    def test_unfreeze_resumes_behind_true_time(self):
        sim = Simulator()
        model = _model(sim)
        _advance(sim, 100.0)
        model.freeze(1)
        _advance(sim, 300.0)
        model.unfreeze(1)
        assert model.physical_now(1, sim.now) == pytest.approx(100.0)
        _advance(sim, 50.0)  # ticking again, still 300ms behind
        assert model.physical_now(1, sim.now) == pytest.approx(150.0)

    def test_heal_restores_base_offset(self):
        sim = Simulator()
        model = _model(sim)
        model.jump(1, 1000.0)
        model.set_drift(2, 0.1)
        model.heal(1)
        assert model.effective_offset(1) == 0.0
        assert not model.is_faulted(1)
        assert model.is_faulted(2)
        model.heal_all()
        assert not model.is_faulted(2)

    def test_faults_are_per_node(self):
        sim = Simulator()
        model = _model(sim)
        model.jump(1, 500.0)
        assert model.effective_offset(2) == 0.0
        assert not model.is_faulted(2)

    def test_faults_require_a_bound_simulator(self):
        model = ClockModel(250.0, seed=0)
        with pytest.raises(RuntimeError):
            model.jump(1, 100.0)


class TestOffsetDeterminism:
    """Regression for the eager-offset rewrite: the static assignment
    depends only on (seed, node_id), never on query order."""

    IDS = [50, 3, 1, 64, 20, 7]

    def test_query_order_independence(self):
        a = SkewModel(max_offset=250.0, seed=7)
        b = SkewModel(max_offset=250.0, seed=7)
        seen_a = {i: a.offset_for(i) for i in self.IDS}
        seen_b = {i: b.offset_for(i) for i in reversed(self.IDS)}
        assert seen_a == seen_b

    def test_extension_beyond_prealloc_is_deterministic(self):
        a = SkewModel(max_offset=250.0, seed=9)
        b = SkewModel(max_offset=250.0, seed=9)
        direct = a.offset_for(100)
        for i in range(1, 100):
            b.offset_for(i)
        assert b.offset_for(100) == direct

    def test_non_positive_ids_are_stable_and_bounded(self):
        a = SkewModel(max_offset=250.0, seed=3)
        b = SkewModel(max_offset=250.0, seed=3)
        for node_id in (0, -1, -5):
            off = a.offset_for(node_id)
            assert off == a.offset_for(node_id) == b.offset_for(node_id)
            assert abs(off) <= 250.0 / 2


class TestWaitUntilRearm:
    """Commit wait must re-check the clock on every wakeup: a single
    fixed-delay timer silently shortens the wait under clock faults."""

    def _wait(self, sim, clock, target_ms):
        def proc():
            yield clock.wait_until(Timestamp(target_ms, 0, synthetic=True))
            return sim.now

        return sim.run_process(proc())

    def test_backward_jump_mid_wait_extends_the_wait(self):
        sim = Simulator()
        model = _model(sim)
        clock = HLC(sim, node_id=1, skew=model)
        sim.call_after(50.0, lambda: model.jump(1, -40.0))
        assert self._wait(sim, clock, 100.0) == pytest.approx(140.0)

    def test_frozen_clock_defers_until_thawed(self):
        sim = Simulator()
        model = _model(sim)
        clock = HLC(sim, node_id=1, skew=model)
        sim.call_after(30.0, lambda: model.freeze(1))
        sim.call_after(200.0, lambda: model.unfreeze(1))
        # Frozen at reading 30 until sim-time 200, then 170ms behind:
        # the clock passes 100 only at sim-time 270.
        assert self._wait(sim, clock, 100.0) >= 270.0

    def test_forward_jump_resolves_at_scheduled_wake(self):
        sim = Simulator()
        model = _model(sim)
        clock = HLC(sim, node_id=1, skew=model)
        sim.call_after(10.0, lambda: model.jump(1, 500.0))
        # Re-arm only re-checks at the originally scheduled wake: the
        # jump never shortens an in-flight wait below its first arm.
        assert self._wait(sim, clock, 100.0) == pytest.approx(100.0)


class TestHLCUnderFaults:
    def test_now_monotone_across_backward_jump(self):
        sim = Simulator()
        model = _model(sim)
        clock = HLC(sim, node_id=1, skew=model)
        _advance(sim, 100.0)
        before = clock.now()
        model.jump(1, -50.0)
        after = clock.now()
        assert after > before
        assert after.physical == before.physical  # logical tiebreak

    def test_frozen_clock_burns_the_logical_counter(self):
        sim = Simulator()
        model = _model(sim)
        clock = HLC(sim, node_id=1, skew=model)
        _advance(sim, 10.0)
        model.freeze(1)
        readings = [clock.now() for _ in range(100)]
        assert all(b > a for a, b in zip(readings, readings[1:]))
        assert readings[-1].physical == readings[0].physical
        assert readings[-1].logical == readings[0].logical + 99

    def test_update_then_backward_jump_stays_monotone(self):
        sim = Simulator()
        model = _model(sim)
        clock = HLC(sim, node_id=1, skew=model)
        high = clock.update(Timestamp(500.0, 3))
        model.jump(1, -200.0)
        assert clock.now() > high

    def test_synthetic_update_never_advances_a_faulted_clock(self):
        sim = Simulator()
        model = _model(sim)
        model.jump(1, -100.0)
        clock = HLC(sim, node_id=1, skew=model)
        _advance(sim, 200.0)
        after = clock.update(Timestamp(1e6, 0, synthetic=True))
        assert after.physical == pytest.approx(100.0)


class TestClockMonitor:
    def _bed(self, **kwargs):
        bed = KVTestBed(regions=REGIONS3, seed=0)
        monitor = install_clock_monitor(bed.cluster, **kwargs)
        return bed, monitor

    def _feed(self, monitor, observer, peers):
        """Deliver one honest clock reading from each peer to observer."""
        for peer in peers:
            monitor.observe(observer.node_id, peer.node_id,
                            peer.clock.physical_now())

    def test_victim_majority_vote_self_fences(self):
        bed, monitor = self._bed()
        cluster = bed.cluster
        victim = cluster.gateway_for_region("us-east1", 1)
        cluster.clock.jump(victim.node_id, 2000.0)
        peers = [n for n in cluster.nodes
                 if n.node_id != victim.node_id][:3]
        self._feed(monitor, victim, peers)
        assert victim.fenced
        assert len(monitor.fence_events) == 1
        _when, node_id, worst = monitor.fence_events[0]
        assert node_id == victim.node_id
        assert worst == pytest.approx(2000.0, abs=300.0)
        assert cluster.network.node_is_dead(victim.node_id)

    def test_healthy_observer_survives_one_bad_peer(self):
        bed, monitor = self._bed()
        cluster = bed.cluster
        victim = cluster.gateway_for_region("us-east1", 1)
        observer = cluster.gateway_for_region("europe-west2")
        cluster.clock.jump(victim.node_id, 2000.0)
        healthy = [n for n in cluster.nodes
                   if n.node_id not in (victim.node_id, observer.node_id)][:2]
        self._feed(monitor, observer, healthy + [victim])
        assert not observer.fenced
        assert monitor.fence_events == []
        # ...but the observer did measure the outlier correctly.
        assert abs(monitor.estimate(observer.node_id,
                                    victim.node_id)) > monitor.max_offset

    def test_min_peers_guards_a_single_bad_link(self):
        bed, monitor = self._bed()
        cluster = bed.cluster
        victim = cluster.gateway_for_region("us-east1", 1)
        cluster.clock.jump(victim.node_id, 2000.0)
        peer = cluster.gateway_for_region("asia-northeast1")
        self._feed(monitor, victim, [peer])
        assert not victim.fenced
        assert monitor.fence_events == []

    def test_fencing_disabled_records_detection_only(self):
        bed, monitor = self._bed(fence_enabled=False)
        cluster = bed.cluster
        victim = cluster.gateway_for_region("us-east1", 1)
        cluster.clock.jump(victim.node_id, 2000.0)
        peers = [n for n in cluster.nodes
                 if n.node_id != victim.node_id][:3]
        self._feed(monitor, victim, peers)
        assert not victim.fenced
        assert victim.alive
        assert monitor.fence_events == []
        assert len(monitor.outlier_detections) >= 1

    def test_check_request_rejects_out_of_contract_timestamps(self):
        bed, monitor = self._bed()
        node = bed.cluster.gateway_for_region("us-east1")
        local = node.clock.physical_now()
        with pytest.raises(ClockOutlierRejectedError):
            monitor.check_request(node, Timestamp(local + 1000.0))
        # Synthetic timestamps promise nothing about any clock: exempt.
        monitor.check_request(node, Timestamp(local + 1000.0,
                                              synthetic=True))
        # In-contract senders (max_offset + flight slack) always pass.
        monitor.check_request(node, Timestamp(local + 100.0))

    def test_fenced_node_refuses_everything(self):
        bed, monitor = self._bed()
        node = bed.cluster.gateway_for_region("us-east1")
        node.fenced = True
        with pytest.raises(ClockFencedError):
            monitor.check_request(node, Timestamp(0.0))

    def test_restart_clears_fence_and_estimates(self):
        bed, monitor = self._bed()
        cluster = bed.cluster
        victim = cluster.gateway_for_region("us-east1", 1)
        cluster.clock.jump(victim.node_id, 2000.0)
        peers = [n for n in cluster.nodes
                 if n.node_id != victim.node_id][:3]
        self._feed(monitor, victim, peers)
        assert victim.fenced
        cluster.clock.heal(victim.node_id)  # "restart step-syncs NTP"
        cluster.restart_node(victim.node_id)
        assert not victim.fenced
        assert monitor.estimate(victim.node_id, peers[0].node_id) is None
        assert monitor.estimate(peers[0].node_id, victim.node_id) is None
