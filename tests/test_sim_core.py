"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.core import (
    Future,
    SimulationError,
    Simulator,
    all_of,
    any_of,
    quorum_of,
)


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_call_after_runs_in_order():
    sim = Simulator()
    seen = []
    sim.call_after(5.0, seen.append, "b")
    sim.call_after(1.0, seen.append, "a")
    sim.call_after(9.0, seen.append, "c")
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 9.0


def test_same_time_events_fifo():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.call_after(1.0, seen.append, i)
    sim.run()
    assert seen == list(range(10))


def test_cannot_schedule_in_past():
    sim = Simulator()
    sim.call_after(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(0.5, lambda: None)


def test_run_until_stops_early():
    sim = Simulator()
    seen = []
    sim.call_after(10.0, seen.append, 1)
    sim.run(until=5.0)
    assert seen == []
    assert sim.now == 5.0
    sim.run()
    assert seen == [1]


def test_run_until_advances_time_with_empty_heap():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_sleep_process():
    sim = Simulator()

    def proc():
        yield sim.sleep(3.0)
        yield sim.sleep(4.0)
        return sim.now

    assert sim.run_process(proc()) == 7.0


def test_process_return_value():
    sim = Simulator()

    def proc():
        yield sim.sleep(1.0)
        return "done"

    assert sim.run_process(proc()) == "done"


def test_process_immediate_return():
    sim = Simulator()

    def proc():
        return 5
        yield  # pragma: no cover

    assert sim.run_process(proc()) == 5


def test_nested_process_wait():
    sim = Simulator()

    def child():
        yield sim.sleep(2.0)
        return "child-result"

    def parent():
        value = yield sim.spawn(child())
        return value

    assert sim.run_process(parent()) == "child-result"


def test_future_resolve_and_value():
    sim = Simulator()
    fut = Future(sim)
    assert not fut.done
    fut.resolve(10)
    assert fut.done
    assert fut.value == 10


def test_future_double_resolve_raises():
    sim = Simulator()
    fut = Future(sim)
    fut.resolve(1)
    with pytest.raises(SimulationError):
        fut.resolve(2)


def test_future_rejection_raises_in_process():
    sim = Simulator()

    class Boom(Exception):
        pass

    def proc():
        fut = Future(sim)
        sim.call_after(1.0, fut.reject, Boom("bad"))
        try:
            yield fut
        except Boom:
            return "caught"
        return "not caught"

    assert sim.run_process(proc()) == "caught"


def test_unhandled_process_exception_surfaces():
    sim = Simulator()

    def proc():
        yield sim.sleep(1.0)
        raise ValueError("boom")

    process = sim.spawn(proc())
    del process
    with pytest.raises(ValueError, match="boom"):
        sim.run()


def test_waited_process_exception_propagates_to_parent():
    sim = Simulator()

    def child():
        yield sim.sleep(1.0)
        raise KeyError("inner")

    def parent():
        try:
            yield sim.spawn(child())
        except KeyError:
            return "handled"
        return "unhandled"

    assert sim.run_process(parent()) == "handled"


def test_yielding_non_future_is_an_error():
    sim = Simulator()

    def proc():
        yield 42

    process = sim.spawn(proc())
    sim.run()
    assert isinstance(process.error, SimulationError)


def test_all_of_collects_values():
    sim = Simulator()

    def make(delay, value):
        def proc():
            yield sim.sleep(delay)
            return value
        return sim.spawn(proc())

    def main():
        futures = [make(3.0, "a"), make(1.0, "b"), make(2.0, "c")]
        values = yield all_of(sim, futures)
        return values, sim.now

    values, now = sim.run_process(main())
    assert values == ["a", "b", "c"]
    assert now == 3.0


def test_all_of_empty():
    sim = Simulator()

    def main():
        values = yield all_of(sim, [])
        return values

    assert sim.run_process(main()) == []


def test_any_of_returns_first():
    sim = Simulator()

    def make(delay, value):
        def proc():
            yield sim.sleep(delay)
            return value
        return sim.spawn(proc())

    def main():
        index, value = yield any_of(sim, [make(5.0, "slow"), make(1.0, "fast")])
        return index, value, sim.now

    index, value, now = sim.run_process(main())
    assert (index, value) == (1, "fast")
    assert now == 1.0


def test_quorum_of_resolves_at_threshold():
    sim = Simulator()

    def make(delay):
        def proc():
            yield sim.sleep(delay)
            return delay
        return sim.spawn(proc())

    def main():
        futures = [make(1.0), make(5.0), make(10.0)]
        values = yield quorum_of(sim, futures, 2)
        return values, sim.now

    values, now = sim.run_process(main())
    assert now == 5.0
    assert sorted(values) == [1.0, 5.0]


def test_quorum_of_fails_when_impossible():
    sim = Simulator()

    class Down(Exception):
        pass

    def ok(delay):
        def proc():
            yield sim.sleep(delay)
            return "ok"
        return sim.spawn(proc())

    def bad(delay):
        fut = Future(sim)
        sim.call_after(delay, fut.reject, Down())
        return fut

    def main():
        try:
            yield quorum_of(sim, [ok(10.0), bad(1.0), bad(2.0)], 2)
        except Down:
            return "failed"
        return "succeeded"

    assert sim.run_process(main()) == "failed"


def test_run_until_future():
    sim = Simulator()

    def forever():
        while True:
            yield sim.sleep(1.0)

    sim.spawn(forever())

    def task():
        yield sim.sleep(5.5)
        return "task-done"

    process = sim.spawn(task())
    assert sim.run_until_future(process) == "task-done"
    assert sim.now == 5.5


def test_timeout_future_rejects():
    sim = Simulator()

    class Late(Exception):
        pass

    def main():
        try:
            yield sim.timeout(2.0, Late())
        except Late:
            return sim.now

    assert sim.run_process(main()) == 2.0
