"""Tests for the timestamp cache and the lock table."""

import pytest

from repro.errors import TransactionAbortedError
from repro.sim.clock import Timestamp, TS_ZERO
from repro.sim.core import Simulator
from repro.storage.locktable import LockTable, WaitGraph
from repro.storage.tscache import TimestampCache


def ts(physical, logical=0):
    return Timestamp(physical, logical)


class TestTimestampCache:
    def test_empty_returns_low_water(self):
        cache = TimestampCache(low_water=ts(5))
        assert cache.high_water("k") == ts(5)

    def test_record_and_lookup(self):
        cache = TimestampCache()
        cache.record_read("k", ts(10))
        assert cache.high_water("k") == ts(10)

    def test_record_keeps_max(self):
        cache = TimestampCache()
        cache.record_read("k", ts(10))
        cache.record_read("k", ts(5))
        assert cache.high_water("k") == ts(10)

    def test_min_write_ts_above_reads(self):
        cache = TimestampCache()
        cache.record_read("k", ts(10))
        bumped = cache.min_write_ts("k", ts(7))
        assert bumped > ts(10)

    def test_min_write_ts_unchanged_when_clear(self):
        cache = TimestampCache()
        assert cache.min_write_ts("k", ts(7)) == ts(7)

    def test_write_at_exact_read_ts_bumped(self):
        cache = TimestampCache()
        cache.record_read("k", ts(10))
        assert cache.min_write_ts("k", ts(10)) == ts(10).next()

    def test_raise_low_water_compacts(self):
        cache = TimestampCache()
        cache.record_read("a", ts(3))
        cache.record_read("b", ts(30))
        cache.raise_low_water(ts(10))
        assert cache.high_water("a") == ts(10)
        assert cache.high_water("b") == ts(30)

    def test_low_water_never_regresses(self):
        cache = TimestampCache(low_water=ts(50))
        cache.raise_low_water(ts(10))
        assert cache.low_water == ts(50)


class TestLockTable:
    def test_wait_with_no_holder_resolves_immediately(self):
        sim = Simulator()
        table = LockTable(sim)

        def proc():
            yield table.wait_for("k", waiter_txn_id=1)
            return sim.now

        assert sim.run_process(proc()) == 0.0

    def test_wait_until_release(self):
        sim = Simulator()
        table = LockTable(sim)
        table.note_holder("k", 1, ts(5))

        def waiter():
            yield table.wait_for("k", waiter_txn_id=2)
            return sim.now

        process = sim.spawn(waiter())
        sim.call_after(10.0, table.release, "k", 1)
        sim.run()
        assert process.value == 10.0

    def test_release_by_non_holder_ignored(self):
        sim = Simulator()
        table = LockTable(sim)
        table.note_holder("k", 1, ts(5))
        table.release("k", 99)
        assert table.holder_of("k").txn_id == 1

    def test_multiple_waiters_all_released(self):
        sim = Simulator()
        table = LockTable(sim)
        table.note_holder("k", 1, ts(5))
        done = []

        def waiter(name):
            yield table.wait_for("k", waiter_txn_id=None)
            done.append(name)

        sim.spawn(waiter("a"))
        sim.spawn(waiter("b"))
        sim.call_after(5.0, table.release, "k", 1)
        sim.run()
        assert sorted(done) == ["a", "b"]

    def test_waiter_count(self):
        sim = Simulator()
        table = LockTable(sim)
        table.note_holder("k", 1, ts(5))
        table.wait_for("k", 2)
        table.wait_for("k", 3)
        assert table.waiter_count("k") == 2
        table.release("k", 1)
        assert table.waiter_count("k") == 0

    def test_deadlock_detected(self):
        sim = Simulator()
        table = LockTable(sim)
        # txn 1 holds a; txn 2 holds b; txn 1 waits for b; txn 2 waits
        # for a -> cycle, second waiter must be rejected.
        table.note_holder("a", 1, ts(1))
        table.note_holder("b", 2, ts(1))
        table.wait_for("b", waiter_txn_id=1)

        def proc():
            try:
                yield table.wait_for("a", waiter_txn_id=2)
            except TransactionAbortedError:
                return "deadlock"
            return "ok"

        assert sim.run_process(proc()) == "deadlock"

    def test_three_party_deadlock_detected(self):
        sim = Simulator()
        table = LockTable(sim)
        table.note_holder("a", 1, ts(1))
        table.note_holder("b", 2, ts(1))
        table.note_holder("c", 3, ts(1))
        table.wait_for("b", waiter_txn_id=1)
        table.wait_for("c", waiter_txn_id=2)

        def proc():
            try:
                yield table.wait_for("a", waiter_txn_id=3)
            except TransactionAbortedError:
                return "deadlock"
            return "ok"

        assert sim.run_process(proc()) == "deadlock"

    def test_no_false_deadlock_for_chain(self):
        sim = Simulator()
        table = LockTable(sim)
        table.note_holder("a", 1, ts(1))
        table.note_holder("b", 2, ts(1))
        # txn 3 waits on a (held by 1); txn 1 waits on b (held by 2);
        # no cycle.
        done = []

        def waiter(key, txn):
            yield table.wait_for(key, waiter_txn_id=txn)
            done.append(txn)

        sim.spawn(waiter("a", 3))
        sim.spawn(waiter("b", 1))
        sim.call_after(1.0, table.release, "a", 1)
        sim.call_after(2.0, table.release, "b", 2)
        sim.run()
        assert sorted(done) == [1, 3]

    def test_wait_edges_cleared_after_release(self):
        sim = Simulator()
        table = LockTable(sim)
        table.note_holder("a", 1, ts(1))

        def waiter():
            yield table.wait_for("a", waiter_txn_id=2)
            return "done"

        process = sim.spawn(waiter())
        sim.call_after(1.0, table.release, "a", 1)
        sim.run()
        assert process.value == "done"
        # txn 2 no longer waits; a new wait by txn 1 on a lock held by 2
        # must not be a false positive.
        table.note_holder("x", 2, ts(2))

        def proc():
            result_holder = []
            fut = table.wait_for("x", waiter_txn_id=1)
            table.release("x", 2)
            yield fut
            return "ok"

        assert sim.run_process(proc()) == "ok"


class TestWaitGraphCycles:
    def test_three_transaction_cycle_detected_at_closing_edge(self):
        graph = WaitGraph()
        # 1 -> 2 -> 3; only the edge that closes the triangle cycles.
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        assert not graph.would_cycle(1, 3)   # shortcut edge: still a DAG
        assert not graph.would_cycle(3, 4)   # disjoint holder
        assert graph.would_cycle(3, 1)       # 3 -> 1 -> 2 -> 3

    def test_edge_removal_breaks_the_cycle(self):
        graph = WaitGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        graph.remove_edge(2, 3)
        assert not graph.would_cycle(3, 1)
        # Unknown edges are ignored quietly.
        graph.remove_edge(7, 8)

    def test_parallel_waits_tracked_as_edge_sets(self):
        graph = WaitGraph()
        graph.add_edge(1, 2)
        graph.add_edge(1, 3)
        graph.remove_edge(1, 2)
        # The 1 -> 3 edge must survive its sibling's removal.
        assert graph.would_cycle(3, 1)

    def test_cancel_wait_cleans_edges_for_aborted_waiter(self):
        sim = Simulator()
        graph = WaitGraph()
        table = LockTable(sim, wait_graph=graph)
        # txn 1 holds a and waits on b (held by 2); txn 2 waits on c
        # (held by 3).  txn 3 waiting on a would close a 3-txn cycle.
        table.note_holder("a", 1, ts(1))
        table.note_holder("b", 2, ts(1))
        table.note_holder("c", 3, ts(1))
        fut1 = table.wait_for("b", waiter_txn_id=1)
        table.wait_for("c", waiter_txn_id=2)
        assert graph.would_cycle(3, 1)
        # txn 1 aborts while queued: its wait and its 1 -> 2 edge go.
        table.cancel_wait("b", waiter_txn_id=1)
        assert fut1.error is not None
        assert isinstance(fut1.error, TransactionAbortedError)
        assert table.waiter_count("b") == 0
        # The stale edge no longer fabricates a deadlock: txn 3 may wait.
        assert not graph.would_cycle(3, 1)

        def proc():
            fut = table.wait_for("a", waiter_txn_id=3)
            table.release("a", 1)
            yield fut
            return "ok"

        assert sim.run_process(proc()) == "ok"

    def test_cancel_wait_leaves_other_waiters_queued(self):
        sim = Simulator()
        table = LockTable(sim)
        table.note_holder("k", 1, ts(1))
        table.wait_for("k", waiter_txn_id=2)
        kept = table.wait_for("k", waiter_txn_id=3)
        table.cancel_wait("k", waiter_txn_id=2)
        assert table.waiter_count("k") == 1
        table.release("k", 1)
        assert kept.done and kept.error is None

    def test_cancel_wait_on_idle_key_is_noop(self):
        sim = Simulator()
        table = LockTable(sim)
        table.cancel_wait("ghost", waiter_txn_id=1)
        assert table.waiter_count("ghost") == 0
