"""Replicate-queue tests: planning priorities, end-to-end self-healing,
and the repair chaos scenarios.

Quick single-seed runs are tier 1; the multi-seed repair sweep is
marked ``repair`` and deselected by default (``pytest -m repair``).
"""

import pytest

from repro.chaos import run_scenario
from repro.cluster import LivenessStatus, StoreLiveness
from repro.placement import (
    RepairActionKind,
    ReplicateQueue,
    SurvivalGoal,
    placement_violations,
    zone_config_for_home,
)

from .kv_util import REGIONS3, KVTestBed

REPAIR_SCENARIOS = ("kill-node-repair", "region-loss-repair")


def make_repair_bed():
    bed = KVTestBed(regions=REGIONS3, goal=SurvivalGoal.REGION, seed=0)
    rng = bed.make_range(REGIONS3[0])
    for i in range(3):
        bed.do_write(REGIONS3[0], rng, f"k{i}", i)
    liveness = StoreLiveness(bed.cluster, heartbeat_interval_ms=100.0,
                             suspect_after_ms=300.0,
                             time_until_store_dead_ms=600.0)
    queue = ReplicateQueue(bed.cluster, liveness, interval_ms=200.0)
    config = zone_config_for_home(REGIONS3[0], bed.cluster.regions(),
                                  SurvivalGoal.REGION)
    queue.manage(rng, config)
    return bed, rng, config, queue


class TestPlanning:
    def test_healthy_range_plans_nothing(self):
        bed, rng, config, queue = make_repair_bed()
        queue.start()
        bed.sim.run(until=bed.sim.now + 500.0)
        assert queue.plan(rng, config) == []
        assert placement_violations(rng, config, bed.cluster,
                                    queue.liveness) == []

    def test_dead_voter_planned_before_cosmetics(self):
        # Liveness only — the scan loop stays off so the plan can be
        # inspected before any repair fires.
        bed, rng, config, queue = make_repair_bed()
        queue.liveness.start()
        bed.sim.run(until=bed.sim.now + 500.0)
        victim = next(p.node.node_id for p in rng.group.voters()
                      if p.node.node_id != rng.leaseholder_node_id)
        bed.cluster.crash_node(victim)
        bed.sim.run(until=bed.sim.now + 1000.0)  # past store-dead
        assert queue.liveness.aggregate_status(victim) == \
            LivenessStatus.DEAD
        actions = queue.plan(rng, config)
        assert actions, "dead voter must be planned for replacement"
        assert actions[0].kind == RepairActionKind.REPLACE_DEAD_VOTER
        assert actions[0].node_id == victim

    def test_suspect_leaseholder_plans_lease_transfer_first(self):
        bed, rng, config, queue = make_repair_bed()
        queue.liveness.start()
        bed.sim.run(until=bed.sim.now + 500.0)
        bed.cluster.crash_node(rng.leaseholder_node_id)
        # Long enough to be SUSPECT, not yet DEAD.
        bed.sim.run(until=bed.sim.now + 400.0)
        actions = queue.plan(rng, config)
        assert actions
        assert actions[0].kind == RepairActionKind.TRANSFER_LEASE


class TestEndToEndRepair:
    def test_dead_voter_replaced_automatically(self):
        bed, rng, config, queue = make_repair_bed()
        queue.start()
        bed.sim.run(until=bed.sim.now + 500.0)
        victim = next(p.node.node_id for p in rng.group.voters()
                      if p.node.node_id != rng.leaseholder_node_id)
        bed.cluster.crash_node(victim)
        # time_until_store_dead (600ms) + a few scan intervals + the
        # snapshot/catch-up pipeline.
        bed.sim.run(until=bed.sim.now + 2500.0)
        assert victim not in rng.group.peers
        assert len(rng.group.voters()) == config.num_voters
        assert all(not bed.cluster.network.node_is_dead(p.node.node_id)
                   for p in rng.group.voters())
        assert placement_violations(rng, config, bed.cluster,
                                    queue.liveness) == []
        assert queue.metrics.actions.get(
            RepairActionKind.REPLACE_DEAD_VOTER, 0) >= 1
        assert rng.group.config_guard.max_inflight == 1
        # Data survived onto the replacement placement.
        value, _ = bed.do_read(REGIONS3[0], rng, "k1")
        assert value == 1

    def test_under_replicated_gauge_rises_and_clears(self):
        # Drive scans by hand so the gauge can be observed at the exact
        # moment the store turns DEAD, before the repair lands.
        bed, rng, config, queue = make_repair_bed()
        queue.liveness.start()
        bed.sim.run(until=bed.sim.now + 500.0)
        victim = next(p.node.node_id for p in rng.group.voters()
                      if p.node.node_id != rng.leaseholder_node_id)
        bed.cluster.crash_node(victim)
        bed.sim.run(until=bed.sim.now + 1000.0)  # past store-dead
        assert queue.scan() >= 1  # repair chain spawned
        assert queue.metrics.under_replicated_ranges == 1
        bed.sim.run(until=bed.sim.now + 2500.0)  # let the repair land
        queue.scan()
        assert queue.metrics.under_replicated_ranges == 0
        assert queue.metrics.time_to_repair_ms

    def test_returning_node_does_not_duplicate_replicas(self):
        bed, rng, config, queue = make_repair_bed()
        queue.start()
        bed.sim.run(until=bed.sim.now + 500.0)
        victim = next(p.node.node_id for p in rng.group.voters()
                      if p.node.node_id != rng.leaseholder_node_id)
        bed.cluster.crash_node(victim)
        bed.sim.run(until=bed.sim.now + 2500.0)  # repair completes
        bed.cluster.restart_node(victim)
        bed.sim.run(until=bed.sim.now + 1500.0)
        # The revenant store holds no replica slot anymore and the
        # placement stays exactly at target.
        assert victim not in rng.group.peers
        assert len(rng.group.voters()) == config.num_voters
        assert placement_violations(rng, config, bed.cluster,
                                    queue.liveness) == []


class TestRepairScenarios:
    def test_kill_node_repair_heals_and_keeps_invariants(self):
        result = run_scenario("kill-node-repair", seed=0)
        assert result.ok, result.report.render()
        assert result.stats["repair_actions"] >= 1
        assert result.stats["under_replicated"] == 0
        assert result.stats["max_inflight_changes"] == 1
        assert result.stats["liveness_transitions"] >= 2  # suspect, dead
        assert any("placement" in c for c in result.report.checks_run)

    def test_region_loss_repair_restores_full_replication(self):
        result = run_scenario("region-loss-repair", seed=0)
        assert result.ok, result.report.render()
        # Two of the five voters lived in the lost region.
        harness = result.harness
        actions = harness.repair_queue.metrics.actions
        assert actions.get(RepairActionKind.REPLACE_DEAD_VOTER, 0) >= 2
        assert result.stats["under_replicated"] == 0
        # Healed within time_until_store_dead + a few repair intervals
        # (the acceptance bound, with slack for the snapshot pipeline).
        budget = (harness.repair_queue.interval_ms * 4
                  + harness.liveness.time_until_store_dead_ms)
        assert result.stats["time_to_repair_ms"] <= budget

    def test_repair_scenario_reports_are_deterministic(self):
        first = run_scenario("kill-node-repair", seed=2)
        second = run_scenario("kill-node-repair", seed=2)
        assert first.to_json() == second.to_json()
        # The observability spine is part of the determinism contract:
        # same seed must yield byte-identical metrics snapshots and
        # trace trees (span IDs included).
        obs_a = first.harness.sim.obs
        obs_b = second.harness.sim.obs
        assert obs_a.registry.to_json() == obs_b.registry.to_json()
        assert obs_a.tracer.to_json() == obs_b.tracer.to_json()
        ids_a = [s.span_id for s in obs_a.tracer.spans()]
        ids_b = [s.span_id for s in obs_b.tracer.spans()]
        assert ids_a == ids_b


@pytest.mark.repair
@pytest.mark.parametrize("name", REPAIR_SCENARIOS)
@pytest.mark.parametrize("seed", range(5))
def test_repair_sweep(name, seed):
    """Multi-seed self-healing sweep (the PR's acceptance bar)."""
    result = run_scenario(name, seed)
    assert result.ok, f"{name} seed={seed}\n{result.report.render()}"
    assert result.stats["repair_actions"] >= 1
    assert result.stats["max_inflight_changes"] == 1
