"""Unit tests for KV-layer pieces: policies, routing, replicas, ranges."""

import pytest

from repro.errors import FollowerReadNotAvailableError, RangeUnavailableError
from repro.kv.closedts import (
    DEFAULT_CLOSED_TS_LAG_MS,
    LagPolicy,
    LeadPolicy,
)
from repro.kv.commands import (
    PutIntentCommand,
    ResolveIntentCommand,
    SetTxnRecordCommand,
    TxnStatus,
)
from repro.sim.clock import Timestamp

from .kv_util import KVTestBed, REGIONS3, REGIONS5


def ts(physical, logical=0, synthetic=False):
    return Timestamp(physical, logical, synthetic)


class TestClosedTsPolicies:
    def test_lag_policy_targets_past(self):
        policy = LagPolicy(lag_ms=3000.0)
        target = policy.target(ts(10_000.0))
        assert target == ts(7000.0)
        assert not policy.leads
        assert not target.synthetic

    def test_default_lag_matches_crdb(self):
        assert LagPolicy().lag_ms == DEFAULT_CLOSED_TS_LAG_MS == 3000.0

    def test_lead_policy_targets_future_synthetic(self):
        policy = LeadPolicy(lead_ms=500.0)
        target = policy.target(ts(1000.0))
        assert target.physical == 1500.0
        assert target.synthetic
        assert policy.leads

    def test_for_range_formula(self):
        policy = LeadPolicy.for_range(
            raft_latency_ms=5.0, replicate_latency_ms=100.0,
            max_clock_offset=250.0, side_transport_interval_ms=200.0,
            skew_allowance_ms=10.0, slack_ms=5.0)
        assert policy.lead_ms == 5.0 + 100.0 + 250.0 + 200.0 + 10.0 + 5.0


class TestDistSenderRouting:
    def test_nearest_replica_prefers_same_region(self):
        bed = KVTestBed(regions=REGIONS5)
        rng = bed.make_range("us-east1")
        for region in REGIONS5:
            gateway = bed.gateway(region)
            replica = bed.ds.nearest_replica(gateway, rng)
            assert replica.node.locality.region == region

    def test_nearest_replica_skips_dead_nodes(self):
        bed = KVTestBed(regions=REGIONS3)
        rng = bed.make_range("us-east1")
        gateway = bed.gateway("europe-west2")
        local = bed.ds.nearest_replica(gateway, rng)
        bed.cluster.network.kill_node(local.node.node_id)
        fallback = bed.ds.nearest_replica(gateway, rng)
        assert fallback.node.node_id != local.node.node_id

    def test_no_live_replicas_raises(self):
        bed = KVTestBed(regions=REGIONS3)
        rng = bed.make_range("us-east1")
        for replica in rng.replicas.values():
            bed.cluster.network.kill_node(replica.node.node_id)
        with pytest.raises(FollowerReadNotAvailableError):
            bed.ds.nearest_replica(bed.gateway("us-east1"), rng)


class TestReplica:
    def test_apply_unknown_command_raises(self):
        bed = KVTestBed(regions=REGIONS3)
        rng = bed.make_range("us-east1")
        replica = rng.leaseholder_replica
        with pytest.raises(TypeError):
            replica.apply(("weird",))

    def test_apply_commands_roundtrip(self):
        bed = KVTestBed(regions=REGIONS3)
        rng = bed.make_range("us-east1")
        replica = rng.leaseholder_replica
        replica.apply(PutIntentCommand(key="k", ts=ts(5), value="v",
                                       txn_id=1, anchor_node_id=1))
        assert replica.store.intent_for("k") is not None
        replica.apply(SetTxnRecordCommand(txn_id=1,
                                          status=TxnStatus.COMMITTED,
                                          commit_ts=ts(5)))
        assert replica.txn_records[1].status == TxnStatus.COMMITTED
        replica.apply(ResolveIntentCommand(key="k", txn_id=1,
                                           commit_ts=ts(5)))
        assert replica.store.intent_for("k") is None
        assert replica.store.get("k", ts(6)).value == "v"

    def test_follower_cannot_serve_above_closed(self):
        bed = KVTestBed(regions=REGIONS3)
        rng = bed.make_range("us-east1")
        bed.settle(500.0)
        follower = [r for r in rng.replicas.values()
                    if not r.is_leaseholder][0]
        future_ts = Timestamp(bed.sim.now + 60_000.0)
        with pytest.raises(FollowerReadNotAvailableError):
            follower.follower_read("k", future_ts)

    def test_max_servable_ts_considers_intents(self):
        bed = KVTestBed(regions=REGIONS3)
        rng = bed.make_range("us-east1")
        bed.settle(5000.0)
        follower = [r for r in rng.replicas.values()
                    if not r.is_leaseholder][0]
        closed = follower.closed_ts
        assert follower.max_servable_ts("k") == closed
        # An intent below the closed timestamp caps servability.
        intent_ts = Timestamp(closed.physical - 1.0)
        follower.store.put_intent("k", intent_ts, "v", txn_id=9)
        assert follower.max_servable_ts("k") < intent_ts


class TestRangeHelpers:
    def test_latency_estimates_zone_survival(self):
        bed = KVTestBed(regions=REGIONS5)
        rng = bed.make_range("us-east1")
        # Quorum is intra-region: ~1 ms RTT + disk.
        assert rng.raft_latency_ms() < 5.0
        # Furthest member is australia: 198/2 = 99 ms one way.
        assert rng.replicate_latency_ms() == pytest.approx(99.0)

    def test_latency_estimates_region_survival(self):
        bed = KVTestBed(regions=REGIONS5, goal="region")
        rng = bed.make_range("us-east1")
        # Quorum (3 of 5) needs at least one other region: >= 63/..RTT.
        assert rng.raft_latency_ms() >= 60.0

    def test_no_leaseholder_raises(self):
        from repro.kv.range import Range
        bed = KVTestBed(regions=REGIONS3)
        rng = Range(bed.cluster)
        with pytest.raises(RangeUnavailableError):
            _ = rng.leaseholder_replica

    def test_closed_target_monotone(self):
        bed = KVTestBed(regions=REGIONS3)
        rng = bed.make_range("us-east1", global_reads=True)
        first = rng.closed_target()
        rng._note_closed(first)
        bed.settle(1.0)
        assert rng.closed_target() >= first

    def test_destroyed_range_stops_side_transport(self):
        bed = KVTestBed(regions=REGIONS3)
        rng = bed.make_range("us-east1")
        rng.destroy()
        bed.settle(1000.0)  # transport loop must exit without error


class TestTxnRegistryStatus:
    def test_unknown_txn(self):
        bed = KVTestBed(regions=REGIONS3)
        assert bed.cluster.txn_status(424242) is None

    def test_lifecycle(self):
        bed = KVTestBed(regions=REGIONS3)
        rng = bed.make_range("us-east1")
        txn = bed.coord.begin(bed.gateway("us-east1"))
        assert bed.cluster.txn_status(txn.txn_id) == (False, None)

        def run():
            yield from txn.write(rng, "k", "v")
            commit_ts = yield from txn.commit()
            return commit_ts

        process = bed.sim.spawn(run())
        commit_ts = bed.sim.run_until_future(process)
        final, recorded_ts = bed.cluster.txn_status(txn.txn_id)
        assert final
        assert recorded_ts == commit_ts
