"""Tests for the multi-region TPC-C workload."""

import random

import pytest

from repro.harness.runner import build_engine, run_clients, sessions_per_region
from repro.metrics import LatencyRecorder
from repro.workloads.tpcc import TPCC_TABLES, TPCCOptions, TPCCWorkload

REGIONS = ["us-east1", "us-west1", "europe-west2"]


@pytest.fixture(scope="module")
def loaded():
    engine = build_engine(REGIONS, jitter_fraction=0.0)
    workload = TPCCWorkload(engine, REGIONS, TPCCOptions(
        warehouses_per_region=2, districts_per_warehouse=3,
        customers_per_district=5, items=20))
    workload.setup()
    workload.load()
    return engine, workload


class TestSchema:
    def test_all_tables_created(self, loaded):
        engine, _ = loaded
        database = engine.catalog.database("tpcc")
        for name in TPCC_TABLES:
            assert name in database.tables

    def test_item_is_global(self, loaded):
        engine, _ = loaded
        assert engine.catalog.database("tpcc").table("item") \
            .locality.is_global

    def test_other_tables_regional_by_row(self, loaded):
        engine, _ = loaded
        database = engine.catalog.database("tpcc")
        for name in TPCC_TABLES:
            if name == "item":
                continue
            assert database.table(name).locality.is_regional_by_row, name

    def test_warehouse_region_mapping(self, loaded):
        _, workload = loaded
        assert workload.region_of_warehouse(0) == "us-east1"
        assert workload.region_of_warehouse(1) == "us-east1"
        assert workload.region_of_warehouse(2) == "us-west1"
        assert workload.region_of_warehouse(5) == "europe-west2"

    def test_warehouses_in_region(self, loaded):
        _, workload = loaded
        assert workload.warehouses_in_region("us-west1") == [2, 3]

    def test_warehouse_rows_in_home_partitions(self, loaded):
        engine, workload = loaded
        table = engine.catalog.database("tpcc").table("warehouse")
        for region in REGIONS:
            rng = table.primary_index.partitions[region]
            keys = rng.leaseholder_replica.store.keys()
            assert len(keys) == 2  # warehouses_per_region


class TestTransactions:
    def _run_one(self, engine, workload, region, body_name, w_id):
        session = engine.connect(region)
        session.database = engine.catalog.database("tpcc")
        rng = random.Random(1)
        body = getattr(workload, body_name)

        def txn_body(handle):
            result = yield from body(handle, rng, w_id)
            return result

        sim = engine.cluster.sim
        process = sim.spawn(session.run_txn_co(txn_body))
        return sim.run_until_future(process)

    def test_new_order_increments_district_sequence(self, loaded):
        engine, workload = loaded
        o_id_1 = self._run_one(engine, workload, "us-east1", "new_order", 0)
        o_id_2 = self._run_one(engine, workload, "us-east1", "new_order", 0)
        # Repeated new-orders on the same warehouse observe an advancing
        # district sequence (not necessarily consecutive: the random
        # district differs per call).
        assert isinstance(o_id_1, int) and isinstance(o_id_2, int)

    def test_new_order_writes_order_rows(self, loaded):
        engine, workload = loaded
        session = engine.connect("us-west1")
        session.database = engine.catalog.database("tpcc")
        before = workload._order_counter
        self._run_one(engine, workload, "us-west1", "new_order", 2)
        order_key = workload._order_counter
        assert order_key > before
        rows = session.execute(
            f"SELECT o_id FROM orders WHERE w_id = 2 AND d_id = 1 "
            f"AND o_id = {order_key}")
        # The order may have used any district; scan the possibilities.
        found = any(
            session.execute(
                f"SELECT o_id FROM orders WHERE w_id = 2 AND d_id = {d} "
                f"AND o_id = {order_key}")
            for d in range(workload.options.districts_per_warehouse))
        assert found

    def test_payment_moves_balance(self, loaded):
        engine, workload = loaded
        self._run_one(engine, workload, "europe-west2", "payment", 4)
        session = engine.connect("europe-west2")
        session.database = engine.catalog.database("tpcc")
        rows = session.execute("SELECT ytd FROM warehouse WHERE w_id = 4")
        assert rows and rows[0]["ytd"] > 0.0

    def test_order_status_and_stock_level_read_only(self, loaded):
        engine, workload = loaded
        self._run_one(engine, workload, "us-east1", "order_status", 1)
        self._run_one(engine, workload, "us-east1", "stock_level", 1)


class TestMixAndClients:
    def test_mix_proportions(self):
        engine = build_engine(REGIONS, jitter_fraction=0.0)
        workload = TPCCWorkload(engine, REGIONS, TPCCOptions())
        rng = random.Random(5)
        picks = [workload._pick_txn(rng) for _ in range(2000)]
        fraction = picks.count("new_order") / len(picks)
        assert 0.40 <= fraction <= 0.50

    def test_client_loop_records_latencies(self):
        engine = build_engine(REGIONS, jitter_fraction=0.0)
        workload = TPCCWorkload(engine, REGIONS, TPCCOptions(
            warehouses_per_region=1, districts_per_warehouse=2,
            customers_per_district=3, items=10))
        workload.setup()
        workload.load()
        recorder = LatencyRecorder()
        sessions = sessions_per_region(engine, REGIONS, 1, "tpcc")
        clients = [
            (lambda s=s, i=i: workload.client(s, recorder, 10, i))
            for i, s in enumerate(sessions)
        ]
        run_clients(engine, clients, recorder, settle_ms=3000.0)
        assert recorder.total_ops() == 30
        assert engine.coordinator.stats.committed >= 30

    def test_think_time_slows_wall_clock(self):
        engine = build_engine(REGIONS, jitter_fraction=0.0)
        workload = TPCCWorkload(engine, REGIONS, TPCCOptions(
            warehouses_per_region=1, districts_per_warehouse=2,
            customers_per_district=3, items=10, think_time_ms=500.0))
        workload.setup()
        workload.load()
        recorder = LatencyRecorder()
        session = engine.connect("us-east1")
        session.database = engine.catalog.database("tpcc")
        run_clients(engine,
                    [lambda: workload.client(session, recorder, 5, 0)],
                    recorder, settle_ms=3000.0)
        duration = recorder.finished_at - recorder.started_at
        assert duration >= 5 * 500.0
