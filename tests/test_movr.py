"""Tests for the movr schema module (§1.1, §7.5)."""

import pytest

from repro.harness.runner import build_engine
from repro.workloads import movr

REGIONS = ["us-east1", "us-west1", "europe-west2"]


class TestDDLGeneration:
    def test_new_schema_statement_count(self):
        statements = movr.new_multi_region_schema_ddl(REGIONS)
        # 1 CREATE DATABASE + 6 CREATE TABLE (computed columns folded in).
        assert len(statements) == 7

    def test_convert_statement_count_matches_paper(self):
        # Paper Table 2: converting movr to 3 regions takes 14 statements.
        assert len(movr.convert_single_region_ddl(REGIONS)) == 14

    def test_add_drop_single_statement(self):
        assert len(movr.add_region_ddl("asia-northeast1")) == 1
        assert len(movr.drop_region_ddl("asia-northeast1")) == 1

    def test_city_region_case_routes_cities(self):
        case = movr.city_region_case(REGIONS)
        assert "paris" in case
        assert "us-west1" in case

    def test_single_region_schema_has_all_tables(self):
        statements = movr.single_region_schema_ddl()
        for table in movr.MOVR_TABLES:
            assert any(table in s for s in statements)


class TestExecutedFlows:
    def test_new_schema_executes(self):
        engine = build_engine(REGIONS, jitter_fraction=0.0)
        session = engine.connect(REGIONS[0])
        for statement in movr.new_multi_region_schema_ddl(REGIONS):
            session.execute(statement)
        database = engine.catalog.database("movr")
        assert set(database.tables) == set(movr.MOVR_TABLES)
        assert database.table("promo_codes").locality.is_global
        for name in movr.MOVR_TABLES[:-1]:
            assert database.table(name).locality.is_regional_by_row, name

    def test_conversion_preserves_rows_and_homes_by_city(self):
        engine = build_engine(REGIONS, jitter_fraction=0.0)
        session = engine.connect(REGIONS[0])
        for statement in movr.single_region_schema_ddl():
            session.execute(statement)
        session.execute(
            "INSERT INTO users (id, city, name) VALUES "
            "(1, 'new york', 'NY'), (2, 'seattle', 'SEA'), "
            "(3, 'rome', 'RM')")
        for statement in movr.convert_single_region_ddl(REGIONS):
            session.execute(statement)
        homes = {}
        for user_id in (1, 2, 3):
            rows = session.execute(
                f"SELECT crdb_region FROM users WHERE id = {user_id}")
            homes[user_id] = rows[0]["crdb_region"]
        assert homes == {1: "us-east1", 2: "us-west1", 3: "europe-west2"}

    def test_conversion_keeps_app_queries_working(self):
        engine = build_engine(REGIONS, jitter_fraction=0.0)
        session = engine.connect(REGIONS[0])
        for statement in movr.single_region_schema_ddl():
            session.execute(statement)
        session.execute("INSERT INTO vehicles (id, city, type, owner_id) "
                        "VALUES (10, 'paris', 'bike', 3)")
        for statement in movr.convert_single_region_ddl(REGIONS):
            session.execute(statement)
        # The exact same application query, unchanged (Fig 1c).
        rows = session.execute("SELECT type FROM vehicles WHERE id = 10")
        assert rows == [{"type": "bike"}]
