#!/usr/bin/env python
"""Quickstart: a multi-region database in a few statements (paper §2).

Builds a simulated 3-region cluster, creates the movr-style database
with one declarative statement per concept, and shows the latency
behaviour each table locality buys you.

Run:  python examples/quickstart.py
"""

from repro.cluster import standard_cluster
from repro.sql import Engine


def main() -> None:
    # A 9-node cluster: 3 regions x 3 zones, Table 1 RTTs.
    cluster = standard_cluster(
        ["us-east1", "us-west1", "europe-west2"],
        nodes_per_region=3, jitter_fraction=0.0, skew_fraction=0.05)
    engine = Engine(cluster)
    sim = cluster.sim

    # -- declarative multi-region DDL (paper §2) ---------------------------
    session = engine.connect("us-east1")
    session.execute("""
        CREATE DATABASE movr PRIMARY REGION "us-east1"
            REGIONS "us-west1", "europe-west2";
        CREATE TABLE users (
            id int PRIMARY KEY,
            email string UNIQUE,
            name string
        ) LOCALITY REGIONAL BY ROW;
        CREATE TABLE promo_codes (
            code string PRIMARY KEY,
            description string
        ) LOCALITY GLOBAL;
    """)
    print("regions:", session.execute("SHOW REGIONS FROM DATABASE movr"))

    # -- REGIONAL BY ROW: rows live where they are written ------------------
    session.execute(
        "INSERT INTO users (id, email, name) VALUES (1, 'sam@x', 'Sam')")
    west = engine.connect("us-west1")
    west.execute("USE movr")
    west.execute(
        "INSERT INTO users (id, email, name) VALUES (2, 'ana@x', 'Ana')")

    for client, region in ((session, "us-east1"), (west, "us-west1")):
        start = sim.now
        rows = client.execute("SELECT name FROM users WHERE id = 1")
        print(f"read user 1 from {region:10s}: {rows[0]['name']:4s} "
              f"in {sim.now - start:6.1f} ms")

    # The hidden crdb_region column records each row's home (§2.3.2).
    for user_id in (1, 2):
        rows = session.execute(
            f"SELECT crdb_region FROM users WHERE id = {user_id}")
        print(f"user {user_id} homed in {rows[0]['crdb_region']}")

    # Global uniqueness holds even though email is not the partition key.
    try:
        west.execute(
            "INSERT INTO users (id, email, name) VALUES (3, 'sam@x', 'S2')")
    except Exception as err:
        print("duplicate email rejected across regions:", err)

    # -- GLOBAL: slow writes, fast strongly-consistent reads anywhere -------
    start = sim.now
    session.execute("INSERT INTO promo_codes (code, description) "
                    "VALUES ('SUMMER', '10% off')")
    print(f"\nGLOBAL write took {sim.now - start:6.1f} ms (commit wait)")

    sim.run(until=sim.now + 1000.0)  # let closed timestamps settle
    for region in ("us-east1", "us-west1", "europe-west2"):
        client = engine.connect(region)
        client.execute("USE movr")
        start = sim.now
        rows = client.execute(
            "SELECT description FROM promo_codes WHERE code = 'SUMMER'")
        print(f"GLOBAL read from {region:13s}: {rows[0]['description']:8s} "
              f"in {sim.now - start:5.1f} ms")

    # -- stale reads: fast everywhere without GLOBAL write costs (§5.3) -----
    sim.run(until=sim.now + 5000.0)
    europe = engine.connect("europe-west2")
    europe.execute("USE movr")
    start = sim.now
    rows = europe.execute(
        "SELECT name FROM users AS OF SYSTEM TIME "
        "with_max_staleness('30s') WHERE id = 1")
    print(f"\nstale read from europe-west2: {rows[0]['name']} "
          f"in {sim.now - start:5.1f} ms")


if __name__ == "__main__":
    main()
