#!/usr/bin/env python
"""Survivability goals in action (paper §2.2, §3.3).

Creates the same database under ZONE and then REGION survivability,
kills an entire region, and shows what each goal buys:

* ZONE survivability keeps quorums region-local (fast writes) but a
  whole-region outage makes that region's data unavailable for fresh
  reads/writes (stale reads elsewhere still work);
* REGION survivability spreads 5 voters (2 in the home region) so the
  database keeps serving fresh traffic through the outage, at the cost
  of cross-region write latency.

Run:  python examples/surviving_region_failure.py
"""

from repro.harness.runner import build_engine

REGIONS = ["us-east1", "us-west1", "europe-west2"]


def build(goal: str):
    engine = build_engine(REGIONS, jitter_fraction=0.0)
    session = engine.connect("us-east1")
    session.execute(
        'CREATE DATABASE bank PRIMARY REGION "us-east1" '
        'REGIONS "us-west1", "europe-west2"')
    if goal == "region":
        session.execute("ALTER DATABASE bank SURVIVE REGION FAILURE")
    session.execute("CREATE TABLE accounts (id int PRIMARY KEY, "
                    "balance int) LOCALITY REGIONAL BY ROW")
    session.execute("INSERT INTO accounts (id, balance) VALUES (1, 100)")
    return engine, session


def kill_region(engine, region):
    for node in engine.cluster.nodes_in_region(region):
        engine.cluster.network.kill_node(node.node_id)


def main() -> None:
    for goal in ("zone", "region"):
        print(f"\n=== SURVIVE {goal.upper()} FAILURE ===")
        engine, session = build(goal)
        sim = engine.cluster.sim

        start = sim.now
        session.execute("UPDATE accounts SET balance = 150 WHERE id = 1")
        print(f"write before outage: {sim.now - start:6.1f} ms "
              f"({'local quorum' if goal == 'zone' else 'cross-region quorum'})")

        table = engine.catalog.database("bank").table("accounts")
        partitions = [index.partitions["us-east1"]
                      for index in table.indexes]
        # Let replication and closed timestamps settle well past the
        # staleness bound used below.
        sim.run(until=sim.now + 8000.0)
        kill_region(engine, "us-east1")
        print("us-east1 is down.")

        survives = all(rng.group.has_quorum() for rng in partitions)
        print(f"us-east1 partition keeps quorum: {survives}")

        if survives:
            for rng in partitions:
                survivor = [v for v in rng.group.voters()
                            if not engine.cluster.network.node_is_dead(
                                v.node.node_id)][0]
                rng.transfer_lease(survivor.node.node_id)
            west = engine.connect("us-west1")
            west.execute("USE bank")
            start = sim.now
            rows = west.execute("SELECT balance FROM accounts WHERE id = 1")
            print(f"fresh read after failover: balance="
                  f"{rows[0]['balance']} in {sim.now - start:.1f} ms")
        else:
            west = engine.connect("us-west1")
            west.execute("USE bank")
            rows = west.execute(
                "SELECT balance FROM accounts AS OF SYSTEM TIME '-5s' "
                "WHERE id = 1 AND crdb_region = 'us-east1'")
            print(f"fresh traffic unavailable; stale read still works: "
                  f"balance={rows[0]['balance']}")


if __name__ == "__main__":
    main()
