#!/usr/bin/env python
"""movr: converting a single-region application to multi-region (§7.5.1).

Walks the paper's ease-of-use story end to end:

1. stand up the classic single-region movr schema;
2. convert it to 3 regions with the declarative DDL (counting the
   statements, as Table 2 does);
3. run a few application operations and show they kept working with no
   DML changes;
4. add and drop a region with one statement each.

Run:  python examples/movr_multi_region.py
"""

from repro.baselines import legacy_convert_ddl
from repro.harness.experiments.tables import _movr_legacy_schema
from repro.harness.runner import build_engine
from repro.workloads import movr


def main() -> None:
    regions = ["us-east1", "us-west1", "europe-west2"]
    engine = build_engine(regions + ["asia-northeast1"],
                          jitter_fraction=0.0)
    session = engine.connect("us-east1")

    # 1. The single-region application (Fig 1a).
    for statement in movr.single_region_schema_ddl():
        session.execute(statement)
    session.execute(
        "INSERT INTO users (id, city, name) "
        "VALUES (1, 'new york', 'Carl'), (2, 'seattle', 'Dana'), "
        "(3, 'paris', 'Elle')")
    session.execute("INSERT INTO promo_codes (code, description) "
                    "VALUES ('FIRST_RIDE', 'free ride')")
    print("single-region movr loaded")

    # 2. Convert to multi-region (Fig 1c): count the statements.
    conversion = movr.convert_single_region_ddl(regions)
    session.ddl_statement_count = 0
    for statement in conversion:
        session.execute(statement)
    print(f"\nconverted to 3 regions with "
          f"{session.ddl_statement_count} DDL statements "
          f"(paper: 14; legacy recipe would take "
          f"{len(legacy_convert_ddl(_movr_legacy_schema(), regions))})")

    # 3. The application's DML is untouched — and rows are now homed by
    #    city through the computed region column.
    for user_id, city in ((1, "new york"), (2, "seattle"), (3, "paris")):
        rows = session.execute(
            f"SELECT crdb_region FROM users WHERE id = {user_id}")
        print(f"user {user_id} ({city:9s}) homed in "
              f"{rows[0]['crdb_region']}")

    sim = engine.cluster.sim
    paris_client = engine.connect("europe-west2")
    paris_client.execute("USE movr")
    start = sim.now
    rows = paris_client.execute(
        "SELECT name FROM users WHERE id = 3 AND city = 'paris'")
    print(f"\nparis client reads its local user in "
          f"{sim.now - start:.1f} ms: {rows[0]['name']}")

    sim.run(until=sim.now + 2000.0)
    start = sim.now
    rows = paris_client.execute(
        "SELECT description FROM promo_codes WHERE code = 'FIRST_RIDE'")
    print(f"paris client reads GLOBAL promo_codes in "
          f"{sim.now - start:.1f} ms: {rows[0]['description']}")

    # 4. Region management is one statement each (§2.4.1).
    session.ddl_statement_count = 0
    session.execute('ALTER DATABASE movr ADD REGION "asia-northeast1"')
    print(f"\nadded a region with {session.ddl_statement_count} statement")
    session.ddl_statement_count = 0
    session.execute('ALTER DATABASE movr DROP REGION "asia-northeast1"')
    print(f"dropped it again with {session.ddl_statement_count} statement")
    print("regions now:", session.execute("SHOW REGIONS FROM DATABASE movr"))


if __name__ == "__main__":
    main()
