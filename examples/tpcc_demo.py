#!/usr/bin/env python
"""Multi-region TPC-C in miniature (paper §7.4).

Deploys the paper's TPC-C adaptation — ``item`` GLOBAL, everything else
REGIONAL BY ROW with the region computed from the warehouse id — across
three regions, runs the transaction mix from terminals in every region,
and prints per-region latency summaries.

Run:  python examples/tpcc_demo.py
"""

from repro.harness.runner import build_engine, run_clients, sessions_per_region
from repro.metrics import LatencyRecorder, ResultTable
from repro.workloads.tpcc import TPCCOptions, TPCCWorkload

REGIONS = ["us-east1", "europe-west2", "asia-northeast1"]


def main() -> None:
    engine = build_engine(REGIONS)
    options = TPCCOptions(warehouses_per_region=2,
                          districts_per_warehouse=5,
                          customers_per_district=10, items=50)
    workload = TPCCWorkload(engine, REGIONS, options)
    workload.setup()
    workload.load()
    print(f"loaded {options.warehouses_per_region * len(REGIONS)} "
          f"warehouses across {len(REGIONS)} regions "
          f"({len(workload.schema_ddl())} DDL statements)")

    recorder = LatencyRecorder()
    sessions = sessions_per_region(engine, REGIONS, 2, "tpcc")
    clients = [
        (lambda s=s, i=i: workload.client(s, recorder, 25, i))
        for i, s in enumerate(sessions)
    ]
    run_clients(engine, clients, recorder, settle_ms=4000.0)

    table = ResultTable("TPC-C latency by transaction and region (ms)",
                        ["txn", "region", "count", "p50", "p90"])
    for label in recorder.labels():
        kind, region = label
        summary = recorder.summary(*label)
        table.add_row(kind, region, summary.count, summary.p50, summary.p90)
    table.print()

    duration_min = (recorder.finished_at - recorder.started_at) / 60_000.0
    print(f"\nnew-order throughput: "
          f"{recorder.count('new_order') / duration_min:.0f} tpmC "
          f"across {options.warehouses_per_region * len(REGIONS)} warehouses")
    stats = engine.coordinator.stats
    print(f"transactions committed: {stats.committed}, "
          f"retries: {stats.aborted_retries}, "
          f"uncertainty restarts: {stats.uncertainty_restarts}")


if __name__ == "__main__":
    main()
