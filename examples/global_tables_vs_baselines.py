#!/usr/bin/env python
"""GLOBAL tables vs the duplicate-indexes baseline (paper §6, §7.3).

Reproduces the headline tail-latency comparison at miniature scale:
strongly-consistent reads from every region are fast for both designs
in the common case, but under read/write contention duplicate indexes
block readers on WAN transactions while GLOBAL tables bound the wait by
``max_clock_offset``.

Run:  python examples/global_tables_vs_baselines.py
"""

import random

from repro.baselines import DuplicateIndexTable
from repro.sql import ast
from repro.harness.runner import build_engine
from repro.metrics import Summary
from repro.sim.clock import Timestamp
from repro.sim.network import TABLE1_REGIONS


def run_contended_reads(kind: str, n_rounds: int = 12) -> Summary:
    """Writers hammer one key from the primary region while every other
    region reads it; returns the distribution of read latencies."""
    regions = list(TABLE1_REGIONS)
    engine = build_engine(regions, jitter_fraction=0.0)
    cluster = engine.cluster
    sim = cluster.sim

    if kind == "global":
        session = engine.connect(regions[0])
        session.execute(
            f'CREATE DATABASE d PRIMARY REGION "{regions[0]}" REGIONS '
            + ", ".join(f'"{r}"' for r in regions[1:]))
        session.execute("CREATE TABLE t (id int PRIMARY KEY, v string) "
                        "LOCALITY GLOBAL")
        session.execute("INSERT INTO t (id, v) VALUES (1, 'v0')")

        def write(i):
            client = engine.connect(regions[0], index=i % 3)
            client.database = engine.catalog.database("d")
            return client.execute_stmt_co(ast.Update(
                table="t", assignments=[("v", ast.Literal(f"v{i}"))],
                where=_eq("id", 1)))

        def read(region, i):
            client = engine.connect(region, index=i % 3)
            client.database = engine.catalog.database("d")
            return client.execute_stmt_co(ast.Select(
                table="t", columns=["v"], where=_eq("id", 1)))
    else:
        table = DuplicateIndexTable(cluster, engine.coordinator, regions)
        table.bulk_load([((1,), "v0")], Timestamp(-1000.0))

        def write(i):
            gateway = cluster.gateway_for_region(regions[0], i % 3)
            return table.write_co(gateway, (1,), f"v{i}")

        def read(region, i):
            gateway = cluster.gateway_for_region(region, i % 3)
            return table.read_co(gateway, (1,))

    sim.run(until=sim.now + 2000.0)
    latencies = []
    rng = random.Random(7)

    def writer_loop():
        for i in range(n_rounds):
            yield from _drain(write(i))
            yield sim.sleep(rng.uniform(5.0, 40.0))

    def reader_loop(region):
        for i in range(n_rounds):
            start = sim.now
            yield from _drain(read(region, i))
            latencies.append(sim.now - start)
            yield sim.sleep(rng.uniform(5.0, 60.0))

    processes = [sim.spawn(writer_loop())]
    processes += [sim.spawn(reader_loop(r)) for r in regions[1:]]
    for process in processes:
        sim.run_until_future(process)
    return Summary(latencies)


def _drain(gen):
    result = yield from gen
    return result


def _eq(column, value):
    return ast.Comparison("=", ast.ColumnRef(column), ast.Literal(value))


def main() -> None:
    for kind in ("global", "dup_idx"):
        summary = run_contended_reads(kind)
        print(f"{kind:8s} contended reads: p50={summary.p50:7.1f} ms  "
              f"p90={summary.p90:7.1f} ms  max={summary.max:8.1f} ms")
    print("\nGLOBAL read tails stay bounded by max_clock_offset (250 ms "
          "+ blocking slack); duplicate indexes wait on WAN transactions.")


if __name__ == "__main__":
    main()
