"""Transaction coordination: serializable MVCC txns and commit wait."""

from .coordinator import Transaction, TransactionCoordinator, TxnStats

__all__ = ["Transaction", "TransactionCoordinator", "TxnStats"]
