"""Transaction layer: coordinator plus pluggable protocol backends."""

from .coordinator import Transaction, TransactionCoordinator, TxnStats
from .crdb import CrdbProtocol
from .epoch import EpochOccProtocol
from .protocol import PROTOCOL_NAMES, TxnProtocol, resolve_protocol

__all__ = [
    "CrdbProtocol",
    "EpochOccProtocol",
    "PROTOCOL_NAMES",
    "Transaction",
    "TransactionCoordinator",
    "TxnProtocol",
    "TxnStats",
    "resolve_protocol",
]
