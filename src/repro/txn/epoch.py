"""Epoch-based optimistic concurrency control (ROADMAP item 3).

An alternative :class:`~repro.txn.protocol.TxnProtocol` backend in the
style of epoch-based OCC systems (Mao et al.; GeoGauss — see
PAPERS.md): transactions execute *optimistically* at their gateway —
reads fetch the latest committed version and are remembered in a read
set, writes buffer locally and touch no locks — and commit by
submitting to a cluster-wide :class:`EpochService` that batches
submissions into fixed-width epochs.  When an epoch's boundary passes,
the service:

1. **orders** — replicates the epoch's transaction order through Raft
   (:class:`~repro.kv.commands.EpochOrderCommand`) so the decision
   survives coordinator failure;
2. **validates** — serially, in the decided order, re-reads each
   transaction's read set; any key whose latest version changed since
   execution aborts the transaction with a retryable
   :class:`~repro.errors.TransactionValidationError`;
3. **applies** — lays the survivor's writes as intents, picks a commit
   timestamp above every intent timestamp *and* every earlier commit
   (so MVCC version order equals the decided serial order), and
   resolves the intents before acknowledging.

Within an epoch, transactions are partitioned into key-overlap
conflict groups: groups touch disjoint keys, so they commit in
parallel, while each group validates and applies strictly in the
decided order against latest-committed state.  Epochs are barriers
(epoch *n*+1 starts only after every group of epoch *n* finished), so
the committed transactions remain equivalent to their serial execution
in epoch order: conflict-serializable by construction.  The client-visible latency cost is **epoch wait** — the
time from commit submission to acknowledgement (epoch remainder +
ordering Raft round + validation/apply) — the protocol's analog of the
CRDB pipeline's commit wait, exported as ``txn.epoch_wait_ms``.
Future-time commit timestamps (GLOBAL ranges) additionally hold the
acknowledgement until the gateway clock passes them, preserving the
real-time recency guarantee commit wait provides; that wait runs off
the serial path so it never stalls later epochs.

Intents exist only inside the apply window, so lock-table waiters
interoperate with CRDB-protocol transactions sharing the cluster: a
pending epoch transaction is pushed through the same txn-registry
machinery, and mixed-protocol conflicts resolve through the ordinary
wait-or-push path.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..errors import (
    RangeUnavailableError,
    TransactionAbortedError,
    TransactionValidationError,
)
from ..sim.network import NetworkUnavailableError
from ..kv.commands import TxnStatus
from ..kv.distsender import ReadRouting
from ..obs import NOOP_SPAN
from ..sim.clock import TS_MAX, TS_ZERO, Timestamp
from ..sim.core import Future, all_of, settle_all
from .protocol import TxnProtocol

__all__ = ["EpochOccProtocol", "EpochService", "EpochTransaction"]

#: Default epoch width.  Short enough that epoch wait stays well under
#: a WAN commit round trip; long enough that concurrent transactions
#: actually share epochs (the batching the protocol banks on).
DEFAULT_EPOCH_INTERVAL_MS = 25.0

#: Errors that abort an epoch step retryably (the client resubmits into
#: a later epoch).
_EPOCH_RETRYABLE = (NetworkUnavailableError, RangeUnavailableError,
                    TransactionAbortedError)


class _BufferedRead:
    """Recorder-compatible stand-in for a read served from the
    transaction's own write buffer (no MVCC version exists yet)."""

    __slots__ = ("value",)
    ts = None
    from_intent = False

    def __init__(self, value: Any):
        self.value = value


class EpochService:
    """Cluster-wide epoch sequencer: batches commit submissions into
    fixed-width epochs and commits each epoch serially.

    One service per cluster (shared by every epoch-OCC coordinator on
    it, so the decided order covers all of them); created lazily by
    :class:`EpochOccProtocol` on first use and attached to the cluster.
    Epoch boundaries are scheduled on demand — an idle service has no
    ticker process, so simulations still drain.
    """

    def __init__(self, cluster, distsender, interval_ms: float,
                 validate: bool = True):
        self.cluster = cluster
        self.sim = cluster.sim
        self.ds = distsender
        self.interval_ms = float(interval_ms)
        #: The honest-falsification switch: with validation off the
        #: service commits every submission blindly, and the verify
        #: checker must convict the resulting lost updates.
        self.validate = validate
        #: epoch -> [(txn, ack future)] awaiting that epoch's boundary.
        self._pending: Dict[int, List[Tuple["EpochTransaction", Future]]] = {}
        #: Highest epoch whose boundary has passed (sealed).
        self._sealed_through = -1
        #: Sealed, not-yet-committed epochs, drained strictly in order.
        self._queue: deque = deque()
        self._draining = False
        #: High-water commit timestamp: every commit lands above it, so
        #: along any conflict chain (same keys — always one group, in
        #: order) MVCC version order equals the decided serial order.
        self._last_commit_ts: Timestamp = TS_ZERO
        #: Every ordering decision, as decided: [(epoch, (txn_id, ...))].
        self.order_log: List[Tuple[int, Tuple[int, ...]]] = []
        self._seq = 0
        registry = self.sim.obs.registry
        self._c_epochs = registry.counter("txn.epochs_sealed")
        self._c_validation_reads = registry.counter("txn.validation_reads")

    # -- submission ----------------------------------------------------------

    def submit(self, txn: "EpochTransaction") -> Future:
        """Enqueue a finished transaction for its epoch; resolves with
        the commit timestamp, or rejects (validation conflict, fault)."""
        now = self.sim.now
        epoch = int(now // self.interval_ms)
        if epoch <= self._sealed_through:
            epoch = self._sealed_through + 1
        bucket = self._pending.get(epoch)
        if bucket is None:
            bucket = self._pending[epoch] = []
            boundary = (epoch + 1) * self.interval_ms
            self.sim.call_after(max(boundary - now, 0.0), self._seal, epoch)
        ack = Future(self.sim)
        txn.epoch = epoch
        txn.submitted_at_ms = now
        bucket.append((txn, ack))
        return ack

    def _seal(self, epoch: int) -> None:
        if epoch > self._sealed_through:
            self._sealed_through = epoch
        batch = self._pending.pop(epoch, [])
        if not batch:
            return
        self._c_epochs.inc()
        self._queue.append((epoch, batch))
        if not self._draining:
            self._draining = True
            self.sim.spawn(self._drain(), name="epoch-service")

    def _drain(self) -> Generator:
        """Commit sealed epochs strictly in order, one at a time — the
        serial schedule the serializability argument rests on."""
        try:
            while self._queue:
                epoch, batch = self._queue.popleft()
                yield from self._commit_epoch(epoch, batch)
        finally:
            self._draining = False

    # -- the epoch pipeline --------------------------------------------------

    def _commit_epoch(self, epoch: int, batch) -> Generator:
        txn_ids = tuple(txn.txn_id for txn, _ack in batch)
        self.order_log.append((epoch, txn_ids))
        # Fallback RPC origin: the first submitter's gateway (alive at
        # submission — a fixed service home could sit in a blacked-out
        # region).  Write epochs re-home below.
        origin = batch[0][0].gateway
        # Replicate the ordering decision before acting on it.  Anchored
        # on the first writer's first-write range; an all-read epoch
        # decides nothing durable (nothing to recover).
        anchor = None
        for txn, _ack in batch:
            if txn.write_buffer:
                token, key = next(iter(txn.write_buffer))
                anchor = (token, key)
                break
        if anchor is not None:
            # The epoch sequencer runs *at the data*: ordering,
            # validation and apply originate from the anchor range's
            # leaseholder node, so the serial commit pipeline pays
            # quorum rounds, not gateway WAN round trips.  (After a
            # partition the stale leaseholder fails retryably until the
            # lease — and with it the service origin — moves.)
            leaseholder = self.ds.resolve(anchor[0],
                                          anchor[1]).leaseholder_node
            if leaseholder is not None:
                origin = leaseholder
            try:
                yield self.ds.epoch_order(origin, anchor[0], epoch, txn_ids)
            except _EPOCH_RETRYABLE as err:
                for txn, ack in batch:
                    txn.abort_reason = "retry"
                    ack.reject(err)
                return
        for txn, _ack in batch:
            txn.seq = self._seq
            self._seq += 1
        # Key-disjoint conflict groups commute, so they commit in
        # parallel; within a group the decided order is strictly serial.
        # The epoch itself is still a barrier — the next epoch's
        # validation reads start only after every group has finished.
        groups = self._conflict_groups(batch)
        if len(groups) == 1:
            yield from self._commit_group(origin, groups[0])
        else:
            procs = [self.sim.spawn(self._commit_group(origin, group),
                                    name=f"epoch-{epoch}-g{index}")
                     for index, group in enumerate(groups)]
            yield all_of(self.sim, procs)

    @staticmethod
    def _conflict_groups(batch) -> List[list]:
        """Partition the epoch's transactions into key-overlap groups
        (union-find over read-set ∪ write-buffer keys), each group in
        epoch order.  Transactions that share no key — directly or
        transitively — can never invalidate each other's reads, so the
        parallel schedule is equivalent to the decided serial one."""
        parent = list(range(len(batch)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        owner: Dict[Any, int] = {}
        for index, (txn, _ack) in enumerate(batch):
            keys = {(token, key) for token, key, _obs in txn.read_set}
            keys.update(txn.write_buffer)
            for item in keys:
                prev = owner.get(item)
                if prev is None:
                    owner[item] = index
                else:
                    ra, rb = find(prev), find(index)
                    if ra != rb:
                        parent[max(ra, rb)] = min(ra, rb)
        buckets: Dict[int, list] = {}
        order: List[int] = []
        for index, entry in enumerate(batch):
            root = find(index)
            if root not in buckets:
                buckets[root] = []
                order.append(root)
            buckets[root].append(entry)
        return [buckets[root] for root in order]

    def _commit_group(self, origin, group) -> Generator:
        for txn, ack in group:
            yield from self._commit_one(origin, txn, ack)

    def _commit_one(self, origin, txn: "EpochTransaction",
                    ack: Future) -> Generator:
        if txn.status != TxnStatus.PENDING:
            ack.reject(TransactionAbortedError(
                f"txn {txn.txn_id} no longer pending at its epoch"))
            return
        # 1. Validate: every read-set version must still be the latest.
        if self.validate and txn.read_set:
            try:
                conflict = yield from self._validate(origin, txn)
            except _EPOCH_RETRYABLE as err:
                txn.abort_reason = "retry"
                ack.reject(err)
                return
            if conflict is not None:
                token, key, observed_ts, current_ts = conflict
                stats = txn.coordinator.stats
                stats.validation_aborts += 1
                recorder = txn.coordinator.recorder
                if recorder is not None:
                    recorder.on_validation_fail(txn, token, key,
                                                observed_ts, current_ts)
                ack.reject(TransactionValidationError(
                    txn.txn_id, key=key, observed_ts=observed_ts,
                    current_ts=current_ts))
                return
        # 2. Apply: lay intents, fix the commit timestamp, resolve.
        if not txn.write_buffer:
            commit_ts = self._last_commit_ts
            for _token, _key, observed_ts in txn.read_set:
                if observed_ts is not None and observed_ts > commit_ts:
                    commit_ts = observed_ts
            if commit_ts == TS_ZERO:
                commit_ts = txn.read_ts
            txn.commit_ts = commit_ts
            txn.status = TxnStatus.COMMITTED
            self.sim.spawn(self._ack_after_wait(txn, ack, commit_ts, origin),
                           name=f"epoch-ack-{txn.txn_id}")
            return
        try:
            commit_ts = yield from self._apply(origin, txn)
        except _EPOCH_RETRYABLE as err:
            txn.abort_reason = "retry"
            ack.reject(err)
            return
        if commit_ts > self._last_commit_ts:
            self._last_commit_ts = commit_ts
        self.sim.spawn(self._ack_after_wait(txn, ack, commit_ts, origin),
                       name=f"epoch-ack-{txn.txn_id}")

    def _validate(self, origin, txn: "EpochTransaction") -> Generator:
        """Re-read the read set (latest committed); returns the first
        conflicting entry ``(token, key, observed_ts, current_ts)`` in
        read order, or None if every version is unchanged."""
        entries = txn.read_set
        self._c_validation_reads.inc(len(entries))
        futures = [
            self.ds.read(origin, token, key, origin.clock.now(),
                         txn_id=txn.txn_id, uncertainty_limit=TS_MAX,
                         routing=ReadRouting.LEASEHOLDER,
                         allow_server_side_bump=True, span=txn.span)
            for token, key, _observed in entries
        ]
        results = yield all_of(self.sim, futures)
        for (token, key, observed_ts), (result, _ts) in zip(entries, results):
            current_ts = result.ts
            if current_ts != observed_ts:
                return (token, key, observed_ts, current_ts)
        return None

    def _apply(self, origin, txn: "EpochTransaction") -> Generator:
        """Lay the write buffer as intents, commit above every earlier
        commit, and resolve before acknowledging (so the next serial
        step — and every post-ack reader — sees this state)."""
        items = list(txn.write_buffer.items())
        (first_token, first_key), _value = items[0]
        anchor = self.ds.resolve(first_token, first_key)
        txn.anchor = anchor
        anchor_node = anchor.leaseholder_node_id or -1
        base_ts = origin.clock.now()
        futures = [
            self.ds.write(origin, token, key, base_ts, value, txn.txn_id,
                          anchor_node_id=anchor_node, span=txn.span)
            for (token, key), value in items
        ]
        settled = yield settle_all(self.sim, futures)
        first_error: Optional[BaseException] = None
        commit_ts = self._last_commit_ts.next()
        laid: List[Tuple[Any, Any]] = []
        recorder = txn.coordinator.recorder
        for fut, ((token, key), value) in zip(settled, items):
            if fut.error is not None:
                if first_error is None:
                    first_error = fut.error
                continue
            written_ts = fut._value
            laid.append((token, key))
            if written_ts > commit_ts:
                commit_ts = written_ts
            if recorder is not None:
                recorder.on_write(txn, token, key, value, written_ts)
        if first_error is not None:
            # Partial apply: abort cleanly — resolve whatever intents
            # landed, then resubmit from scratch.
            txn.status = TxnStatus.ABORTED
            if laid:
                try:
                    yield self.ds.resolve_intents(origin, laid, txn.txn_id,
                                                  None, span=txn.span)
                except _EPOCH_RETRYABLE:
                    pass  # orphans recovered by waiter pushes
            raise first_error
        txn.commit_ts = commit_ts
        # COMMITTED before resolution, exactly like the CRDB pipeline:
        # lock-table pushes consult the registry and may resolve for us.
        txn.status = TxnStatus.COMMITTED
        try:
            yield self.ds.resolve_intents(origin, laid, txn.txn_id,
                                          commit_ts, span=txn.span)
        except _EPOCH_RETRYABLE:
            # The transaction is durably committed the instant its
            # status flips — a resolution failure (say, the partition
            # landing mid-epoch) must NOT surface as a retryable abort,
            # or the client re-runs an applied transaction (a phantom
            # double-apply the counter audit convicts).  Leave the
            # orphan intents: waiter pushes consult the registry and
            # resolve them to the committed values.
            pass
        return commit_ts

    def _ack_after_wait(self, txn: "EpochTransaction", ack: Future,
                        commit_ts: Timestamp, origin) -> Generator:
        """Acknowledge off the serial path.  The notification hop from
        the service origin back to the submitting gateway is charged
        explicitly (the decision is durable, so only latency — not
        delivery — is modelled).  A future-time commit timestamp
        (GLOBAL ranges) then holds the ack until the gateway clock
        passes it — the recency obligation commit wait discharges in
        the CRDB pipeline — without stalling later epochs."""
        if origin.node_id != txn.gateway.node_id:
            yield self.sim.sleep(self.cluster.network.one_way_latency(
                origin, txn.gateway))
        clock = txn.gateway.clock
        if commit_ts.physical > clock.physical_now():
            yield clock.wait_until(commit_ts)
        stats = txn.coordinator.stats
        stats.epoch_waits += 1
        waited = self.sim.now - txn.submitted_at_ms
        stats.epoch_wait_ms_total += waited
        self.sim.obs.registry.histogram("txn.epoch_wait_ms").observe(waited)
        ack.resolve(commit_ts)


class EpochTransaction:
    """One optimistic attempt: reads latest committed state, buffers
    writes locally, commits through the cluster's epoch service."""

    def __init__(self, coordinator, gateway, txn_id: int,
                 service: EpochService, parent_span=None):
        self.coordinator = coordinator
        self.gateway = gateway
        self.txn_id = txn_id
        self.service = service
        obs = coordinator.sim.obs
        self.span = (obs.tracer.start_span(
            "txn", parent=parent_span, txn_id=txn_id,
            gateway=gateway.node_id, protocol="epoch-occ")
            if obs.enabled else NOOP_SPAN)
        self.read_ts: Timestamp = gateway.clock.now()
        #: Read set for validation: [(token, key, observed version ts)].
        #: Duplicate reads keep every observation — two reads of one key
        #: that saw different versions can never both be latest at the
        #: commit point, so validation rejects the interleaving.
        self.read_set: List[Tuple[Any, Any, Optional[Timestamp]]] = []
        #: Gateway-local write buffer: (token, key) -> value, in write
        #: order.  No intents exist until the epoch applies.
        self.write_buffer: Dict[Tuple[Any, Any], Any] = {}
        self.anchor = None
        self.status = TxnStatus.PENDING
        self.commit_ts: Optional[Timestamp] = None
        self.deadline_ms: Optional[float] = None
        self.abort_reason: Optional[str] = None
        #: Assigned at submission / ordering (property-test surface).
        self.epoch: Optional[int] = None
        self.seq: Optional[int] = None
        self.submitted_at_ms: Optional[float] = None

    @property
    def _ds(self):
        return self.coordinator.distsender

    # -- reads ---------------------------------------------------------------

    def read(self, rng, key: Any,
             routing: str = ReadRouting.LEASEHOLDER) -> Generator:
        """Optimistic read: latest committed version of ``key``.

        Always served by the leaseholder (an unbounded read timestamp
        can never be closed on a follower); the observed version joins
        the read set for commit-time validation.
        """
        buffered = self.write_buffer.get((rng, key))
        if buffered is not None or (rng, key) in self.write_buffer:
            result = _BufferedRead(buffered)
            recorder = self.coordinator.recorder
            if recorder is not None:
                recorder.on_read(self, rng, key, result)
            return buffered
        result, _effective_ts = yield self._ds.read(
            self.gateway, rng, key, self.gateway.clock.now(),
            txn_id=self.txn_id, uncertainty_limit=TS_MAX,
            routing=ReadRouting.LEASEHOLDER, allow_server_side_bump=True,
            span=self.span, deadline_ms=self.deadline_ms)
        self.read_set.append((rng, key, result.ts))
        recorder = self.coordinator.recorder
        if recorder is not None:
            recorder.on_read(self, rng, key, result)
        return result.value

    def read_batch(self, requests: List[Tuple[Any, Any]],
                   routing: str = ReadRouting.LEASEHOLDER) -> Generator:
        """Read several keys in parallel (latest committed versions)."""
        if not requests:
            return []
        values: Dict[int, Any] = {}
        fetch: List[Tuple[int, Any, Any]] = []
        recorder = self.coordinator.recorder
        for index, (rng, key) in enumerate(requests):
            if (rng, key) in self.write_buffer:
                buffered = self.write_buffer[(rng, key)]
                values[index] = buffered
                if recorder is not None:
                    recorder.on_read(self, rng, key, _BufferedRead(buffered))
            else:
                fetch.append((index, rng, key))
        if fetch:
            futures = [
                self._ds.read(self.gateway, rng, key,
                              self.gateway.clock.now(), txn_id=self.txn_id,
                              uncertainty_limit=TS_MAX,
                              routing=ReadRouting.LEASEHOLDER,
                              allow_server_side_bump=True,
                              span=self.span, deadline_ms=self.deadline_ms)
                for _index, rng, key in fetch
            ]
            results = yield all_of(self.coordinator.sim, futures)
            for (index, rng, key), (result, _ts) in zip(fetch, results):
                self.read_set.append((rng, key, result.ts))
                values[index] = result.value
                if recorder is not None:
                    recorder.on_read(self, rng, key, result)
        return [values[index] for index in range(len(requests))]

    def locking_read(self, rng, key: Any) -> Generator:
        """SELECT FOR UPDATE under OCC: there is no lock to take — the
        read joins the read set and commit-time validation supplies the
        same protection (any intervening writer aborts this txn)."""
        value = yield from self.read(rng, key)
        return value

    # -- writes --------------------------------------------------------------

    def write(self, rng, key: Any, value: Any) -> Generator:
        """Buffer the write locally; intents are laid at epoch apply.

        Recorded in the history at apply time (with its real intent
        timestamp), so aborted optimistic transactions honestly show no
        writes — none ever reached the KV layer.
        """
        self.write_buffer[(rng, key)] = value
        return None
        yield  # pragma: no cover - marks this function as a generator

    def write_batch(self, items: List[Tuple[Any, Any, Any]]) -> Generator:
        for rng, key, value in items:
            self.write_buffer[(rng, key)] = value
        return []
        yield  # pragma: no cover - marks this function as a generator

    def delete(self, rng, key: Any) -> Generator:
        result = yield from self.write(rng, key, None)
        return result

    # -- commit / rollback ---------------------------------------------------

    def commit(self) -> Generator:
        """Submit to the epoch service; blocks (epoch wait) until the
        epoch orders, validates, applies and acknowledges."""
        if self.status != TxnStatus.PENDING:
            raise TransactionAbortedError(f"txn {self.txn_id} not pending")
        obs = self.coordinator.sim.obs
        commit_span = (obs.tracer.start_span(
            "txn.epoch_commit", parent=self.span, txn_id=self.txn_id,
            writes=len(self.write_buffer)) if obs.enabled else NOOP_SPAN)
        try:
            commit_ts = yield self.service.submit(self)
            commit_span.annotate(epoch=self.epoch)
            recorder = self.coordinator.recorder
            if recorder is not None:
                recorder.on_commit(self)
            return commit_ts
        finally:
            commit_span.finish(status=self.status)

    def rollback(self) -> Generator:
        """Abort before (or after a failed) submission.  Purely local:
        no intents exist outside the epoch apply window, and a failed
        apply already cleaned up after itself."""
        if self.status != TxnStatus.PENDING:
            return
        self.status = TxnStatus.ABORTED
        recorder = self.coordinator.recorder
        if recorder is not None:
            recorder.on_abort(self)
        return
        yield  # pragma: no cover - marks this function as a generator


class EpochOccProtocol(TxnProtocol):
    """Epoch-batched OCC backend, selectable via
    ``Cluster(txn_protocol="epoch-occ")`` or an instance of this class
    (for a custom epoch interval or the validation-off ablation)."""

    name = "epoch-occ"
    wait_kind = "epoch-wait"

    def __init__(self, interval_ms: float = DEFAULT_EPOCH_INTERVAL_MS,
                 validate: bool = True):
        self.interval_ms = interval_ms
        self.validate = validate

    def service_for(self, coordinator) -> EpochService:
        """The cluster's shared epoch service (one total order per
        cluster, whichever coordinator touches it first creates it)."""
        cluster = coordinator.cluster
        service = getattr(cluster, "epoch_service", None)
        if service is None:
            service = EpochService(cluster, coordinator.distsender,
                                   self.interval_ms, validate=self.validate)
            cluster.epoch_service = service
        return service

    def begin(self, coordinator, gateway, txn_id: int,
              parent_span=None) -> EpochTransaction:
        return EpochTransaction(coordinator, gateway, txn_id,
                                self.service_for(coordinator),
                                parent_span=parent_span)
