"""The CRDB-style transaction protocol (paper §5, §6).

This is the pipeline extracted verbatim from the original coordinator:
serializable timestamp-based MVCC transactions with write intents, an
uncertainty interval and read refreshes, a one-phase-commit fast path,
parallel-commit-shaped record writes, lock-table interaction through
the KV layer, and commit-wait (CRDB-style concurrent with intent
resolution, or Spanner-style holding locks, per the coordinator's
ablation flag).  Behavior is byte-identical to the pre-extraction
coordinator — the committed golden fingerprints guard exactly that.

* a transaction starts with read and provisional-commit timestamps from
  the gateway HLC;
* reads carry an *uncertainty interval* ``(read_ts, read_ts +
  max_clock_offset]``; observing a value inside it bumps the read
  timestamp and refreshes previous reads (§6.1);
* writes may be advanced by the timestamp cache, by committed values
  (write-too-old), and — on GLOBAL ranges — past the future-time closed
  timestamp target (§6.2.1);
* if the provisional commit timestamp moved above the read timestamp,
  the read set is refreshed before committing;
* a commit timestamp above present time (a future-time / global
  transaction, or an observed future value) requires **commit wait**:
  the coordinator delays the client acknowledgement until its local HLC
  passes the timestamp.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..errors import (
    AmbiguousCommitError,
    ReadWithinUncertaintyIntervalError,
    TransactionAbortedError,
    TransactionRetryError,
)
from ..sim.network import NetworkUnavailableError
from ..kv.commands import TxnStatus
from ..kv.distsender import DistSender, ReadRouting
from ..kv.range import Range
from ..obs import NOOP_SPAN
from ..sim.clock import Timestamp
from ..sim.core import all_of, settle_all
from .protocol import TxnProtocol

__all__ = ["CrdbProtocol", "Transaction"]


class Transaction:
    """One attempt of a client transaction, pinned to a gateway node."""

    def __init__(self, coordinator, gateway, txn_id: int, parent_span=None):
        self.coordinator = coordinator
        self.gateway = gateway
        self.txn_id = txn_id
        #: Root (or SQL-statement-child) span covering the whole attempt.
        obs = coordinator.sim.obs
        self.span = (obs.tracer.start_span(
            "txn", parent=parent_span, txn_id=txn_id,
            gateway=gateway.node_id) if obs.enabled else NOOP_SPAN)
        start = gateway.clock.now()
        self.read_ts: Timestamp = start
        self.write_ts: Timestamp = start
        #: Fixed upper bound of the uncertainty interval (never moves).
        self.uncertainty_limit: Timestamp = Timestamp(
            start.physical + gateway.clock.max_offset, start.logical)
        #: Keys read so far (for refreshes): list of (token, key), where
        #: a token is a Range or a TableSpan — refreshes re-resolve
        #: through the DistSender so they follow splits/merges.
        self.read_set: List[Tuple[Any, Any]] = []
        #: Keys written so far: (owning_range_id, key) -> (token, key).
        self.write_set: Dict[Tuple[int, Any], Tuple[Any, Any]] = {}
        #: The concrete range holding this transaction's record, pinned
        #: (resolved from its token) at the first write and never moved —
        #: a split leaves the record on the original range, which keeps
        #: serving record operations even as a post-merge husk.
        self.anchor: Optional[Range] = None
        #: Commit-wait obligation from observed future-time values.
        self.observed_future_ts: Optional[Timestamp] = None
        self.status = TxnStatus.PENDING
        self.commit_ts: Optional[Timestamp] = None
        #: Absolute sim-time deadline propagated into every DistSender
        #: data RPC (commit/cleanup RPCs run deadline-free so an expired
        #: transaction still resolves its intents).
        self.deadline_ms: Optional[float] = None
        #: Why the attempt aborted ("retry", "validation", "fatal"),
        #: set by the coordinator's retry machinery for the history
        #: recorder; None while live or committed.
        self.abort_reason: Optional[str] = None

    @property
    def _ds(self) -> DistSender:
        return self.coordinator.distsender

    # -- reads -------------------------------------------------------------

    def read(self, rng: Range, key: Any,
             routing: str = ReadRouting.LEASEHOLDER) -> Generator:
        """Transactional read of ``key``; returns the value (or None).

        Handles uncertainty restarts internally: the read timestamp is
        bumped to the uncertain value's timestamp, prior reads are
        refreshed, and the read retries (paper §6.1–6.2).
        """
        while True:
            # With no other spans, the serving replica may retry
            # uncertainty restarts locally (one WAN round trip total).
            allow_bump = not self.read_set and not self.write_set
            try:
                result, effective_ts = yield self._ds.read(
                    self.gateway, rng, key, self.read_ts,
                    txn_id=self.txn_id,
                    uncertainty_limit=self.uncertainty_limit,
                    routing=routing,
                    allow_server_side_bump=allow_bump,
                    span=self.span, deadline_ms=self.deadline_ms)
            except ReadWithinUncertaintyIntervalError as err:
                value_ts = err.value_ts
                self.coordinator.note_uncertainty_restart(value_ts)
                yield from self._refresh_to(value_ts.with_synthetic(False))
                if value_ts.synthetic or value_ts.physical > \
                        self.gateway.clock.physical_now():
                    self._note_future_observation(value_ts)
                continue
            if effective_ts > self.read_ts:
                # Server-side uncertainty bump (only legal with no spans).
                self.coordinator.note_uncertainty_restart(effective_ts)
                self.read_ts = effective_ts.with_synthetic(False)
                if self.write_ts < self.read_ts:
                    self.write_ts = self.read_ts
                if effective_ts.synthetic or effective_ts.physical > \
                        self.gateway.clock.physical_now():
                    self._note_future_observation(effective_ts)
            self.read_set.append((rng, key))
            recorder = self.coordinator.recorder
            if recorder is not None:
                recorder.on_read(self, rng, key, result)
            return result.value

    def read_batch(self, requests: List[Tuple[Range, Any]],
                   routing: str = ReadRouting.LEASEHOLDER) -> Generator:
        """Read several keys in parallel (one round trip to the furthest
        replica).  Returns values in request order.  Used by fan-out
        plans: uniqueness checks and locality-optimized-search misses."""
        if not requests:
            return []
        while True:
            futures = [
                self._ds.read(self.gateway, rng, key, self.read_ts,
                              txn_id=self.txn_id,
                              uncertainty_limit=self.uncertainty_limit,
                              routing=routing, span=self.span,
                              deadline_ms=self.deadline_ms)
                for rng, key in requests
            ]
            try:
                results = yield all_of(self.coordinator.sim, futures)
            except ReadWithinUncertaintyIntervalError as err:
                value_ts = err.value_ts
                self.coordinator.note_uncertainty_restart(value_ts)
                yield from self._refresh_to(value_ts.with_synthetic(False))
                if value_ts.synthetic or value_ts.physical > \
                        self.gateway.clock.physical_now():
                    self._note_future_observation(value_ts)
                continue
            recorder = self.coordinator.recorder
            for (rng, key), (result, _ts) in zip(requests, results):
                self.read_set.append((rng, key))
                if recorder is not None:
                    recorder.on_read(self, rng, key, result)
            return [result.value for result, _ts in results]

    def locking_read(self, rng: Range, key: Any) -> Generator:
        """SELECT FOR UPDATE: read the latest value and lock the key.

        The value corresponds to the lock timestamp, so the transaction's
        read timestamp advances to it — free when there are no prior read
        spans, via refresh otherwise (paper §5.1/§6.1 machinery).
        """
        if self.anchor is None:
            self.anchor = self._ds.resolve(rng, key)
        value, lock_ts = yield self._ds.locking_read(
            self.gateway, rng, key, self.write_ts, self.txn_id,
            anchor_node_id=self.anchor.leaseholder_node_id or -1,
            span=self.span, deadline_ms=self.deadline_ms)
        if lock_ts > self.write_ts:
            self.write_ts = lock_ts
        self.write_set[(self._ds.resolve(rng, key).range_id, key)] = (rng, key)
        real_lock_ts = lock_ts.with_synthetic(False)
        if real_lock_ts > self.read_ts:
            yield from self._refresh_to(real_lock_ts)
        if lock_ts.synthetic or lock_ts.physical > \
                self.gateway.clock.physical_now():
            self._note_future_observation(lock_ts)
        self.read_set.append((rng, key))
        recorder = self.coordinator.recorder
        if recorder is not None:
            recorder.on_locking_read(self, rng, key, value)
        return value

    def _note_future_observation(self, ts: Timestamp) -> None:
        if (self.observed_future_ts is None
                or ts > self.observed_future_ts):
            self.observed_future_ts = ts

    # -- writes -------------------------------------------------------------

    def write(self, rng: Range, key: Any, value: Any) -> Generator:
        """Transactional write (lays an intent at the leaseholder)."""
        if self.anchor is None:
            self.anchor = self._ds.resolve(rng, key)
        written_ts = yield self._ds.write(
            self.gateway, rng, key, self.write_ts, value, self.txn_id,
            anchor_node_id=self.anchor.leaseholder_node_id or -1,
            span=self.span, deadline_ms=self.deadline_ms)
        if written_ts > self.write_ts:
            self.write_ts = written_ts
        self.write_set[(self._ds.resolve(rng, key).range_id, key)] = (rng, key)
        recorder = self.coordinator.recorder
        if recorder is not None:
            recorder.on_write(self, rng, key, value, written_ts)
        return written_ts

    def write_batch(self, items: List[Tuple[Range, Any, Any]]) -> Generator:
        """Write several (range, key, value) intents in parallel.

        One round trip to the furthest leaseholder instead of a sum of
        round trips — this is how the duplicate-indexes baseline fans a
        write out to every region's index (paper §7.3.1).

        On failure (e.g. a deadlock abort on one key) every future is
        still awaited so that all intents actually laid are in the write
        set before the rollback cleans them up.
        """
        if not items:
            return []
        if self.anchor is None:
            self.anchor = self._ds.resolve(items[0][0], items[0][1])
        anchor_node = self.anchor.leaseholder_node_id or -1
        futures = [
            self._ds.write(self.gateway, rng, key, self.write_ts, value,
                           self.txn_id, anchor_node_id=anchor_node,
                           span=self.span, deadline_ms=self.deadline_ms)
            for rng, key, value in items
        ]
        settled = yield settle_all(self.coordinator.sim, futures)
        first_error: Optional[BaseException] = None
        written: List[Timestamp] = []
        recorder = self.coordinator.recorder
        for fut, (rng, key, value) in zip(settled, items):
            if fut.error is not None:
                if first_error is None:
                    first_error = fut.error
                continue
            ts = fut._value
            written.append(ts)
            if ts > self.write_ts:
                self.write_ts = ts
            self.write_set[(self._ds.resolve(rng, key).range_id, key)] = (
                rng, key)
            if recorder is not None:
                recorder.on_write(self, rng, key, value, ts)
        if first_error is not None:
            raise first_error
        return written

    def delete(self, rng: Range, key: Any) -> Generator:
        """Transactional delete (a tombstone write)."""
        result = yield from self.write(rng, key, None)
        return result

    # -- refresh --------------------------------------------------------------

    def _refresh_to(self, new_ts: Timestamp) -> Generator:
        """Try to advance ``read_ts`` to ``new_ts``; raise retry on failure."""
        if new_ts <= self.read_ts:
            return
        self.coordinator.stats.refreshes += 1
        if self.read_set:
            futures = [
                self._ds.refresh(self.gateway, rng, key, self.read_ts,
                                 new_ts, self.txn_id, span=self.span,
                                 deadline_ms=self.deadline_ms)
                for rng, key in self.read_set
            ]
            results = yield all_of(self.coordinator.sim, futures)
            if not all(results):
                self.coordinator.stats.refresh_failures += 1
                raise TransactionRetryError(
                    f"txn {self.txn_id}: read refresh to {new_ts} failed",
                    retry_ts=new_ts)
        self.read_ts = new_ts
        if self.write_ts < self.read_ts:
            self.write_ts = self.read_ts

    # -- commit / rollback -------------------------------------------------------

    def commit(self) -> Generator:
        """Commit the transaction; returns the commit timestamp.

        Read-only transactions commit locally but may still owe a commit
        wait for observed future-time values.
        """
        if self.status != TxnStatus.PENDING:
            raise TransactionAbortedError(f"txn {self.txn_id} not pending")
        obs = self.coordinator.sim.obs
        commit_span = (obs.tracer.start_span(
            "txn.commit", parent=self.span, txn_id=self.txn_id,
            writes=len(self.write_set)) if obs.enabled else NOOP_SPAN)
        try:
            if not self.write_set:
                self.status = TxnStatus.COMMITTED
                self.commit_ts = self.read_ts
                yield from self._commit_wait_if_needed(
                    self.observed_future_ts, commit_span)
                self._record_outcome("commit")
                return self.read_ts

            # Serializability check: reads must be valid at the commit ts.
            yield from self._refresh_to(self.write_ts.with_synthetic(False))
            commit_ts = self.write_ts
            self.commit_ts = commit_ts

            # Fast path: a transaction whose writes all hit one range
            # commits in the write's own consensus round (CRDB's
            # one-phase commit / parallel commits latency profile) — no
            # separate record write.  Multi-range transactions persist an
            # explicit record on the anchor range before acknowledging.
            single_range = len({self._ds.resolve(token, key).range_id
                                for token, key
                                in self.write_set.values()}) == 1
            if not single_range:
                try:
                    yield self._ds.write_txn_record(
                        self.gateway, self.anchor, self.txn_id,
                        TxnStatus.COMMITTED, commit_ts, span=commit_span)
                except NetworkUnavailableError:
                    # The record write was lost in flight — it may or may
                    # not have replicated.  Consult the replicated records
                    # (the sim stand-in for CRDB's txn recovery protocol).
                    if not self._recover_commit_outcome():
                        # Unknowable: mark aborted locally so lock-table
                        # pushes unblock waiters, but do NOT write an
                        # ABORTED record over a possibly-committed one.
                        self.status = TxnStatus.ABORTED
                        self.coordinator.stats.ambiguous_commits += 1
                        commit_span.annotate(ambiguous=True)
                        self._record_outcome("indeterminate")
                        raise AmbiguousCommitError(self.txn_id, commit_ts)

            wait_target = commit_ts
            if (self.observed_future_ts is not None
                    and self.observed_future_ts > wait_target):
                wait_target = self.observed_future_ts

            if self.coordinator.spanner_style_commit_wait:
                # Ablation: hold locks (defer intent resolution, and stay
                # unpushable) through the commit wait, as Spanner does
                # (§6.2).
                yield from self._commit_wait_if_needed(wait_target,
                                                       commit_span)
                self.status = TxnStatus.COMMITTED
                self._resolve_intents_async(commit_ts)
            else:
                # CRDB: release locks concurrently with the wait.
                self.status = TxnStatus.COMMITTED
                self._resolve_intents_async(commit_ts)
                yield from self._commit_wait_if_needed(wait_target,
                                                       commit_span)
            self._record_outcome("commit")
            return commit_ts
        finally:
            commit_span.finish(status=self.status)

    def _record_outcome(self, outcome: str) -> None:
        """History-recorder notification at the client-acknowledgement
        point (after any commit wait); no-op unless a recorder is set."""
        recorder = self.coordinator.recorder
        if recorder is None:
            return
        if outcome == "commit":
            recorder.on_commit(self)
        elif outcome == "indeterminate":
            recorder.on_indeterminate(self)
        else:
            recorder.on_abort(self)

    def _recover_commit_outcome(self) -> bool:
        """Did the commit record replicate despite the lost RPC?

        Peeks the anchor range's replicated transaction records — any
        replica that applied a COMMITTED record proves the outcome.
        """
        if self.anchor is None:
            return False
        for replica in self.anchor.replicas.values():
            record = replica.txn_records.get(self.txn_id)
            if record is not None and record.status == TxnStatus.COMMITTED:
                return True
        return False

    def _resolve_intents_async(self, commit_ts: Optional[Timestamp]) -> None:
        spans = list(self.write_set.values())
        if not spans:
            return
        # A root span of its own: cleanup outlives the transaction span
        # (CRDB resolves intents asynchronously after the client ack).
        obs = self.coordinator.sim.obs
        if obs.enabled:
            cleanup_span = obs.tracer.start_span(
                "txn.cleanup", txn_id=self.txn_id, intents=len(spans))
            fut = self._ds.resolve_intents(self.gateway, spans, self.txn_id,
                                           commit_ts, span=cleanup_span)
            # Intent resolution runs in the background; swallow benign
            # races.
            fut.add_callback(lambda f: cleanup_span.finish(
                error=None if f.error is None else type(f.error).__name__))
        else:
            self._ds.resolve_intents(self.gateway, spans, self.txn_id,
                                     commit_ts, span=NOOP_SPAN)

    def _commit_wait_if_needed(self, target: Optional[Timestamp],
                               parent_span=None) -> Generator:
        if target is None:
            return
        clock = self.gateway.clock
        if target.physical <= clock.physical_now():
            return
        obs = self.coordinator.sim.obs
        wait_span = obs.tracer.start_span(
            "txn.commit_wait", parent=parent_span, txn_id=self.txn_id,
            target=str(target))
        stats = self.coordinator.stats
        stats.commit_waits += 1
        waited = yield clock.wait_until(target)
        waited = waited or 0.0
        stats.commit_wait_ms_total += waited
        obs.registry.histogram("txn.commit_wait_ms").observe(waited)
        wait_span.finish(waited_ms=round(waited, 3))

    def rollback(self) -> Generator:
        """Abort: mark the record aborted and clean up intents."""
        if self.status != TxnStatus.PENDING:
            return
        self.status = TxnStatus.ABORTED
        self._record_outcome("abort")
        if self.anchor is not None and self.write_set:
            yield self._ds.write_txn_record(
                self.gateway, self.anchor, self.txn_id, TxnStatus.ABORTED,
                None, span=self.span)
            spans = list(self.write_set.values())
            yield self._ds.resolve_intents(self.gateway, spans, self.txn_id,
                                           None, span=self.span)


class CrdbProtocol(TxnProtocol):
    """The default backend: the paper's pipeline, unchanged."""

    name = "crdb"
    wait_kind = "commit-wait"

    def begin(self, coordinator, gateway, txn_id: int,
              parent_span=None) -> Transaction:
        return Transaction(coordinator, gateway, txn_id,
                           parent_span=parent_span)
