"""Transaction coordination (paper §5, §6).

The coordinator lives on the client's gateway node.  It owns the parts
of transaction processing that every protocol shares — txn-id
allocation, the retry loop with seeded jittered backoff, retry-budget
and deadline accounting, stats, and history recording — and delegates
*how one attempt executes* to a pluggable
:class:`~repro.txn.protocol.TxnProtocol` backend:

* :class:`~repro.txn.crdb.CrdbProtocol` (the default) — the paper's
  pipeline: write intents, uncertainty restarts and read refreshes,
  parallel/one-phase commits, lock-table conflicts, commit-wait;
* :class:`~repro.txn.epoch.EpochOccProtocol` — gateway-local optimistic
  read/write sets, epoch-batched commit behind a Raft-replicated
  per-epoch ordering decision, validation-based aborts, epoch-wait.

The protocol is chosen per cluster (``Cluster(txn_protocol=...)``),
per coordinator (``TransactionCoordinator(protocol=...)``), or per
call (``run(..., protocol=...)``).
"""

from __future__ import annotations

import random
from typing import Callable, Generator, Optional

from ..errors import (
    AmbiguousCommitError,
    DeadlineExceededError,
    RangeUnavailableError,
    TransactionAbortedError,
    TransactionRetryError,
    TransactionValidationError,
)
from ..sim.network import NetworkUnavailableError
from ..sim.retry import ExponentialBackoff
from ..kv.commands import TxnStatus
from ..kv.distsender import DistSender
from ..obs import MetricsRegistry
from .crdb import Transaction
from .protocol import TxnProtocol, resolve_protocol

__all__ = ["TransactionCoordinator", "Transaction", "TxnStats"]


class TxnStats:
    """Aggregate coordinator statistics, for tests and benchmarks.

    Historically a plain dataclass of counters; now a view over
    ``txn.*`` instruments on the shared metrics registry, so coordinator
    activity shows up in ``python -m repro metrics`` alongside every
    other layer.  The attribute interface (``stats.committed += 1``,
    ``stats.commit_wait_ms_total``) is unchanged.
    """

    _FIELDS = ("begun", "committed", "aborted_retries",
               "uncertainty_restarts", "refreshes", "refresh_failures",
               "commit_waits", "commit_wait_ms_total", "ambiguous_commits",
               "validation_aborts", "epoch_waits", "epoch_wait_ms_total")

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        if registry is None:
            registry = MetricsRegistry()
        object.__setattr__(self, "registry", registry)
        # Counter handles cached on first use: ``stats.committed += 1``
        # fires __getattr__ *and* __setattr__, and a registry lookup in
        # each was measurable on the commit path.  (Cached lazily, not
        # eagerly, so the set of registered instruments — and therefore
        # the metrics export — is unchanged; the epoch-OCC fields never
        # register on a CRDB-only run and vice versa.)
        object.__setattr__(self, "_counters", {})

    def _counter(self, name):
        counters = object.__getattribute__(self, "_counters")
        counter = counters.get(name)
        if counter is None:
            if name not in TxnStats._FIELDS:
                raise AttributeError(name)
            counter = counters[name] = self.registry.counter(f"txn.{name}")
        return counter

    def __getattr__(self, name):
        counter = self._counter(name)
        value = counter.value
        return float(value) if name.endswith("_ms_total") else int(value)

    def __setattr__(self, name, value) -> None:
        if name in TxnStats._FIELDS:
            counter = self._counter(name)
            counter.inc(value - counter.value)
        else:
            object.__setattr__(self, name, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{f}={getattr(self, f)}"
                          for f in TxnStats._FIELDS)
        return f"TxnStats({inner})"


class TransactionCoordinator:
    """Factory/runner for transactions on a cluster."""

    def __init__(self, cluster, distsender: Optional[DistSender] = None,
                 spanner_style_commit_wait: bool = False,
                 txn_id_base: int = 1,
                 protocol=None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.distsender = distsender or DistSender(cluster)
        self.spanner_style_commit_wait = spanner_style_commit_wait
        self.stats = TxnStats(cluster.sim.obs.registry)
        #: The transaction backend; defaults to the cluster's configured
        #: protocol (``Cluster(txn_protocol=...)``), else CRDB.
        if protocol is None:
            protocol = getattr(cluster, "txn_protocol", None)
        self.protocol: TxnProtocol = resolve_protocol(protocol)
        #: Optional :class:`repro.verify.HistoryRecorder`; when set,
        #: every read/write/outcome is captured for anomaly checking.
        self.recorder = None
        # ``txn_id_base`` keeps txn ids disjoint when several
        # coordinators share one cluster's txn registry (e.g. the
        # verify harness's recorded clients + unrecorded overload load).
        self._next_txn_id = txn_id_base
        # Shared with the DistSender's retry helper in spirit: seeded
        # jittered backoff so contended retries cannot livelock in
        # lockstep (chaos runs livelocked with the old fixed backoff).
        self._retry_rng = random.Random(
            (getattr(cluster, "seed", 0) << 8) ^ 0x7C0)

    def note_uncertainty_restart(self, value_ts) -> None:
        """Count an uncertainty restart, attributing its cause when the
        clock-safety subsystem is active: a *synthetic* uncertain value
        is a future-time (GLOBAL-table) write doing its job, while a
        real timestamp inside the window means an actually-skewed writer
        clock — the distinction the clock nemesis experiments care
        about."""
        self.stats.uncertainty_restarts += 1
        if self.cluster.clock_monitor is not None:
            cause = ("future-time-write" if value_ts.synthetic
                     else "clock-skew")
            self.sim.obs.registry.counter(
                "txn.uncertainty_restart_cause", cause=cause).inc()

    def begin(self, gateway, parent_span=None,
              label: Optional[str] = None,
              deadline_ms: Optional[float] = None,
              protocol=None):
        proto = (self.protocol if protocol is None
                 else resolve_protocol(protocol))
        txn = proto.begin(self, gateway, self._next_txn_id,
                          parent_span=parent_span)
        txn.deadline_ms = deadline_ms
        self._next_txn_id += 1
        self.stats.begun += 1
        # Registered so lock-table pushes can learn this transaction's
        # fate even if its intent resolution is lost to a failure.
        self.cluster.txn_registry[txn.txn_id] = txn
        if self.recorder is not None:
            self.recorder.on_begin(txn, gateway, label)
        return txn

    def run(self, gateway, txn_fn: Callable[[Transaction], Generator],
            max_attempts: int = 100, parent_span=None,
            label: Optional[str] = None,
            deadline_ms: Optional[float] = None,
            tenant: Optional[str] = None,
            protocol=None) -> Generator:
        """Run ``txn_fn`` with automatic retries; returns (result, commit_ts).

        ``txn_fn(txn)`` is a coroutine performing reads/writes on ``txn``;
        commit happens automatically after it returns.

        ``deadline_ms`` (absolute sim time) propagates into every data
        RPC; once it passes, the transaction fails fast with
        :class:`DeadlineExceededError` instead of retrying.  When
        admission control is installed, retries additionally draw on the
        ``tenant``'s retry budget and fail fast with
        ``RetryBudgetExhaustedError`` once it is spent.
        """
        last_error: Optional[Exception] = None
        admission = getattr(self.cluster, "admission", None)
        budget = (admission.retry_budget(tenant or label or "default")
                  if admission is not None else None)
        # Seeded jittered backoff (capped: long sleeps only prolong
        # contention windows); RPC failures back off longer to leave
        # room for lease failover.
        contention_backoff = ExponentialBackoff(
            rng=self._retry_rng, base_ms=0.5, max_ms=20.0)
        network_backoff = ExponentialBackoff(
            rng=self._retry_rng, base_ms=25.0, max_ms=500.0)
        for attempt in range(max_attempts):
            if deadline_ms is not None and self.sim.now >= deadline_ms:
                raise DeadlineExceededError("txn", deadline_ms, self.sim.now)
            txn = self.begin(gateway, parent_span=parent_span, label=label,
                             deadline_ms=deadline_ms, protocol=protocol)
            try:
                result = yield from txn_fn(txn)
                commit_ts = yield from txn.commit()
                self.stats.committed += 1
                if budget is not None:
                    budget.on_success()
                txn.span.finish(status=txn.status)
                return result, commit_ts
            except AmbiguousCommitError:
                # The commit may have applied: retrying could double-
                # apply, rolling back could overwrite a committed
                # record.  Surface as-is.
                txn.span.finish(status=txn.status, ambiguous=True)
                raise
            except (TransactionRetryError, TransactionAbortedError,
                    NetworkUnavailableError) as err:
                # Retry: serializability restarts, aborts, and RPC
                # failures (a dead leaseholder may have failed over by
                # the next attempt — CRDB's DistSender retries these).
                last_error = err
                self.stats.aborted_retries += 1
                if isinstance(err, TransactionValidationError):
                    txn.abort_reason = "validation"
                elif txn.abort_reason is None:
                    txn.abort_reason = "retry"
                yield from self._rollback_best_effort(txn)
                txn.span.finish(status=txn.status, retried=True,
                                error=type(err).__name__)
                if isinstance(err, NetworkUnavailableError):
                    delay = network_backoff.next_delay()
                else:
                    delay = contention_backoff.next_delay()
                if (deadline_ms is not None
                        and self.sim.now + delay >= deadline_ms):
                    raise DeadlineExceededError("txn", deadline_ms,
                                                self.sim.now)
                if budget is not None:
                    # Spend before sleeping: an exhausted budget must
                    # fail fast, not after one more backoff.
                    budget.check(attempt + 1)
                yield self.sim.sleep(delay)
            except Exception as err:
                # Non-retryable failure (e.g. a uniqueness violation):
                # clean up intents, then surface to the caller.
                if txn.abort_reason is None:
                    txn.abort_reason = "fatal"
                yield from self._rollback_best_effort(txn)
                txn.span.finish(status=txn.status,
                                error=type(err).__name__)
                raise
        raise TransactionRetryError(
            f"transaction gave up after {max_attempts} attempts: {last_error}")

    def _rollback_best_effort(self, txn) -> Generator:
        """Roll back, tolerating unreachable ranges (dead leaseholders):
        abandoned intents are recovered by waiter pushes via the
        transaction registry."""
        try:
            yield from txn.rollback()
        except (NetworkUnavailableError, RangeUnavailableError):
            txn.status = TxnStatus.ABORTED
