"""The coordinator/KV protocol boundary.

The paper's lease-based pipeline — intents, parallel commits,
commit-wait — is one point in the geo-replication design space
(ROADMAP item 3).  A :class:`TxnProtocol` is a pluggable transaction
backend: the :class:`~repro.txn.coordinator.TransactionCoordinator`
owns retries, txn-id allocation, history recording and stats, and
delegates *how one attempt executes* to the protocol, which returns a
transaction handle from :meth:`TxnProtocol.begin`.

A transaction handle must duck-type the CRDB
:class:`~repro.txn.crdb.Transaction` surface the SQL layer and the
workload generators drive:

* attributes: ``txn_id``, ``gateway``, ``coordinator``, ``span``,
  ``status`` (a :class:`~repro.kv.commands.TxnStatus` value — the
  cluster txn registry and lock-table pushes consult it),
  ``commit_ts``, ``read_ts``, ``deadline_ms``, ``abort_reason``;
* coroutines: ``read``, ``read_batch``, ``locking_read``, ``write``,
  ``write_batch``, ``delete``, ``commit``, ``rollback``.

Failures raised out of the handle follow the shared error taxonomy:
anything retryable must be a :class:`~repro.errors.TransactionRetryError`
(validation conflicts use the
:class:`~repro.errors.TransactionValidationError` subclass so abort
accounting can tell them apart) or
:class:`~repro.errors.TransactionAbortedError`.

Protocols are selectable per cluster (``Cluster(txn_protocol=...)`` /
``standard_cluster(txn_protocol=...)``), per coordinator
(``TransactionCoordinator(protocol=...)``), per session
(``Session.txn_protocol``) and per call (``coordinator.run(...,
protocol=...)``); each accepts a name, a :class:`TxnProtocol`
instance, or a protocol class.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError

__all__ = ["TxnProtocol", "PROTOCOL_NAMES", "resolve_protocol"]

#: Canonical names accepted by :func:`resolve_protocol` (aliases are
#: normalized: underscores become dashes, matching is case-insensitive).
PROTOCOL_NAMES = ("crdb", "epoch-occ")


class TxnProtocol:
    """Abstract transaction backend: one attempt's execution strategy."""

    #: Canonical protocol name (used in metrics labels and CLIs).
    name = "abstract"
    #: Which latency the protocol trades against clock uncertainty:
    #: ``"commit-wait"`` (CRDB/Spanner) or ``"epoch-wait"`` (epoch OCC).
    wait_kind = ""

    def begin(self, coordinator, gateway, txn_id: int, parent_span=None):
        """Create one transaction attempt handle pinned to ``gateway``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


def resolve_protocol(spec=None) -> TxnProtocol:
    """Resolve ``spec`` to a :class:`TxnProtocol` instance.

    Accepts ``None`` (the CRDB default), a protocol name from
    :data:`PROTOCOL_NAMES`, a :class:`TxnProtocol` instance (returned
    as-is, so configured instances — e.g. a custom epoch interval —
    pass through), or a protocol class (instantiated with defaults).
    Imports lazily so the backends stay import-cycle-free.
    """
    if isinstance(spec, TxnProtocol):
        return spec
    if isinstance(spec, type) and issubclass(spec, TxnProtocol):
        return spec()
    if spec is None:
        spec = "crdb"
    if isinstance(spec, str):
        name = spec.strip().lower().replace("_", "-")
        if name in ("", "crdb", "default"):
            from .crdb import CrdbProtocol
            return CrdbProtocol()
        if name in ("epoch-occ", "epoch", "occ"):
            from .epoch import EpochOccProtocol
            return EpochOccProtocol()
    raise ConfigurationError(
        f"unknown transaction protocol {spec!r} "
        f"(expected one of {', '.join(PROTOCOL_NAMES)})")
