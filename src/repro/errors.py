"""Shared error taxonomy for the database layers.

These mirror the error classes CockroachDB uses internally to drive
transaction retries, intent resolution, and uncertainty restarts.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "DatabaseError",
    "ConfigurationError",
    "WriteIntentError",
    "ReadWithinUncertaintyIntervalError",
    "WriteTooOldError",
    "TransactionRetryError",
    "TransactionValidationError",
    "TransactionAbortedError",
    "AmbiguousCommitError",
    "RangeUnavailableError",
    "RangeKeyMismatchError",
    "NotLeaseholderError",
    "FollowerReadNotAvailableError",
    "StaleReadBoundError",
    "UniqueViolationError",
    "ForeignKeyViolationError",
    "SchemaError",
    "SqlSyntaxError",
    "ClockError",
    "ClockOutlierRejectedError",
    "ClockFencedError",
    "OverloadError",
    "AdmissionRejectedError",
    "RetryBudgetExhaustedError",
    "DeadlineExceededError",
]


class DatabaseError(Exception):
    """Base class for all database-level errors."""


class ConfigurationError(DatabaseError):
    """Invalid cluster, zone-config, or multi-region configuration."""


class WriteIntentError(DatabaseError):
    """An operation ran into another transaction's unresolved intent."""

    def __init__(self, key, txn_id, intent_ts):
        super().__init__(f"conflicting intent on {key!r} by txn {txn_id}")
        self.key = key
        self.txn_id = txn_id
        self.intent_ts = intent_ts


class ReadWithinUncertaintyIntervalError(DatabaseError):
    """A read observed a value above its timestamp but inside its
    uncertainty interval; the transaction must refresh to the value's
    timestamp (paper §6.1)."""

    def __init__(self, key, value_ts, read_ts):
        super().__init__(
            f"uncertain value on {key!r} at {value_ts} (read at {read_ts})")
        self.key = key
        self.value_ts = value_ts
        self.read_ts = read_ts


class WriteTooOldError(DatabaseError):
    """A write attempted below an existing committed value; the write
    timestamp must advance."""

    def __init__(self, key, existing_ts, attempted_ts):
        super().__init__(
            f"write too old on {key!r}: existing {existing_ts} >= {attempted_ts}")
        self.key = key
        self.existing_ts = existing_ts
        self.attempted_ts = attempted_ts


class TransactionRetryError(DatabaseError):
    """The transaction must restart (e.g. a failed read refresh)."""

    def __init__(self, reason: str, retry_ts=None):
        super().__init__(reason)
        self.retry_ts = retry_ts


class TransactionValidationError(TransactionRetryError):
    """An optimistic transaction failed commit-time validation: a key in
    its read set changed between the read and the (epoch-ordered) commit
    attempt.  Retryable — the restart re-reads current state — but kept
    distinct from other restarts so abort-rate comparisons between
    protocols can separate validation conflicts from e.g. refresh
    failures or pushed locks."""

    def __init__(self, txn_id: int, key=None, observed_ts=None,
                 current_ts=None):
        detail = f" on {key!r}" if key is not None else ""
        super().__init__(
            f"txn {txn_id}: optimistic validation failed{detail} "
            f"(read {observed_ts}, now {current_ts})")
        self.txn_id = txn_id
        self.key = key
        self.observed_ts = observed_ts
        self.current_ts = current_ts


class TransactionAbortedError(DatabaseError):
    """The transaction was aborted (pushed or explicitly)."""


class AmbiguousCommitError(DatabaseError):
    """The commit RPC failed after the commit may have applied.

    Raised when the transaction-record write is lost to a network
    failure and the coordinator cannot prove either outcome.  Clients
    must treat the transaction as *indeterminate* — retrying it blindly
    could double-apply its effects (CRDB's ``AmbiguousResultError``).
    """

    def __init__(self, txn_id: int, commit_ts=None):
        super().__init__(
            f"txn {txn_id}: commit outcome unknown (RPC failed after "
            f"the commit may have replicated)")
        self.txn_id = txn_id
        self.commit_ts = commit_ts


class RangeUnavailableError(DatabaseError):
    """The range cannot reach quorum (region/zone failure)."""


class RangeKeyMismatchError(TransactionRetryError):
    """The range contacted no longer owns the key (its descriptor span
    moved out from under the request — a split or merge landed between
    routing and serving).  Subclasses :class:`TransactionRetryError` so
    coordinators retry; the DistSender additionally invalidates its
    span-keyed descriptor cache and re-routes without consuming a
    transaction restart (CRDB's ``RangeKeyMismatchError``)."""

    def __init__(self, range_id: int, key, generation: int):
        super().__init__(
            f"r{range_id}: key {key!r} outside range bounds "
            f"(descriptor generation {generation})")
        self.range_id = range_id
        self.key = key
        self.generation = generation


class NotLeaseholderError(DatabaseError):
    """The replica contacted does not hold the lease; retry at the holder."""

    def __init__(self, range_id: int, leaseholder_node: Optional[int]):
        super().__init__(f"r{range_id}: not leaseholder")
        self.range_id = range_id
        self.leaseholder_node = leaseholder_node


class FollowerReadNotAvailableError(DatabaseError):
    """The follower's closed timestamp has not reached the read timestamp."""

    def __init__(self, range_id: int, read_ts, closed_ts):
        super().__init__(
            f"r{range_id}: follower read at {read_ts} above closed {closed_ts}")
        self.range_id = range_id
        self.read_ts = read_ts
        self.closed_ts = closed_ts


class StaleReadBoundError(DatabaseError):
    """A bounded-staleness read could not be served within its bound."""


class UniqueViolationError(DatabaseError):
    """A uniqueness constraint would be violated."""

    def __init__(self, table: str, column, value):
        super().__init__(
            f"duplicate key value violates unique constraint on "
            f"{table}.{column}: {value!r}")
        self.table = table
        self.column = column
        self.value = value


class ForeignKeyViolationError(DatabaseError):
    """A referenced parent row does not exist."""

    def __init__(self, table: str, column: str, value):
        super().__init__(
            f"insert or update on {table}.{column} violates foreign key: "
            f"no parent row {value!r}")
        self.table = table
        self.column = column
        self.value = value


class SchemaError(DatabaseError):
    """Catalog-level misuse (unknown table, bad locality change, ...)."""


class SqlSyntaxError(DatabaseError):
    """The SQL text could not be parsed."""


class ClockError(DatabaseError):
    """Base class for clock-safety violations.

    Raised by the clock-sync monitor (``repro.cluster.clocksync``) when
    a node's clock is observed outside the ``max_clock_offset`` contract
    the uncertainty/commit-wait machinery depends on.  Serving through a
    violated contract risks silently wrong answers, so these errors fail
    the request instead (CRDB crashes the offending node).
    """


class ClockOutlierRejectedError(ClockError, TransactionRetryError):
    """A replica refused a request timestamp too far ahead of its own
    clock: the sender's clock must be beyond the tolerated bound, and
    accepting the write would let it escape commit-wait (CRDB's
    "remote wall time is too far ahead" check).  Subclasses
    :class:`TransactionRetryError` so coordinators retry — pointless on
    a still-broken clock, after which the transaction surfaces as
    aborted rather than as a wrong answer.
    """

    def __init__(self, node_id: int, request_physical: float,
                 local_physical: float):
        TransactionRetryError.__init__(
            self,
            f"node {node_id} rejected request ts {request_physical:.1f}ms: "
            f"{request_physical - local_physical:.1f}ms ahead of local "
            f"clock (beyond max_clock_offset)")
        self.node_id = node_id
        self.request_physical = request_physical
        self.local_physical = local_physical


class ClockFencedError(ClockError, RangeUnavailableError):
    """The node has self-fenced: its own measured clock offset exceeded
    the tolerated bound, so it stops serving reads and writes entirely
    rather than serve through a broken uncertainty contract."""

    def __init__(self, node_id: int):
        RangeUnavailableError.__init__(
            self, f"node {node_id} is clock-fenced")
        self.node_id = node_id


class OverloadError(DatabaseError):
    """Base class for load-shedding errors raised by admission control.

    Work rejected with an ``OverloadError`` was *never admitted* (or was
    shed before doing further damage): the client should back off and
    reduce its offered load rather than retry immediately (CRDB's
    admission-control rejections / gRPC ``RESOURCE_EXHAUSTED``).
    """


class AdmissionRejectedError(OverloadError):
    """The admission queue rejected the request outright (queue full or
    the token bucket cannot cover it before the deadline)."""

    def __init__(self, queue: str, reason: str):
        super().__init__(f"admission rejected by {queue}: {reason}")
        self.queue = queue
        self.reason = reason


class RetryBudgetExhaustedError(OverloadError):
    """The per-tenant retry budget is spent; retrying now would only
    amplify the overload (metastable-failure protection)."""

    def __init__(self, tenant: str, attempts: int):
        super().__init__(
            f"retry budget exhausted for tenant {tenant!r} "
            f"after {attempts} attempt(s)")
        self.tenant = tenant
        self.attempts = attempts


class DeadlineExceededError(DatabaseError):
    """The operation's deadline passed before it could complete.

    Raised *before* issuing (or retrying) work that cannot finish in
    time, so expired requests fail fast instead of burning backoff and
    server capacity past the point anyone is waiting for the answer.
    Not retryable: the caller's deadline has passed by construction.
    """

    def __init__(self, op: str, deadline_ms: float, now_ms: float):
        super().__init__(
            f"deadline exceeded for {op}: deadline {deadline_ms:.1f}ms, "
            f"now {now_ms:.1f}ms")
        self.op = op
        self.deadline_ms = deadline_ms
        self.now_ms = now_ms
