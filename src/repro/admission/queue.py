"""SQL-gateway admission queue.

Requests arrive open-loop; the queue admits them at the token bucket's
sustained rate, orders waiters by priority (FIFO within a priority
class), bounds its depth (excess arrivals are rejected immediately),
and sheds waiters whose deadline expires before a token frees up.
Every decision is a deterministic function of sim time and arrival
order, so overload sweeps are byte-reproducible.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from ..errors import AdmissionRejectedError, DeadlineExceededError
from ..sim.core import Future, Simulator
from .tokens import TokenBucket

__all__ = ["AdmissionQueue", "Priority"]


class Priority:
    """Smaller value admits first; FIFO sequence breaks ties."""
    HIGH = 0
    NORMAL = 1
    LOW = 2


class _Waiter:
    __slots__ = ("priority", "seq", "future", "deadline_ms",
                 "enqueued_ms", "expiry_event", "done")

    def __init__(self, priority, seq, future, deadline_ms, enqueued_ms):
        self.priority = priority
        self.seq = seq
        self.future = future
        self.deadline_ms = deadline_ms
        self.enqueued_ms = enqueued_ms
        self.expiry_event = None
        self.done = False

    def __lt__(self, other: "_Waiter") -> bool:
        return (self.priority, self.seq) < (other.priority, other.seq)


class AdmissionQueue:
    """Token-bucket admission queue for one (tenant, region) pair.

    ``admit()`` returns a :class:`Future` that resolves with the queue
    wait in ms once the request is admitted, or rejects with:

    - :class:`AdmissionRejectedError` — queue already holds
      ``max_depth`` waiters (fail fast, the cheapest possible "no");
    - :class:`DeadlineExceededError` — the waiter's deadline passed
      while queued (shed; no token is consumed for it).

    ``ordering="fifo"`` ignores priorities (everything is NORMAL).
    """

    def __init__(self, sim: Simulator, name: str, bucket: TokenBucket,
                 max_depth: int = 64, ordering: str = "priority",
                 registry=None):
        self.sim = sim
        self.name = name
        self.bucket = bucket
        self.max_depth = max_depth
        self.ordering = ordering
        self._waiters: List[_Waiter] = []
        self._seq = 0
        self._pump_event = None
        if registry is not None:
            self._c_admitted = registry.counter("admission.admitted",
                                                queue=name)
            self._c_rejected = registry.counter("admission.rejected",
                                                queue=name,
                                                reason="queue_full")
            self._c_shed = registry.counter("admission.shed", queue=name)
            self._g_depth = registry.gauge("admission.queue_depth",
                                           queue=name)
            self._h_wait = registry.histogram("admission.wait_ms",
                                              queue=name)
        else:
            self._c_admitted = self._c_rejected = None
            self._c_shed = self._g_depth = self._h_wait = None

    # -- public API --------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._waiters)

    def admit(self, priority: int = Priority.NORMAL,
              deadline_ms: Optional[float] = None) -> Future:
        """Future resolving (with queue wait ms) when a token is granted."""
        if self.ordering == "fifo":
            priority = Priority.NORMAL
        now = self.sim.now
        fut = Future(self.sim)
        if deadline_ms is not None and now >= deadline_ms:
            fut.reject(DeadlineExceededError("admission", deadline_ms, now))
            return fut
        if not self._waiters and self.bucket.try_take(now):
            # Fast path: token in hand, nobody queued ahead.
            if self._c_admitted is not None:
                self._c_admitted.inc()
                self._h_wait.observe(0.0)
            fut.resolve(0.0)
            return fut
        if len(self._waiters) >= self.max_depth:
            if self._c_rejected is not None:
                self._c_rejected.inc()
            fut.reject(AdmissionRejectedError(
                self.name, f"queue full (depth {self.max_depth})"))
            return fut
        waiter = _Waiter(priority, self._seq, fut, deadline_ms, now)
        self._seq += 1
        heapq.heappush(self._waiters, waiter)
        if deadline_ms is not None:
            waiter.expiry_event = self.sim.call_after(
                deadline_ms - now, self._expire, waiter)
        if self._g_depth is not None:
            self._g_depth.set(len(self._waiters))
        self._schedule_pump()
        return fut

    # -- internals ---------------------------------------------------------

    def _expire(self, waiter: _Waiter) -> None:
        if waiter.done:
            return
        waiter.done = True
        if self._c_shed is not None:
            self._c_shed.inc()
        waiter.future.reject(DeadlineExceededError(
            "admission", waiter.deadline_ms, self.sim.now))
        # Lazily removed from the heap by _pump; update depth now so the
        # gauge reflects live (non-shed) waiters.
        self._compact()

    def _compact(self) -> None:
        if self._waiters and all(w.done for w in self._waiters):
            self._waiters.clear()
        if self._g_depth is not None:
            self._g_depth.set(sum(1 for w in self._waiters if not w.done))

    def _schedule_pump(self) -> None:
        if self._pump_event is not None or not self._waiters:
            return
        delay = self.bucket.time_until(1.0, self.sim.now)
        self._pump_event = self.sim.call_after(delay, self._pump)

    def _pump(self) -> None:
        self._pump_event = None
        now = self.sim.now
        while self._waiters:
            waiter = self._waiters[0]
            if waiter.done:
                heapq.heappop(self._waiters)
                continue
            if not self.bucket.try_take(now):
                break
            heapq.heappop(self._waiters)
            waiter.done = True
            if waiter.expiry_event is not None:
                self.sim.cancel(waiter.expiry_event)
            wait_ms = now - waiter.enqueued_ms
            if self._c_admitted is not None:
                self._c_admitted.inc()
                self._h_wait.observe(wait_ms)
            waiter.future.resolve(wait_ms)
        if self._g_depth is not None:
            self._g_depth.set(sum(1 for w in self._waiters if not w.done))
        self._schedule_pump()
