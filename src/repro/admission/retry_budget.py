"""Per-tenant retry budget (gRPC-style retry throttling).

Every successful operation deposits a small credit; every retry spends
one token.  When the budget is empty, retries fail fast with
:class:`RetryBudgetExhaustedError` instead of piling onto an already
overloaded system — the feedback loop that turns a transient overload
into a metastable failure is cut at the client.
"""

from __future__ import annotations

from ..errors import RetryBudgetExhaustedError

__all__ = ["RetryBudget"]


class RetryBudget:
    """Token-counting retry throttle for one tenant."""

    def __init__(self, max_tokens: float = 10.0, success_credit: float = 0.1,
                 tenant: str = "default", registry=None):
        self.max_tokens = max_tokens
        self.success_credit = success_credit
        self.tenant = tenant
        self.tokens = max_tokens
        if registry is not None:
            self._c_spent = registry.counter("retry_budget.spent",
                                             tenant=tenant)
            self._c_exhausted = registry.counter("retry_budget.exhausted",
                                                 tenant=tenant)
            self._g_tokens = registry.gauge("retry_budget.tokens",
                                            tenant=tenant)
            self._g_tokens.set(self.tokens)
        else:
            self._c_spent = self._c_exhausted = self._g_tokens = None

    def on_success(self) -> None:
        """An operation succeeded; replenish a fractional credit."""
        self.tokens = min(self.max_tokens,
                          self.tokens + self.success_credit)
        if self._g_tokens is not None:
            self._g_tokens.set(self.tokens)

    def try_spend(self) -> bool:
        """Spend one token for a retry; False when the budget is dry."""
        if self.tokens < 1.0:
            if self._c_exhausted is not None:
                self._c_exhausted.inc()
            return False
        self.tokens -= 1.0
        if self._c_spent is not None:
            self._c_spent.inc()
            self._g_tokens.set(self.tokens)
        return True

    def check(self, attempts: int) -> None:
        """Spend or raise :class:`RetryBudgetExhaustedError`."""
        if not self.try_spend():
            raise RetryBudgetExhaustedError(self.tenant, attempts)
