"""Deterministic token bucket on simulator time.

Refill is computed lazily from elapsed sim time (no timer events), so a
bucket costs nothing while idle and its state is a pure function of the
observation times — byte-deterministic across runs by construction.
"""

from __future__ import annotations

__all__ = ["TokenBucket"]


class TokenBucket:
    """Token bucket with ``rate_per_s`` sustained rate and ``burst`` cap.

    All times are simulator milliseconds.  Tokens may be fractional;
    ``try_take`` only succeeds when the full amount is available (no
    debt), which keeps rejection decisions crisp and testable.
    """

    def __init__(self, rate_per_s: float, burst: float,
                 now_ms: float = 0.0, initial: float = None):
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._tokens = burst if initial is None else min(initial, burst)
        self._last_ms = now_ms

    def _refill(self, now_ms: float) -> None:
        if now_ms <= self._last_ms:
            return
        self._tokens = min(
            self.burst,
            self._tokens + (now_ms - self._last_ms) * self.rate_per_s / 1000.0)
        self._last_ms = now_ms

    def available(self, now_ms: float) -> float:
        """Tokens available at ``now_ms`` (refills as a side effect)."""
        self._refill(now_ms)
        return self._tokens

    def try_take(self, now_ms: float, n: float = 1.0) -> bool:
        """Take ``n`` tokens if fully available; False otherwise."""
        self._refill(now_ms)
        if self._tokens + 1e-9 < n:
            return False
        self._tokens -= n
        return True

    def give(self, n: float = 1.0) -> None:
        """Return tokens (e.g. for work shed before it consumed capacity)."""
        self._tokens = min(self.burst, self._tokens + n)

    def time_until(self, n: float, now_ms: float) -> float:
        """Milliseconds until ``n`` tokens will be available (0 if now)."""
        self._refill(now_ms)
        deficit = n - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit * 1000.0 / self.rate_per_s
