"""Cluster-level admission controller.

The controller is the single attachment point for every backpressure
mechanism: per-(tenant, region) gateway admission queues, per-store
work queues, and per-tenant retry budgets.  It is installed on a
cluster with :func:`install_admission`; ``cluster.admission`` stays
``None`` by default so benchmarks and goldens that predate admission
control are byte-identical (the hot paths do one ``is None`` check).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .queue import AdmissionQueue, Priority
from .retry_budget import RetryBudget
from .store_queue import StoreWorkQueue
from .tokens import TokenBucket

__all__ = ["AdmissionConfig", "AdmissionController", "install_admission"]


@dataclass
class AdmissionConfig:
    """Knobs for the admission subsystem (docs/API.md)."""

    #: Sustained gateway admission rate per (tenant, region) queue.
    rate_per_s: float = 1000.0
    #: Token-bucket burst per queue (requests admitted instantly after idle).
    burst: float = 32.0
    #: Bounded gateway queue depth; arrivals beyond it are rejected.
    max_queue_depth: int = 64
    #: "priority" (HIGH < NORMAL < LOW, FIFO within a class) or "fifo".
    ordering: str = "priority"
    #: Per-tenant rate overrides (tenant -> rate_per_s).
    tenant_rates: Dict[str, float] = field(default_factory=dict)
    #: Per-store evaluation slots and per-op service time: the store's
    #: sustained capacity is ``slots * 1000 / service_ms`` ops/s.
    store_slots: int = 2
    store_service_ms: float = 1.0
    #: Bounded store queue depth (None = unbounded, deadline-shed only).
    store_max_depth: Optional[int] = None
    #: Retry-budget sizing (gRPC-style: each success deposits a credit).
    retry_budget_tokens: float = 10.0
    retry_success_credit: float = 0.1
    #: Protection switches.  The store work queues always model the
    #: store's evaluation capacity; these gate the *protections* on top
    #: of it, so an "admission disabled" ablation faces the same
    #: capacity with no backpressure (the congestion-collapse baseline).
    gateway_enabled: bool = True
    retry_budget_enabled: bool = True


class AdmissionController:
    """Facade owning all admission state for one cluster."""

    def __init__(self, cluster, config: Optional[AdmissionConfig] = None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.config = config or AdmissionConfig()
        self.registry = getattr(cluster.sim.obs, "registry", None)
        self._queues: Dict[Tuple[str, str], AdmissionQueue] = {}
        self._store_queues: Dict[int, StoreWorkQueue] = {}
        self._budgets: Dict[str, RetryBudget] = {}

    # -- gateway admission -------------------------------------------------

    def queue_for(self, tenant: str, region: str) -> AdmissionQueue:
        key = (tenant, region)
        queue = self._queues.get(key)
        if queue is None:
            cfg = self.config
            rate = cfg.tenant_rates.get(tenant, cfg.rate_per_s)
            bucket = TokenBucket(rate, cfg.burst, now_ms=self.sim.now)
            queue = AdmissionQueue(self.sim, f"{tenant}/{region}", bucket,
                                   max_depth=cfg.max_queue_depth,
                                   ordering=cfg.ordering,
                                   registry=self.registry)
            self._queues[key] = queue
        return queue

    def admit_co(self, tenant: str, region: str,
                 priority: int = Priority.NORMAL,
                 deadline_ms: Optional[float] = None):
        """Coroutine: wait for gateway admission (``yield from``).

        Returns the queue wait in ms; raises ``AdmissionRejectedError``
        or ``DeadlineExceededError`` when the request is shed."""
        if not self.config.gateway_enabled:
            return 0.0
        wait_ms = yield self.queue_for(tenant, region).admit(
            priority=priority, deadline_ms=deadline_ms)
        return wait_ms

    # -- store work queues -------------------------------------------------

    def store_queue(self, node_id: int) -> StoreWorkQueue:
        queue = self._store_queues.get(node_id)
        if queue is None:
            cfg = self.config
            queue = StoreWorkQueue(self.sim, node_id, slots=cfg.store_slots,
                                   service_ms=cfg.store_service_ms,
                                   max_depth=cfg.store_max_depth,
                                   registry=self.registry)
            self._store_queues[node_id] = queue
        return queue

    def store_work(self, node_id: int, deadline_ms: Optional[float] = None,
                   priority: int = Priority.NORMAL,
                   service_ms: Optional[float] = None):
        """Coroutine: run one gated unit of store work (``yield from``)."""
        yield from self.store_queue(node_id).work(
            service_ms=service_ms, deadline_ms=deadline_ms,
            priority=priority)

    # -- retry budgets -----------------------------------------------------

    def retry_budget(self, tenant: str = "default"
                     ) -> Optional[RetryBudget]:
        if not self.config.retry_budget_enabled:
            return None
        budget = self._budgets.get(tenant)
        if budget is None:
            cfg = self.config
            budget = RetryBudget(max_tokens=cfg.retry_budget_tokens,
                                 success_credit=cfg.retry_success_credit,
                                 tenant=tenant, registry=self.registry)
            self._budgets[tenant] = budget
        return budget

    # -- introspection -----------------------------------------------------

    def totals(self) -> Dict[str, int]:
        """Deterministic admit/reject/shed totals across all queues."""
        reg = self.registry
        out = {"admitted": 0, "rejected": 0, "shed": 0}
        if reg is None:
            return out
        counters = reg.snapshot().get("counters", {})
        for key, value in sorted(counters.items()):
            if key.startswith("admission.admitted"):
                out["admitted"] += int(value)
            elif key.startswith("admission.rejected"):
                out["rejected"] += int(value)
            elif key.startswith("admission.shed"):
                out["shed"] += int(value)
        return out


def install_admission(cluster, config: Optional[AdmissionConfig] = None
                      ) -> AdmissionController:
    """Attach an :class:`AdmissionController` to ``cluster`` and return it."""
    controller = AdmissionController(cluster, config)
    cluster.admission = controller
    return controller
