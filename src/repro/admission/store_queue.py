"""Per-store work queue gating KV command evaluation.

Each store exposes ``slots`` concurrent evaluation slots; every gated
command holds a slot for ``service_ms`` (its modeled CPU/IO cost).
When all slots are busy, work queues in (priority, FIFO) order — a hot
leaseholder backpressures callers instead of melting.  Work whose
deadline expires while queued is shed without ever occupying a slot,
which is the property that prevents congestion collapse: the store
never burns capacity on answers nobody is waiting for.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from ..errors import AdmissionRejectedError, DeadlineExceededError
from ..sim.core import Future, Simulator
from .queue import Priority

__all__ = ["StoreWorkQueue"]


class _Work:
    __slots__ = ("priority", "seq", "future", "deadline_ms",
                 "enqueued_ms", "expiry_event", "done")

    def __init__(self, priority, seq, future, deadline_ms, enqueued_ms):
        self.priority = priority
        self.seq = seq
        self.future = future
        self.deadline_ms = deadline_ms
        self.enqueued_ms = enqueued_ms
        self.expiry_event = None
        self.done = False

    def __lt__(self, other: "_Work") -> bool:
        return (self.priority, self.seq) < (other.priority, other.seq)


class StoreWorkQueue:
    """Slot-based work queue for one store (node)."""

    def __init__(self, sim: Simulator, node_id: int, slots: int = 2,
                 service_ms: float = 1.0, max_depth: Optional[int] = None,
                 registry=None):
        self.sim = sim
        self.node_id = node_id
        self.slots = slots
        self.service_ms = service_ms
        self.max_depth = max_depth
        self._active = 0
        self._seq = 0
        self._waiters: List[_Work] = []
        if registry is not None:
            self._c_admitted = registry.counter("store.work_admitted",
                                                node=node_id)
            self._c_shed = registry.counter("store.work_shed", node=node_id)
            self._c_rejected = registry.counter("store.work_rejected",
                                                node=node_id)
            self._g_depth = registry.gauge("store.queue_depth", node=node_id)
            self._g_busy = registry.gauge("store.slots_busy", node=node_id)
            self._h_wait = registry.histogram("store.wait_ms", node=node_id)
        else:
            self._c_admitted = self._c_shed = self._c_rejected = None
            self._g_depth = self._g_busy = self._h_wait = None

    @property
    def queued(self) -> int:
        return sum(1 for w in self._waiters if not w.done)

    @property
    def capacity_per_s(self) -> float:
        """Sustained evaluation throughput of this store (ops/s)."""
        return self.slots * 1000.0 / self.service_ms

    # -- slot protocol -----------------------------------------------------

    def work(self, service_ms: Optional[float] = None,
             deadline_ms: Optional[float] = None,
             priority: int = Priority.NORMAL):
        """Coroutine: acquire a slot, hold it for the service time,
        release.  Use as ``yield from wq.work(...)`` inside a serve
        path.  Raises :class:`DeadlineExceededError` if the deadline
        passes while queued and :class:`AdmissionRejectedError` when
        ``max_depth`` is bounded and exceeded."""
        yield self._acquire(priority, deadline_ms)
        try:
            yield self.sim.sleep(self.service_ms
                                 if service_ms is None else service_ms)
        finally:
            self._release()

    def _acquire(self, priority: int, deadline_ms: Optional[float]) -> Future:
        now = self.sim.now
        fut = Future(self.sim)
        if deadline_ms is not None and now >= deadline_ms:
            if self._c_shed is not None:
                self._c_shed.inc()
            fut.reject(DeadlineExceededError(
                f"store[{self.node_id}]", deadline_ms, now))
            return fut
        if self._active < self.slots and not self._waiters:
            self._active += 1
            if self._c_admitted is not None:
                self._c_admitted.inc()
                self._h_wait.observe(0.0)
                self._g_busy.set(self._active)
            fut.resolve(0.0)
            return fut
        if self.max_depth is not None and self.queued >= self.max_depth:
            if self._c_rejected is not None:
                self._c_rejected.inc()
            fut.reject(AdmissionRejectedError(
                f"store[{self.node_id}]",
                f"work queue full (depth {self.max_depth})"))
            return fut
        work = _Work(priority, self._seq, fut, deadline_ms, now)
        self._seq += 1
        heapq.heappush(self._waiters, work)
        if deadline_ms is not None:
            work.expiry_event = self.sim.call_after(
                deadline_ms - now, self._expire, work)
        if self._g_depth is not None:
            self._g_depth.set(self.queued)
        return fut

    def _release(self) -> None:
        self._active -= 1
        self._grant()

    def _expire(self, work: _Work) -> None:
        if work.done:
            return
        work.done = True
        if self._c_shed is not None:
            self._c_shed.inc()
        work.future.reject(DeadlineExceededError(
            f"store[{self.node_id}]", work.deadline_ms, self.sim.now))
        if self._g_depth is not None:
            self._g_depth.set(self.queued)

    def _grant(self) -> None:
        now = self.sim.now
        while self._active < self.slots and self._waiters:
            work = heapq.heappop(self._waiters)
            if work.done:
                continue
            work.done = True
            if work.expiry_event is not None:
                self.sim.cancel(work.expiry_event)
            self._active += 1
            if self._c_admitted is not None:
                self._c_admitted.inc()
                self._h_wait.observe(now - work.enqueued_ms)
            work.future.resolve(now - work.enqueued_ms)
        if self._g_depth is not None:
            self._g_depth.set(self.queued)
            self._g_busy.set(self._active)
