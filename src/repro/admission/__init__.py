"""Admission control and overload protection.

CRDB-style backpressure threaded through every layer of the stack:

- :class:`TokenBucket` — deterministic rate/burst accounting on sim time.
- :class:`AdmissionQueue` — SQL-gateway admission with per-tenant/
  per-region token buckets, priority/FIFO ordering and bounded depth.
- :class:`StoreWorkQueue` — per-store slot model gating KV command
  evaluation so a hot leaseholder queues (and sheds expired work)
  instead of melting.
- :class:`RetryBudget` — per-tenant retry throttling so retry storms
  cannot turn a transient overload into a metastable failure.
- :class:`AdmissionController` — the per-cluster facade wiring the
  pieces together; installed via :func:`install_admission` and kept
  ``None`` by default so the fast path is untouched when disabled.
"""

from .tokens import TokenBucket
from .queue import AdmissionQueue, Priority
from .store_queue import StoreWorkQueue
from .retry_budget import RetryBudget
from .controller import AdmissionConfig, AdmissionController, install_admission

__all__ = [
    "TokenBucket",
    "AdmissionQueue",
    "Priority",
    "StoreWorkQueue",
    "RetryBudget",
    "AdmissionConfig",
    "AdmissionController",
    "install_admission",
]
