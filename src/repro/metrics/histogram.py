"""Latency recording and summarization for experiments.

:class:`LatencyRecorder` is a thin view over
:class:`~repro.obs.metrics.Histogram` instruments on a metrics
registry: each label tuple maps to one ``latency_ms`` histogram whose
raw samples back :class:`Summary` and :func:`cdf_points` exactly as the
old private sample lists did.  Recorders used by the fig3–fig6 harness
attach to the simulation's shared registry, so the same numbers show up
in ``python -m repro metrics``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import Histogram, MetricsRegistry

__all__ = ["LatencyRecorder", "Summary", "cdf_points"]


class Summary:
    """Percentile summary of a latency sample."""

    def __init__(self, samples: Sequence[float]):
        self.count = len(samples)
        if self.count:
            array = np.asarray(samples, dtype=float)
            self.mean = float(array.mean())
            self.p50 = float(np.percentile(array, 50))
            self.p90 = float(np.percentile(array, 90))
            self.p95 = float(np.percentile(array, 95))
            self.p99 = float(np.percentile(array, 99))
            self.max = float(array.max())
            self.min = float(array.min())
        else:
            self.mean = self.p50 = self.p90 = self.p95 = self.p99 = 0.0
            self.max = self.min = 0.0

    def row(self) -> Dict[str, float]:
        return {"count": self.count, "mean": self.mean, "p50": self.p50,
                "p90": self.p90, "p95": self.p95, "p99": self.p99,
                "max": self.max}

    def __repr__(self) -> str:
        return (f"Summary(n={self.count} p50={self.p50:.1f} "
                f"p90={self.p90:.1f} p99={self.p99:.1f} max={self.max:.1f})")


def cdf_points(samples: Sequence[float],
               points: int = 200) -> List[Tuple[float, float]]:
    """(latency, cumulative fraction) pairs for plotting CDFs (Fig 5)."""
    if not samples:
        return []
    array = np.sort(np.asarray(samples, dtype=float))
    n = len(array)
    indices = np.unique(np.linspace(0, n - 1, min(points, n)).astype(int))
    return [(float(array[i]), float((i + 1) / n)) for i in indices]


class LatencyRecorder:
    """Collects latency samples keyed by a label tuple.

    Labels are free-form, e.g. ``("read", "local")`` or
    ``("write", "us-east1")``.  Throughput is derived from the recorded
    operation count and the simulated duration.  Samples live in
    ``latency_ms`` histograms on ``registry`` (a private registry when
    none is given, so standalone recorders keep working).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = (registry if registry is not None
                         else MetricsRegistry())
        #: label tuple -> backing histogram (the registry key flattens
        #: the tuple, so the real tuples are tracked here).
        self._hists: Dict[Tuple, Histogram] = {}
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    def _hist(self, label: Tuple) -> Histogram:
        hist = self._hists.get(label)
        if hist is None:
            hist = self.registry.histogram(
                "latency_ms", label="/".join(str(p) for p in label))
            self._hists[label] = hist
        return hist

    def record(self, label: Tuple, latency_ms: float) -> None:
        self._hist(tuple(label)).observe(latency_ms)

    def labels(self) -> List[Tuple]:
        return sorted(self._hists.keys())

    def samples(self, *label_parts) -> List[float]:
        """All samples whose label starts with ``label_parts``."""
        out: List[float] = []
        for label in sorted(self._hists):
            if label[:len(label_parts)] == tuple(label_parts):
                out.extend(self._hists[label].samples)
        return out

    def summary(self, *label_parts) -> Summary:
        return Summary(self.samples(*label_parts))

    def count(self, *label_parts) -> int:
        return len(self.samples(*label_parts))

    def total_ops(self) -> int:
        return sum(hist.count for hist in self._hists.values())

    def throughput_per_s(self) -> float:
        if self.started_at is None or self.finished_at is None:
            return 0.0
        elapsed_ms = self.finished_at - self.started_at
        if elapsed_ms <= 0:
            return 0.0
        return self.total_ops() / (elapsed_ms / 1000.0)

    def merged(self, other: "LatencyRecorder") -> "LatencyRecorder":
        """A new standalone recorder holding both sample sets.

        The recording window is the union of the inputs' windows, so
        ``throughput_per_s`` stays meaningful on the merge (it used to
        come back 0.0 because the window was dropped).
        """
        out = LatencyRecorder()
        for src in (self, other):
            for label, hist in src._hists.items():
                for value in hist.samples:
                    out.record(label, value)
        starts = [s.started_at for s in (self, other)
                  if s.started_at is not None]
        finishes = [s.finished_at for s in (self, other)
                    if s.finished_at is not None]
        out.started_at = min(starts) if starts else None
        out.finished_at = max(finishes) if finishes else None
        return out
