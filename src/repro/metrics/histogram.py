"""Latency recording and summarization for experiments."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["LatencyRecorder", "Summary", "cdf_points"]


class Summary:
    """Percentile summary of a latency sample."""

    def __init__(self, samples: Sequence[float]):
        self.count = len(samples)
        if self.count:
            array = np.asarray(samples, dtype=float)
            self.mean = float(array.mean())
            self.p50 = float(np.percentile(array, 50))
            self.p90 = float(np.percentile(array, 90))
            self.p95 = float(np.percentile(array, 95))
            self.p99 = float(np.percentile(array, 99))
            self.max = float(array.max())
            self.min = float(array.min())
        else:
            self.mean = self.p50 = self.p90 = self.p95 = self.p99 = 0.0
            self.max = self.min = 0.0

    def row(self) -> Dict[str, float]:
        return {"count": self.count, "mean": self.mean, "p50": self.p50,
                "p90": self.p90, "p95": self.p95, "p99": self.p99,
                "max": self.max}

    def __repr__(self) -> str:
        return (f"Summary(n={self.count} p50={self.p50:.1f} "
                f"p90={self.p90:.1f} p99={self.p99:.1f} max={self.max:.1f})")


def cdf_points(samples: Sequence[float],
               points: int = 200) -> List[Tuple[float, float]]:
    """(latency, cumulative fraction) pairs for plotting CDFs (Fig 5)."""
    if not samples:
        return []
    array = np.sort(np.asarray(samples, dtype=float))
    n = len(array)
    indices = np.unique(np.linspace(0, n - 1, min(points, n)).astype(int))
    return [(float(array[i]), float((i + 1) / n)) for i in indices]


class LatencyRecorder:
    """Collects latency samples keyed by a label tuple.

    Labels are free-form, e.g. ``("read", "local")`` or
    ``("write", "us-east1")``.  Throughput is derived from the recorded
    operation count and the simulated duration.
    """

    def __init__(self):
        self._samples: Dict[Tuple, List[float]] = {}
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    def record(self, label: Tuple, latency_ms: float) -> None:
        self._samples.setdefault(tuple(label), []).append(latency_ms)

    def labels(self) -> List[Tuple]:
        return sorted(self._samples.keys())

    def samples(self, *label_parts) -> List[float]:
        """All samples whose label starts with ``label_parts``."""
        out: List[float] = []
        for label, values in self._samples.items():
            if label[:len(label_parts)] == tuple(label_parts):
                out.extend(values)
        return out

    def summary(self, *label_parts) -> Summary:
        return Summary(self.samples(*label_parts))

    def count(self, *label_parts) -> int:
        return len(self.samples(*label_parts))

    def total_ops(self) -> int:
        return sum(len(v) for v in self._samples.values())

    def throughput_per_s(self) -> float:
        if self.started_at is None or self.finished_at is None:
            return 0.0
        elapsed_ms = self.finished_at - self.started_at
        if elapsed_ms <= 0:
            return 0.0
        return self.total_ops() / (elapsed_ms / 1000.0)

    def merged(self, other: "LatencyRecorder") -> "LatencyRecorder":
        out = LatencyRecorder()
        for src in (self, other):
            for label, values in src._samples.items():
                out._samples.setdefault(label, []).extend(values)
        return out
