"""Experiment metrics: latency recorders, summaries, CDFs, tables."""

from .histogram import LatencyRecorder, Summary, cdf_points
from .results import ResultTable

__all__ = ["LatencyRecorder", "Summary", "cdf_points", "ResultTable"]
