"""Result tables: render experiment output the way the paper reports it."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["ResultTable"]


class ResultTable:
    """A simple fixed-width table for benchmark output."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}")
        self.rows.append([_fmt(v) for v in values])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [f"== {self.title} =="]
        header = "  ".join(c.ljust(widths[i])
                           for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)
