"""Locality-aware planning (paper §4).

Given a WHERE clause and the table's locality, the planner decides which
partitions a point query must visit:

1. region column (or its determinants, for computed columns) bound by
   the predicate → single-partition read;
2. lookup key unique + LOS enabled → local-first Locality Optimized
   Search;
3. otherwise → parallel fan-out.

It also plans the post-INSERT/UPDATE uniqueness checks, applying the
paper's three omission rules (§4.1): generated UUID values, constraints
that include the region column, and region columns computed from the
constrained columns.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..errors import SchemaError
from ..sql import ast
from ..sql.catalog import DEFAULT_PARTITION, Index, Table
from ..sql.eval import EvalEnv, columns_referenced, evaluate
from .plans import (
    FanoutMultiRead,
    FanoutPointRead,
    FullScan,
    LocalityOptimizedMultiRead,
    LocalityOptimizedRead,
    MultiPointRead,
    PartitionPointRead,
    UniquenessCheck,
)

__all__ = ["Planner", "equality_bindings"]


def equality_bindings(where: Optional[Any],
                      env: Optional[EvalEnv] = None) -> Dict[str, Any]:
    """Extract ``col = <constant>`` bindings from a WHERE clause."""
    bindings: Dict[str, Any] = {}
    if where is None:
        return bindings

    def visit(expr: Any) -> None:
        if isinstance(expr, ast.LogicalAnd):
            for part in expr.parts:
                visit(part)
            return
        if isinstance(expr, ast.Comparison) and expr.op == "=":
            left, right = expr.left, expr.right
            if isinstance(left, ast.ColumnRef) and not columns_referenced(right):
                bindings[left.name] = evaluate(right, {}, env)
            elif isinstance(right, ast.ColumnRef) and not columns_referenced(left):
                bindings[right.name] = evaluate(left, {}, env)

    visit(where)
    return bindings


class Planner:
    """Plans point queries and uniqueness checks for one table."""

    def __init__(self, table: Table, gateway_region: Optional[str] = None,
                 env: Optional[EvalEnv] = None):
        self.table = table
        self.gateway_region = gateway_region
        self.env = env or EvalEnv(gateway_region=gateway_region)

    # -- region inference --------------------------------------------------------

    def infer_partition(self, bindings: Dict[str, Any]) -> Optional[str]:
        """The target partition, if derivable from the bound columns."""
        region_col = self.table.region_column
        if region_col is None:
            return DEFAULT_PARTITION
        if region_col in bindings:
            return bindings[region_col]
        column = self.table.columns.get(region_col)
        if column is not None and column.computed is not None:
            needed = columns_referenced(column.computed)
            if needed and needed.issubset(bindings.keys()):
                return evaluate(column.computed, dict(bindings), self.env)
        return None

    # -- read planning --------------------------------------------------------------

    def plan_point_query(self, where: Optional[Any],
                         limit: Optional[int] = None) -> Any:
        """Plan a SELECT/UPDATE/DELETE row lookup."""
        in_plan = self._plan_in_list(where)
        if in_plan is not None:
            return in_plan
        bindings = equality_bindings(where, self.env)
        index = self._choose_index(bindings)
        if index is None:
            return FullScan(index=self.table.primary_index,
                            partitions=self._all_partitions(
                                self.table.primary_index),
                            predicate=where)
        key = tuple(bindings[c] for c in index.key_columns)
        partition = self.infer_partition(bindings)
        if not index.partitioned:
            return PartitionPointRead(index=index,
                                      partition=DEFAULT_PARTITION, key=key)
        if partition is not None:
            return PartitionPointRead(index=index, partition=partition,
                                      key=key)
        partitions = self._all_partitions(index)
        unique_lookup = index.unique or index.is_primary
        bounded = unique_lookup or (limit is not None and limit <= 1)
        if (bounded and self.table.locality_optimized_search
                and self.gateway_region in partitions):
            local = self.gateway_region
            remotes = [p for p in partitions if p != local]
            return LocalityOptimizedRead(index=index, key=key,
                                         local_partition=local,
                                         remote_partitions=remotes)
        return FanoutPointRead(index=index, key=key, partitions=partitions)

    def _plan_in_list(self, where: Optional[Any]) -> Optional[Any]:
        """§4.2: LOS generalizes to ``col IN (...)`` on a unique column —
        the result cardinality is bounded by the list length."""
        if not isinstance(where, ast.InList):
            return None
        column = where.column.name
        index = None
        primary = self.table.primary_index
        if primary.key_columns == (column,):
            index = primary
        else:
            for candidate in self.table.unique_indexes():
                if candidate.key_columns == (column,):
                    index = candidate
                    break
        if index is None:
            return None
        keys = [(evaluate(v, {}, self.env),) for v in where.values]
        if not index.partitioned:
            return MultiPointRead(index=index, partition=DEFAULT_PARTITION,
                                  keys=keys)
        # Partition inference: all keys in one region (computed column)?
        region_col = self.table.region_column
        column_def = self.table.columns.get(region_col)
        if column_def is not None and column_def.computed is not None:
            determinants = columns_referenced(column_def.computed)
            if determinants == {column}:
                by_partition: Dict[str, List] = {}
                for key in keys:
                    partition = evaluate(column_def.computed,
                                         {column: key[0]}, self.env)
                    by_partition.setdefault(partition, []).append(key)
                if len(by_partition) == 1:
                    partition, only = next(iter(by_partition.items()))
                    return MultiPointRead(index=index, partition=partition,
                                          keys=only)
        partitions = list(index.partitions.keys())
        if self.table.locality_optimized_search and \
                self.gateway_region in partitions:
            remotes = [p for p in partitions if p != self.gateway_region]
            return LocalityOptimizedMultiRead(
                index=index, keys=keys,
                local_partition=self.gateway_region,
                remote_partitions=remotes)
        return FanoutMultiRead(index=index, keys=keys,
                               partitions=partitions)

    def _choose_index(self, bindings: Dict[str, Any]) -> Optional[Index]:
        """Pick an index fully bound by the equality predicates."""
        primary = self.table.primary_index
        if all(c in bindings for c in primary.key_columns):
            return primary
        for index in self.table.unique_indexes():
            if all(c in bindings for c in index.key_columns):
                return index
        return None

    def _all_partitions(self, index: Index) -> List[str]:
        return list(index.partitions.keys())

    # -- uniqueness-check planning (§4.1) ----------------------------------------------

    def plan_uniqueness_checks(self, row: Dict[str, Any],
                               generated_columns: frozenset = frozenset(),
                               allow_pk: Optional[Tuple] = None,
                               changed_columns: Optional[frozenset] = None,
                               ) -> List[UniquenessCheck]:
        """Checks needed after writing ``row``.

        ``generated_columns`` are columns whose values this statement
        generated via ``gen_random_uuid()`` (rule 1: skip).
        ``changed_columns`` restricts checks to constraints whose columns
        were modified (UPDATE); None means all constraints (INSERT).
        ``allow_pk`` is the row's own primary key, tolerated as a match.
        """
        if self.table.suppress_uniqueness_checks:
            return []
        checks: List[UniquenessCheck] = []
        region_col = self.table.region_column
        constraints: List[Tuple[Index, Tuple[str, ...]]] = [
            (self.table.primary_index, self.table.primary_index.key_columns)]
        for index in self.table.unique_indexes():
            constraints.append((index, index.key_columns))

        for index, cols in constraints:
            if changed_columns is not None and not \
                    (set(cols) & set(changed_columns)):
                continue
            # Rule 1: generated UUID values cannot collide.
            if any(c in generated_columns for c in cols):
                continue
            key = tuple(row[c] for c in cols)
            if not index.partitioned:
                checks.append(UniquenessCheck(
                    index=index, key=key, partitions=[DEFAULT_PARTITION],
                    constraint=cols, reason="single partition",
                    allow_pk=allow_pk))
                continue
            home = row.get(region_col)
            # Rule 2: the region column is part of the constraint, so the
            # implicitly partitioned index already enforces it locally.
            if region_col in cols:
                checks.append(UniquenessCheck(
                    index=index, key=key, partitions=[home],
                    constraint=cols, reason="region in constraint",
                    allow_pk=allow_pk))
                continue
            # Rule 3: the region is computed from the constrained columns,
            # so per-partition uniqueness implies global uniqueness.
            region_column_def = self.table.columns.get(region_col)
            if region_column_def is not None and \
                    region_column_def.computed is not None:
                determinants = columns_referenced(region_column_def.computed)
                if determinants and determinants.issubset(set(cols)):
                    checks.append(UniquenessCheck(
                        index=index, key=key, partitions=[home],
                        constraint=cols, reason="region computed from key",
                        allow_pk=allow_pk))
                    continue
            # General case: one point lookup per region (§4.1).
            partitions = list(index.partitions.keys())
            checks.append(UniquenessCheck(
                index=index, key=key, partitions=partitions,
                constraint=cols, reason="global check", allow_pk=allow_pk))
        return checks
