"""Locality-aware SQL optimization: LOS and uniqueness checks (§4)."""

from .planner import Planner, equality_bindings
from .plans import (
    FanoutMultiRead,
    FanoutPointRead,
    FullScan,
    LocalityOptimizedMultiRead,
    LocalityOptimizedRead,
    MultiPointRead,
    PartitionPointRead,
    UniquenessCheck,
)

__all__ = [
    "Planner",
    "equality_bindings",
    "FanoutMultiRead",
    "FanoutPointRead",
    "LocalityOptimizedMultiRead",
    "MultiPointRead",
    "FullScan",
    "LocalityOptimizedRead",
    "PartitionPointRead",
    "UniquenessCheck",
]
