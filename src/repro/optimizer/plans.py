"""Query plan nodes.

Plans describe *where* a point query will look for rows:

* :class:`PartitionPointRead` — the target partition is known (the
  table is unpartitioned, the WHERE clause pins the region column, or
  the region is computable from bound columns);
* :class:`LocalityOptimizedRead` — Locality Optimized Search (§4.2):
  probe the gateway-local partition first and fan out to the remaining
  partitions only on a miss (legal because the lookup key is unique, so
  a local hit proves there is nothing to find elsewhere);
* :class:`FanoutPointRead` — probe every partition in parallel (the
  *Unoptimized* variant in Fig 4a);
* :class:`FullScan` — scan all partitions and filter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

__all__ = [
    "PartitionPointRead",
    "LocalityOptimizedRead",
    "FanoutPointRead",
    "MultiPointRead",
    "LocalityOptimizedMultiRead",
    "FanoutMultiRead",
    "FullScan",
    "UniquenessCheck",
]


@dataclass
class PartitionPointRead:
    index: Any
    partition: str
    key: Tuple

    def explain(self) -> str:
        where = self.partition or "default"
        return f"point-read {self.index.name}@{where} key={self.key}"


@dataclass
class LocalityOptimizedRead:
    index: Any
    key: Tuple
    local_partition: str
    remote_partitions: List[str]
    max_rows: int = 1

    def explain(self) -> str:
        return (f"locality-optimized-search {self.index.name} "
                f"local={self.local_partition} "
                f"remote={','.join(self.remote_partitions)} key={self.key}")


@dataclass
class FanoutPointRead:
    index: Any
    key: Tuple
    partitions: List[str]

    def explain(self) -> str:
        return (f"fan-out-read {self.index.name} "
                f"partitions={','.join(p or 'default' for p in self.partitions)} "
                f"key={self.key}")


@dataclass
class FullScan:
    index: Any
    partitions: List[str]
    predicate: Optional[Any] = None

    def explain(self) -> str:
        return (f"full-scan {self.index.name} "
                f"partitions={','.join(p or 'default' for p in self.partitions)}")


@dataclass
class MultiPointRead:
    """Several point lookups in one known partition (IN-list with the
    region bound or an unpartitioned table)."""

    index: Any
    partition: str
    keys: List[Tuple]

    def explain(self) -> str:
        where = self.partition or "default"
        return (f"multi-point-read {self.index.name}@{where} "
                f"{len(self.keys)} keys")


@dataclass
class LocalityOptimizedMultiRead:
    """§4.2's generalization of LOS to IN-lists: the result cardinality
    is bounded by the number of IN values, so probe every key in the
    local partition first and fan out only for the misses."""

    index: Any
    keys: List[Tuple]
    local_partition: str
    remote_partitions: List[str]

    def explain(self) -> str:
        return (f"locality-optimized-search {self.index.name} "
                f"{len(self.keys)} keys local={self.local_partition} "
                f"remote={','.join(self.remote_partitions)}")


@dataclass
class FanoutMultiRead:
    """IN-list lookup probing every partition for every key."""

    index: Any
    keys: List[Tuple]
    partitions: List[str]

    def explain(self) -> str:
        return (f"fan-out-read {self.index.name} {len(self.keys)} keys "
                f"partitions={','.join(p or 'default' for p in self.partitions)}")


@dataclass
class UniquenessCheck:
    """A post-write uniqueness check (§4.1): point lookups on ``index``
    for ``key`` in every listed partition, expecting no row other than
    ``allow_pk`` (for UPDATEs of the same row)."""

    index: Any
    key: Tuple
    partitions: List[str]
    constraint: Tuple[str, ...]
    reason: str = ""
    allow_pk: Optional[Tuple] = None

    @property
    def is_local_only(self) -> bool:
        return len(self.partitions) <= 1

    def explain(self) -> str:
        return (f"uniqueness-check {self.index.name} cols={self.constraint} "
                f"partitions={','.join(p or 'default' for p in self.partitions)}"
                f" ({self.reason})")
