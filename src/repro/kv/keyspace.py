"""Elastic keyspace: span-keyed range descriptors, splits, and merges.

CockroachDB addresses data by *key span*, not by a fixed table-to-range
map: every range owns a ``[start_key, end_key)`` slice of one totally
ordered keyspace, described by a :class:`RangeDescriptor` carrying a
generation number that is bumped on every boundary change.  Ranges
split when they grow too large or too hot and merge back when cold, and
clients route through a descriptor cache that is invalidated by
generation comparison plus ``RangeKeyMismatch`` retries (paper §3.1).

This module adds that machinery on top of the existing :class:`Range`:

* :func:`encode_key` — a type-tagged total order over the mixed
  Python keys the simulation uses (strings, ints, tuples, None);
* :class:`RangeDescriptor` — span + generation + per-range load;
* :class:`TableSpan` — the ordered descriptor list for one table /
  partition, with change subscriptions for cache invalidation;
* :class:`Keyspace` — the cluster-level registry executing splits and
  merges as synchronous (hence atomic, in the cooperative simulator)
  descriptor-generation bumps.

Elasticity is strictly opt-in: a provision-time :class:`Range` that was
never :meth:`adopted <Keyspace.adopt>` into a span has no descriptor,
and every serving and routing path treats it exactly as before.

Import discipline: this module imports ``Range``; ``range.py`` must
never import this module (ownership checks go through duck-typed
``self.descriptor`` methods).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from .range import Range

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.topology import Cluster

__all__ = ["encode_key", "MIN_KEY", "RangeLoad", "RangeDescriptor",
           "TableSpan", "Keyspace", "live_ranges"]

#: Encoded key below every real key (the first descriptor starts here).
MIN_KEY: Tuple = ()


#: Interned encodings: raw key -> encoded tuple.  Workloads route the
#: same keys over and over (every resolve re-encodes), so encoding once
#: and reusing the tuple removes an allocation from the routing fast
#: path.  Bounded so adversarial key churn cannot grow it unboundedly;
#: entries are immutable so a full cache simply stops interning.
_ENCODE_CACHE: dict = {}
_ENCODE_CACHE_MAX = 65536


def encode_key(key: Any) -> Tuple:
    """Encode ``key`` into a type-tagged tuple with a total order.

    The simulation's keys are heterogeneous (``"acct0"``, ``("u", 7)``,
    ints, ``None``); Python refuses to compare across types, so range
    bounds tag each value with a type rank first — CRDB's order-preserving
    key encoding, reduced to what tuples already give us.

    Encodings are interned: repeated calls with an equal key return the
    same tuple object.
    """
    try:
        cached = _ENCODE_CACHE.get(key)
    except TypeError:  # unhashable key (exotic fallback types only)
        return _encode_key_uncached(key)
    if cached is not None:
        return cached
    encoded = _encode_key_uncached(key)
    if len(_ENCODE_CACHE) < _ENCODE_CACHE_MAX:
        _ENCODE_CACHE[key] = encoded
    return encoded


def _encode_key_uncached(key: Any) -> Tuple:
    if key is None:
        return (0,)
    if isinstance(key, bool):
        return (1, int(key))
    if isinstance(key, (int, float)):
        return (1, key)
    if isinstance(key, bytes):
        return (2, key)
    if isinstance(key, str):
        return (3, key)
    if isinstance(key, tuple):
        return (4,) + tuple(encode_key(part) for part in key)
    # Fallback: order unknown types by repr within their type name.
    return (5, type(key).__name__, repr(key))


class RangeLoad:
    """Per-range request-rate tracking over fixed 1-second windows.

    Everything is driven off simulation time passed in by the caller
    (never wall time), so load-based split decisions are deterministic
    per seed.  ``qps`` reports the *previous completed* window — a
    stable figure that does not flap mid-window.  A bounded per-key
    histogram supports load-weighted split-point selection, and
    per-origin-region counts drive follow-the-workload rebalancing.
    """

    WINDOW_MS = 1000.0
    MAX_TRACKED_KEYS = 128

    __slots__ = ("_window", "_cur", "_prev", "_cur_keys", "_prev_keys",
                 "_cur_regions", "_prev_regions")

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self._window: Optional[int] = None
        self._cur = 0
        self._prev = 0
        self._cur_keys: Dict[Any, int] = {}
        self._prev_keys: Dict[Any, int] = {}
        self._cur_regions: Dict[str, int] = {}
        self._prev_regions: Dict[str, int] = {}

    def _roll(self, now_ms: float) -> None:
        idx = int(now_ms // self.WINDOW_MS)
        if self._window is None:
            self._window = idx
            return
        if idx == self._window:
            return
        if idx == self._window + 1:
            self._prev = self._cur
            self._prev_keys = self._cur_keys
            self._prev_regions = self._cur_regions
        else:  # idle gap: the last full window carried no traffic
            self._prev, self._prev_keys, self._prev_regions = 0, {}, {}
        self._cur, self._cur_keys, self._cur_regions = 0, {}, {}
        self._window = idx

    def record(self, now_ms: float, key: Any = None,
               region: Optional[str] = None) -> None:
        self._roll(now_ms)
        self._cur += 1
        if key is not None and (key in self._cur_keys
                                or len(self._cur_keys) < self.MAX_TRACKED_KEYS):
            self._cur_keys[key] = self._cur_keys.get(key, 0) + 1
        if region is not None:
            self._cur_regions[region] = self._cur_regions.get(region, 0) + 1

    def qps(self, now_ms: float) -> float:
        """Requests/sec over the previous completed window."""
        self._roll(now_ms)
        return self._prev * (1000.0 / self.WINDOW_MS)

    def _merged_keys(self) -> Dict[Any, int]:
        merged = dict(self._prev_keys)
        for key, count in self._cur_keys.items():
            merged[key] = merged.get(key, 0) + count
        return merged

    def split_key(self, now_ms: float) -> Optional[Any]:
        """The load-weighted median key: the smallest key (in encoded
        order) at which the cumulative request count reaches half the
        total.  A split there sends ~half the observed load each way.
        Returns ``None`` when fewer than two distinct keys were seen
        (a single hot key cannot be split apart)."""
        self._roll(now_ms)
        counts = self._merged_keys()
        if len(counts) < 2:
            return None
        ordered = sorted(counts.items(), key=lambda kv: encode_key(kv[0]))
        total = sum(count for _key, count in ordered)
        running = 0
        for idx, (key, count) in enumerate(ordered):
            running += count
            if running * 2 >= total:
                # Split at the *next* key so the median key itself stays
                # on the left; splitting at the first key is a no-op.
                if idx + 1 < len(ordered):
                    return ordered[idx + 1][0]
                return key
        return None  # pragma: no cover

    def dominant_region(self, now_ms: float) -> Tuple[Optional[str], float]:
        """The origin region sending the most requests and its share."""
        self._roll(now_ms)
        merged = dict(self._prev_regions)
        for region, count in self._cur_regions.items():
            merged[region] = merged.get(region, 0) + count
        total = sum(merged.values())
        if total == 0:
            return None, 0.0
        region = max(sorted(merged), key=lambda r: merged[r])
        return region, merged[region] / total


class RangeDescriptor:
    """One range's owned key span ``[start_key, end_key)`` plus the
    generation number bumped on every boundary change.

    ``end_key is None`` means +infinity; an *emptied* descriptor (after
    a merge subsumes its range) has ``start_key == end_key`` and owns
    nothing — the range lingers as a husk so transaction records
    anchored on it stay resolvable.
    """

    __slots__ = ("rng", "start_key", "end_key", "generation", "load")

    def __init__(self, rng: Range, start_key: Tuple,
                 end_key: Optional[Tuple], generation: int = 1):
        self.rng = rng
        self.start_key = start_key
        self.end_key = end_key
        self.generation = generation
        self.load = RangeLoad()

    @property
    def range_id(self) -> int:
        return self.rng.range_id

    def contains(self, ekey: Tuple) -> bool:
        if ekey < self.start_key:
            return False
        return self.end_key is None or ekey < self.end_key

    def contains_key(self, key: Any) -> bool:
        return self.contains(encode_key(key))

    def span_repr(self) -> str:
        start = "/Min" if self.start_key == MIN_KEY else repr(self.start_key)
        end = "/Max" if self.end_key is None else repr(self.end_key)
        if self.end_key is not None and self.start_key == self.end_key:
            return "(empty)"
        return f"[{start}, {end})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RangeDescriptor(r{self.range_id} {self.span_repr()} "
                f"gen={self.generation})")


class TableSpan:
    """The ordered, gapless descriptor list covering one logical table
    (or partition): the routing token clients hold instead of a Range.

    ``generation`` is the max descriptor generation ever installed; the
    DistSender's span cache compares it to decide staleness.  Subscribers
    (DistSender instances) are notified *synchronously* on every split /
    merge with the affected range ids, mirroring how CRDB gossips
    meta-range updates.
    """

    def __init__(self, name: str, keyspace: "Keyspace"):
        self.name = name
        self.keyspace = keyspace
        self.descriptors: List[RangeDescriptor] = []
        self._starts: List[Tuple] = []
        self.generation = 0
        self._subscribers: List[Callable[["TableSpan", List[int]], None]] = []

    def _rebuild(self) -> None:
        self.descriptors.sort(key=lambda d: d.start_key)
        self._starts = [d.start_key for d in self.descriptors]

    def descriptor_for_key(self, key: Any) -> RangeDescriptor:
        ekey = encode_key(key)
        idx = bisect_right(self._starts, ekey) - 1
        if idx < 0:
            idx = 0
        return self.descriptors[idx]

    def range_for_key(self, key: Any) -> Range:
        return self.descriptor_for_key(key).rng

    def ranges(self) -> List[Range]:
        return [descriptor.rng for descriptor in self.descriptors]

    def subscribe(self, fn: Callable[["TableSpan", List[int]], None]) -> None:
        if fn not in self._subscribers:
            self._subscribers.append(fn)

    def _notify(self, range_ids: List[int]) -> None:
        for fn in list(self._subscribers):
            fn(self, range_ids)

    # -- Range-compatible surface (schema changes, bulk loads) ---------------

    @property
    def range_id(self) -> int:
        """Stable identity for dict keys; spans use the first range's."""
        return self.descriptors[0].range_id

    @property
    def leaseholder_node(self):
        return self.descriptors[0].rng.leaseholder_node

    def bulk_ingest(self, items, ts) -> None:
        """Route a bulk ingest to each owning range (index backfills)."""
        per_range: Dict[int, list] = {}
        buckets: Dict[int, Range] = {}
        for key, value in items:
            rng = self.range_for_key(key)
            per_range.setdefault(rng.range_id, []).append((key, value))
            buckets[rng.range_id] = rng
        for range_id, chunk in per_range.items():
            buckets[range_id].bulk_ingest(chunk, ts)

    def destroy(self) -> None:
        for descriptor in self.descriptors:
            descriptor.rng.destroy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TableSpan({self.name!r}, {len(self.descriptors)} ranges, "
                f"gen={self.generation})")


def live_ranges(token: Any) -> List[Range]:
    """The live ranges behind a routing token (Range or TableSpan)."""
    if isinstance(token, TableSpan):
        return token.ranges()
    return [token]


class Keyspace:
    """Cluster-level registry of elastic spans; executes splits/merges.

    Splits and merges run synchronously — no simulated time passes, so
    in the cooperative simulator they are atomic with respect to every
    in-flight coroutine, the moral equivalent of CRDB applying a split
    trigger below Raft.  Requests already past routing discover the
    boundary change via ``RangeKeyMismatch`` (ownership is rechecked on
    every blocking serve loop iteration) and re-route.
    """

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.spans: Dict[str, TableSpan] = {}
        self.splits = 0
        self.merges = 0

    def _counter(self, name: str, **labels):
        return self.cluster.sim.obs.registry.counter(name, **labels)

    # -- adoption ------------------------------------------------------------

    def adopt(self, rng: Range, name: Optional[str] = None) -> TableSpan:
        """Wrap an existing provision-time range into a single-descriptor
        span covering the whole keyspace, enabling elasticity for it."""
        if rng.descriptor is not None:
            return rng.span
        span = TableSpan(name or rng.name, self)
        descriptor = RangeDescriptor(rng, MIN_KEY, None, generation=1)
        rng.descriptor = descriptor
        rng.span = span
        span.descriptors = [descriptor]
        span._rebuild()
        span.generation = 1
        self.spans[span.name] = span
        return span

    # -- split ---------------------------------------------------------------

    def split(self, descriptor: RangeDescriptor, split_key: Any,
              trigger: str = "manual") -> RangeDescriptor:
        """Split ``descriptor``'s range at ``split_key``.

        The right half moves to a freshly created range whose replicas
        sit on the same nodes (CRDB splits never move data between
        stores); MVCC histories, applied intents, and lock-table state
        for keys at or above the split point migrate to the child, both
        descriptors' generations bump, and span subscribers are told to
        invalidate.  The parent remembers the child as a *successor* so
        in-flight Raft commands that apply after the boundary moved are
        forwarded to the owning range.
        """
        parent = descriptor.rng
        span = parent.span
        ekey = encode_key(split_key)
        if not descriptor.contains(ekey) or ekey == descriptor.start_key:
            raise ValueError(
                f"split key {split_key!r} outside ({descriptor.span_repr()})"
                f" or at its start")
        if parent.leaseholder_node_id is None:
            raise ValueError(f"{parent.name}: cannot split without a lease")

        child = Range(self.cluster, policy=parent.policy,
                      proposal_timeout_ms=parent.group.proposal_timeout_ms)
        child.name = f"{span.name}#{child.range_id}"
        # Same stores, same replica types, same order as the parent.
        for node_id, peer in parent.group.peers.items():
            child.add_replica(peer.node, peer.replica_type)
        child.group.set_leader(parent.leaseholder_node_id)
        # _install_lease gives the child a conservatively fresh timestamp
        # cache (now + max_offset), covering any read the parent's lease
        # could have served over the moved keys.
        child._install_lease(parent.leaseholder_node_id)
        # Closed-timestamp state carries over: the parent promised those
        # timestamps for the whole old span, child included.
        child.closed_emitted = parent.closed_emitted
        for node_id, peer in parent.group.peers.items():
            child_peer = child.group.peers.get(node_id)
            if child_peer is not None:
                child_peer.closed_ts = peer.closed_ts
        # Move MVCC state (committed versions + applied intents) on every
        # replica, and the leaseholder's lock-table entries, to the child.
        def moves(key: Any) -> bool:
            return encode_key(key) >= ekey

        for node_id, replica in parent.replicas.items():
            child_replica = child.replicas.get(node_id)
            if child_replica is not None:
                child_replica.store.absorb(replica.store.extract(moves))
        parent.lock_table.move_entries(moves, child.lock_table)

        child_descriptor = RangeDescriptor(
            child, ekey, descriptor.end_key,
            generation=descriptor.generation + 1)
        child.descriptor = child_descriptor
        child.span = span
        descriptor.end_key = ekey
        descriptor.generation += 1
        descriptor.load.reset()
        parent._successors.append(child)
        parent.routing_generation += 1

        # Inherit the parent's liveness plumbing.
        if parent.side_transport_interval_ms is not None:
            child.start_side_transport(parent.side_transport_interval_ms)
        retransmit = getattr(parent.group, "_retransmit_interval_ms", None)
        if retransmit is not None:
            child.group.start_retransmission(retransmit)

        span.descriptors.append(child_descriptor)
        span._rebuild()
        span.generation = max(span.generation,
                              descriptor.generation,
                              child_descriptor.generation)
        self.splits += 1
        self._counter("keyspace.splits", trigger=trigger).inc()
        span._notify([parent.range_id, child.range_id])
        return child_descriptor

    # -- merge ---------------------------------------------------------------

    def can_merge(self, left: RangeDescriptor, right: RangeDescriptor) -> bool:
        """Is merging ``right`` into ``left`` safe right now?

        Requires adjacency, identical replica placement (a CRDB merge
        first rebalances the sides into colocation; here the split path
        preserves colocation so this is a sanity check), and a quiescent
        right-hand lock table — no in-flight write may straddle the
        merge, or a command forwarded after the boundary moves could
        commit below the left side's closed timestamp.
        """
        if left.rng.span is not right.rng.span:
            return False
        if left.end_key is None or left.end_key != right.start_key:
            return False
        left_peers = {nid: p.replica_type
                      for nid, p in left.rng.group.peers.items()}
        right_peers = {nid: p.replica_type
                       for nid, p in right.rng.group.peers.items()}
        if left_peers != right_peers:
            return False
        if left.rng.leaseholder_node_id is None:
            return False
        if not right.rng.lock_table.is_quiescent():
            return False
        return True

    def merge(self, left: RangeDescriptor, right: RangeDescriptor) -> None:
        """Merge ``right``'s range into ``left``'s (the subsume side).

        The right range's data folds into the left on every replica, the
        left descriptor absorbs the right's span, and the right range
        becomes a non-serving husk: its emptied descriptor owns no keys
        (so every routed request bounces with ``RangeKeyMismatch``), but
        it keeps serving transaction-record operations so transactions
        anchored there stay recoverable.
        """
        if not self.can_merge(left, right):
            raise ValueError(
                f"cannot merge r{right.range_id} into r{left.range_id}")
        left_rng, right_rng = left.rng, right.rng
        span = left_rng.span
        if right_rng.leaseholder_node_id != left_rng.leaseholder_node_id:
            right_rng.transfer_lease(left_rng.leaseholder_node_id)
        for node_id, replica in right_rng.replicas.items():
            left_replica = left_rng.replicas.get(node_id)
            if left_replica is not None:
                left_replica.store.absorb(
                    replica.store.extract(lambda _key: True))
        left.end_key = right.end_key
        left.generation = max(left.generation, right.generation) + 1
        left.load.reset()
        # The left lease now covers keys the right lease may have served
        # reads for; raise the timestamp-cache floor past anything the
        # right side could have promised.
        clock = left_rng.leaseholder_node.clock
        left_rng.ts_cache.raise_low_water(
            clock.now().add(clock.max_offset).with_synthetic(False))
        left_rng.routing_generation += 1
        # Empty the right descriptor: start == end owns nothing.
        right.start_key = right.end_key = left.end_key or MIN_KEY
        right.generation += 1
        right.load.reset()
        right_rng._successors = [left_rng]
        right_rng.routing_generation += 1
        right_rng.destroy()  # stops its side transport; Raft group stays
        span.descriptors.remove(right)
        span._rebuild()
        span.generation = max(span.generation, left.generation,
                              right.generation)
        self.merges += 1
        self._counter("keyspace.merges").inc()
        span._notify([left_rng.range_id, right_rng.range_id])
