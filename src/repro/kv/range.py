"""A Range: a replicated span of the keyspace (paper §3.1).

Each Range is a Raft group plus leaseholder-only machinery: the
timestamp cache, the lock table, and the closed-timestamp policy.  The
``serve_*`` methods are coroutines executed *on the leaseholder node*
(the DistSender gets them there via RPC).

The write path implements the paper's rules in order:

1. latch/lock: conflicting in-flight writes and intents are waited on;
2. timestamp cache: writes advance above prior reads of the key;
3. closed-timestamp floor: writes advance above the closed target — for
   GLOBAL ranges (``LeadPolicy``) this is what pushes transaction
   timestamps into the future (§6.2.1);
4. the intent replicates through Raft with the next closed timestamp
   attached.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, TYPE_CHECKING

from ..errors import (
    RangeKeyMismatchError,
    RangeUnavailableError,
    ReadWithinUncertaintyIntervalError,
    WriteIntentError,
    WriteTooOldError,
)
from ..raft.group import RaftGroup, ReplicaType
from ..raft.membership import ConfigChangeError
from ..sim.clock import TS_ZERO, Timestamp
from ..storage.locktable import LockTable
from ..storage.mvcc import ReadResult
from ..storage.tscache import TimestampCache
from .closedts import ClosedTimestampPolicy, LagPolicy
from .commands import (
    EpochOrderCommand,
    PutIntentCommand,
    ResolveIntentCommand,
    SetTxnRecordCommand,
    TxnRecord,
)
from .replica import Replica

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.node import Node
    from ..cluster.topology import Cluster

__all__ = ["Range"]


class Range:
    """One replicated range of keys and its leaseholder state."""

    #: Default closed-timestamp side-transport interval (CRDB: 200 ms).
    SIDE_TRANSPORT_INTERVAL_MS = 200.0
    #: How long a waiter blocks before pushing the lock holder's txn.
    PUSH_INTERVAL_MS = 50.0
    #: Snapshot transfer fixed cost + per-log-entry replay cost (ms).
    SNAPSHOT_BASE_MS = 10.0
    SNAPSHOT_PER_ENTRY_MS = 0.05
    #: Learner catch-up poll cadence and give-up horizon (ms).
    CATCHUP_POLL_MS = 25.0
    CATCHUP_TIMEOUT_MS = 5000.0

    def __init__(self, cluster: "Cluster", policy: Optional[ClosedTimestampPolicy] = None,
                 name: str = "", proposal_timeout_ms: Optional[float] = None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.range_id = cluster.allocate_range_id()
        self.name = name or f"r{self.range_id}"
        self.policy: ClosedTimestampPolicy = policy or LagPolicy()
        self.group = RaftGroup(cluster.sim, cluster.network, self.range_id,
                               apply_fn=self._apply,
                               proposal_timeout_ms=proposal_timeout_ms,
                               coalesce_ms=getattr(cluster,
                                                   "raft_coalesce_ms", None))
        self.replicas = {}
        self.leaseholder_node_id: Optional[int] = None
        #: Bumped on every membership or lease change; the DistSender's
        #: replica-routing cache compares generations instead of
        #: re-scanning the replica set per read.
        self.routing_generation = 0
        #: Lazily-resolved per-range instrument handles (serve_read /
        #: serve_write are hot; one registry lookup each, not per op).
        self._c_reads = None
        self._c_writes = None
        self.ts_cache = TimestampCache()
        self.lock_table = LockTable(cluster.sim, cluster.wait_graph)
        #: Highest closed timestamp this leaseholder has promised.
        self.closed_emitted: Timestamp = TS_ZERO
        #: Automatic (non-cooperative) lease failovers performed.
        self.failovers = 0
        self._side_transport_started = False
        self.side_transport_interval_ms: Optional[float] = None
        self._destroyed = False
        #: Elastic keyspace (repro.kv.keyspace): the descriptor naming
        #: this range's [start, end) span, the owning TableSpan, and the
        #: ranges that took over parts of the span (split children /
        #: merge survivor).  All None/empty for legacy fixed ranges,
        #: which then skip every ownership check.
        self.descriptor = None
        self.span = None
        self._successors: List["Range"] = []

    # -- membership / lease ----------------------------------------------------

    def add_replica(self, node: "Node", replica_type: str = ReplicaType.VOTER) -> Replica:
        replica = Replica(self, node)
        # Late joiners receive a snapshot of the leaseholder's state
        # (the Raft log alone does not contain bulk-ingested data).
        if self.leaseholder_node_id is not None:
            source = self.replicas.get(self.leaseholder_node_id)
            if source is not None:
                replica.store = source.store.clone()
                replica.txn_records = dict(source.txn_records)
        self.replicas[node.node_id] = replica
        self.group.add_peer(node, replica_type)
        node.add_replica(replica)
        self.routing_generation += 1
        return replica

    def remove_replica(self, node: "Node") -> None:
        self.replicas.pop(node.node_id, None)
        self.group.remove_peer(node.node_id)
        node.remove_replica(self.range_id)
        self.routing_generation += 1

    def add_replica_safely(self, node: "Node",
                           replica_type: str = ReplicaType.VOTER) -> Generator:
        """Coroutine: the safe membership-change pipeline (repair path).

        The replica joins as an *empty learner*, receives a leader-driven
        snapshot over the network (paying real transfer latency, unlike
        :meth:`add_replica`'s instant provisioning shortcut), catches up
        on the live Raft stream, and only then — if it is to be a voter —
        is promoted.  The range's config guard is held across the entire
        pipeline, so any overlapping membership change raises
        :class:`ConfigChangeError` instead of composing unsafely.  At no
        point does the voter set change in a way that could lose a live
        quorum: the learner phase never affects quorum arithmetic, and
        promotion re-checks quorum before taking effect.

        Returns the new :class:`Replica`; on any failure the half-added
        learner is rolled back so the range is exactly as before.
        """
        guard = self.group.config_guard
        guard.acquire(f"safe-add-{replica_type}@n{node.node_id}",
                      self.sim.now)
        node_id = node.node_id
        try:
            replica = Replica(self, node)
            self.replicas[node_id] = replica
            node.add_replica(replica)
            self.routing_generation += 1
            self.group.add_learner(node)
            leader_node = self.leaseholder_node
            source = self.replicas[self.leaseholder_node_id]
            entries = len(self.group.leader.log)
            transfer_ms = (self.SNAPSHOT_BASE_MS
                           + self.SNAPSHOT_PER_ENTRY_MS * entries)
            snap_span = self.sim.obs.tracer.start_span(
                "raft.snapshot", range=self.name, to=node_id,
                entries=entries)

            def install() -> Generator:
                # Runs on the joining node after the request arrives;
                # the sleep models streaming + sideloading the snapshot.
                yield self.sim.sleep(transfer_ms)
                replica.store = source.store.clone()
                replica.txn_records = dict(source.txn_records)
                return self.group.install_snapshot(node_id)

            try:
                yield self.cluster.network.call(leader_node, node, install,
                                                payload_size=max(1, entries),
                                                span=snap_span)
                yield from self._wait_caught_up(node_id)
            finally:
                snap_span.finish()
            if replica_type == ReplicaType.VOTER:
                # No sim time passes between the caught-up check and the
                # promotion, so the learner still holds every committed
                # entry when it joins the electorate.
                self.group.promote_learner(node_id)
            return replica
        except BaseException:
            # Roll back the half-added learner directly (the guard is
            # still held, so the guarded remove path cannot be used).
            self.replicas.pop(node_id, None)
            self.group.peers.pop(node_id, None)
            node.remove_replica(self.range_id)
            self.routing_generation += 1
            raise
        finally:
            guard.release(self.sim.now)

    def _wait_caught_up(self, node_id: int,
                        timeout_ms: Optional[float] = None) -> Generator:
        """Poll until the learner's log reaches the commit index."""
        deadline = self.sim.now + (timeout_ms or self.CATCHUP_TIMEOUT_MS)
        while True:
            peer = self.group.peers.get(node_id)
            if peer is None:
                raise RangeUnavailableError(
                    f"{self.name}: learner {node_id} vanished mid-catch-up")
            if (peer.last_index >= self.group.commit_index
                    and self.group.log_complete(peer)):
                return None
            if self.sim.now >= deadline:
                raise RangeUnavailableError(
                    f"{self.name}: learner {node_id} failed to catch up "
                    f"(at {peer.last_index}, commit "
                    f"{self.group.commit_index})")
            self.group.resync_peer(node_id)
            yield self.sim.sleep(self.CATCHUP_POLL_MS)

    def remove_replica_safely(self, node_id: int) -> None:
        """Quorum-safe replica removal (repair path).

        Refuses to remove the leaseholder (transfer the lease first) and
        refuses any voter removal that would leave the remaining voter
        set without a live quorum.
        """
        if node_id == self.leaseholder_node_id:
            raise ConfigChangeError(
                f"{self.name}: cannot remove the leaseholder replica")
        peer = self.group.peers.get(node_id)
        if peer is None:
            return
        if (peer.replica_type == ReplicaType.VOTER
                and not self.group.would_retain_quorum_without(node_id)):
            raise ConfigChangeError(
                f"{self.name}: removing voter n{node_id} would drop the "
                f"range below a live quorum")
        replica = self.replicas.pop(node_id, None)
        self.group.remove_peer(node_id)
        if replica is not None:
            replica.node.remove_replica(self.range_id)
        self.routing_generation += 1

    def set_leaseholder(self, node_id: int) -> None:
        self.group.set_leader(node_id)
        self.leaseholder_node_id = node_id
        self.routing_generation += 1

    def transfer_lease(self, node_id: int) -> None:
        """Move the lease (and Raft leadership) to another voter.

        The incoming leaseholder starts a fresh timestamp cache whose
        low-water mark covers every read the old lease could have served.
        """
        self.group.transfer_leadership(node_id)
        self._install_lease(node_id)

    def _install_lease(self, node_id: int) -> None:
        self.leaseholder_node_id = node_id
        self.routing_generation += 1
        new_clock = self.replicas[node_id].node.clock
        low_water = new_clock.now().add(new_clock.max_offset).with_synthetic(False)
        self.ts_cache = TimestampCache(low_water=low_water)
        # The lock table survives the lease move: an in-flight writer's
        # lock spans evaluation through replication (CRDB's latch span),
        # and dropping it would let the new leaseholder evaluate a
        # conflicting write against an intent still in the Raft pipeline.
        # Orphaned entries are reaped by the waiters' push machinery.

    def failover_lease(self, node_id: Optional[int] = None) -> int:
        """Non-cooperative lease movement after losing the leaseholder.

        Unlike :meth:`transfer_lease` (a cooperative handoff between two
        live nodes), this elects a new Raft leader among the surviving
        voters, repairs the log, and installs the lease on the winner.
        """
        winner = self.group.fail_over(node_id)
        self._install_lease(winner)
        self.failovers += 1
        self.sim.obs.registry.counter("kv.lease_failovers",
                                      range=self.name).inc()
        return winner

    def maybe_failover(self, from_node=None, force: bool = False) -> bool:
        """Automatic lease failover (paper §4.1 survivability).

        Invoked by the DistSender when a leaseholder RPC fails: if the
        leaseholder is genuinely unreachable (or ``force``, for gray
        leaseholders that time out while nominally reachable) and a
        quorum of voters survives, move the lease to the best surviving
        voter.  Returns True if the lease moved.

        ``from_node`` scopes reachability to the requester's vantage
        point: a gateway cut off in a minority partition cannot steal
        the lease away from a healthy majority.
        """
        network = self.cluster.network
        # A dead gateway node is vantage-only (the client process is
        # separate from the store): don't let its own death make every
        # candidate look unreachable.
        if from_node is not None and network.node_is_dead(from_node.node_id):
            from_node = None
        lh_id = self.leaseholder_node_id
        if lh_id is not None and not force:
            lh_node = self.replicas[lh_id].node
            if not network.node_is_dead(lh_id) and (
                    from_node is None
                    or (network.reachable(from_node, lh_node)
                        and network.reachable(lh_node, from_node))):
                return False  # leaseholder looks healthy from here
        best = None
        best_key = None
        quorum = self.group.quorum_size()
        voters = self.group.voters()
        for peer in voters:
            node = peer.node
            if network.node_is_dead(node.node_id):
                continue
            if not self.group.log_complete(peer):
                continue  # missing committed entries: cannot lead
            if from_node is not None and not (
                    network.reachable(from_node, node)
                    and network.reachable(node, from_node)):
                continue
            # The candidate must see a quorum of voters both ways.
            mutual = sum(
                1 for other in voters
                if not network.node_is_dead(other.node.node_id)
                and network.reachable(node, other.node)
                and network.reachable(other.node, node))
            if mutual < quorum:
                continue
            key = (peer.last_term, peer.last_index, -node.node_id)
            if best_key is None or key > best_key:
                best, best_key = peer, key
        if best is None or best.node.node_id == lh_id:
            return False
        self.failover_lease(best.node.node_id)
        return True

    @property
    def leaseholder_replica(self) -> Replica:
        if self.leaseholder_node_id is None:
            raise RangeUnavailableError(f"{self.name}: no leaseholder")
        return self.replicas[self.leaseholder_node_id]

    @property
    def leaseholder_node(self) -> "Node":
        return self.leaseholder_replica.node

    def replica_on(self, node_id: int) -> Optional[Replica]:
        return self.replicas.get(node_id)

    def voter_replicas(self) -> List[Replica]:
        return [self.replicas[p.node.node_id] for p in self.group.voters()
                if p.node.node_id in self.replicas]

    # -- closed timestamps -------------------------------------------------------

    def closed_target(self) -> Timestamp:
        """The next closed timestamp, per policy, monotone over time."""
        now = self.leaseholder_node.clock.now()
        target = self.policy.target(now)
        if target > self.closed_emitted:
            return target
        return self.closed_emitted

    def _note_closed(self, closed_ts: Timestamp) -> None:
        if closed_ts > self.closed_emitted:
            self.closed_emitted = closed_ts

    def start_side_transport(self, interval_ms: Optional[float] = None) -> None:
        """Periodically ship closed timestamps even when the range is idle."""
        if self._side_transport_started:
            return
        self._side_transport_started = True
        interval = interval_ms or self.SIDE_TRANSPORT_INTERVAL_MS
        self.side_transport_interval_ms = interval

        def transport() -> Generator:
            while not self._destroyed:
                yield self.sim.sleep(interval)
                if self.leaseholder_node_id is None:
                    continue
                if self.cluster.network.node_is_dead(self.leaseholder_node_id):
                    continue
                target = self.closed_target()
                self._note_closed(target)
                self.group.broadcast_closed_ts(target)

        self.sim.spawn(transport(), name=f"{self.name}-side-transport")

    def destroy(self) -> None:
        self._destroyed = True

    # -- latency estimates (for LeadPolicy sizing) -------------------------------

    def raft_latency_ms(self) -> float:
        """RTT from the leaseholder to the nearest write quorum (L_raft)."""
        leader = self.leaseholder_node
        latency = self.cluster.network.latency
        rtts = []
        for peer in self.group.voters():
            if peer.node.node_id == leader.node_id:
                continue
            rtts.append(latency.rtt(
                leader.locality.region, leader.locality.zone,
                peer.node.locality.region, peer.node.locality.zone))
        rtts.sort()
        needed = self.group.quorum_size() - 1  # leader acks itself
        if needed <= 0 or not rtts:
            return 1.0
        return rtts[needed - 1] + 2 * RaftGroup.DISK_APPEND_MS

    def replicate_latency_ms(self) -> float:
        """One-way delay to the furthest replica (L_replicate)."""
        leader = self.leaseholder_node
        latency = self.cluster.network.latency
        delays = [0.0]
        for peer in self.group.peers.values():
            if peer.node.node_id == leader.node_id:
                continue
            delays.append(latency.rtt(
                leader.locality.region, leader.locality.zone,
                peer.node.locality.region, peer.node.locality.zone) / 2.0)
        return max(delays)

    # -- proposal helper ----------------------------------------------------------

    def _propose(self, command: Any, span=None):
        closed = self.closed_target()
        self._note_closed(closed)
        return self.group.propose(command, closed, span=span)

    def _apply(self, node: "Node", command: Any) -> None:
        # A split/merge may have moved the command's key out of this
        # range while the proposal was in the Raft pipeline; apply it on
        # the owning successor instead (same node — splits never move
        # data between stores), so the intent and its eventual
        # resolution land on the range that now serves the key.
        key = getattr(command, "key", None)
        if (key is not None and self.descriptor is not None
                and not self.descriptor.contains_key(key)):
            owner = self.find_owner(key)
            if owner is not None and owner is not self:
                owner._apply(node, command)
                return
        replica = self.replicas.get(node.node_id)
        if replica is not None:
            replica.apply(command)

    # -- elastic-keyspace ownership ------------------------------------------

    def owns(self, key: Any) -> bool:
        """Does this range's descriptor (if any) cover ``key``?"""
        descriptor = self.descriptor
        return descriptor is None or descriptor.contains_key(key)

    def _check_owns(self, key: Any) -> None:
        descriptor = self.descriptor
        if descriptor is not None and not descriptor.contains_key(key):
            raise RangeKeyMismatchError(self.range_id, key,
                                        descriptor.generation)

    def find_owner(self, key: Any) -> Optional["Range"]:
        """Walk the successor graph to the range now owning ``key``."""
        if self.owns(key):
            return self
        seen = {self.range_id}
        stack = list(self._successors)
        while stack:
            rng = stack.pop()
            if rng.range_id in seen:
                continue
            seen.add(rng.range_id)
            if rng.owns(key):
                return rng
            stack.extend(rng._successors)
        return None

    # -- leaseholder request serving (coroutines) ----------------------------------

    def _wait_or_push(self, key: Any, waiter_txn_id: Optional[int],
                      holder_txn_id: int, span=None) -> Generator:
        """Wait for the lock on ``key``; periodically *push* the holder.

        CRDB's txnwait/push mechanism: a waiter that has blocked for a
        while asks for the holder transaction's authoritative status.
        If the holder already committed or aborted (e.g. its intent
        resolution was lost to a node failure), the waiter resolves the
        intent itself and proceeds.  Status lookups go through the
        cluster's transaction registry — the simulation stand-in for
        CRDB's txn records + heartbeats."""
        from ..sim.core import any_of
        obs = self.sim.obs
        wait_span = obs.tracer.start_span(
            "lock.wait", parent=span, range=self.name, key=str(key),
            waiter=waiter_txn_id, holder=holder_txn_id)
        started = self.sim.now
        try:
            fut = self.lock_table.wait_for(key, waiter_txn_id)
            while not fut.done:
                index, _value = yield any_of(
                    self.sim, [fut, self.sim.sleep(self.PUSH_INTERVAL_MS)])
                if index == 0:
                    return None
                status = self.cluster.txn_status(holder_txn_id)
                if status is None:
                    continue
                final, commit_ts = status
                if not final:
                    continue  # holder still pending: keep waiting
                # Push succeeded: resolve the orphaned intent ourselves.
                wait_span.annotate(pushed=True)
                yield self._propose(ResolveIntentCommand(
                    key=key, txn_id=holder_txn_id, commit_ts=commit_ts),
                    span=wait_span)
                if not fut.done:
                    # The lock entry may have belonged to a never-applied
                    # intent; release it directly.
                    self.lock_table.release(key, holder_txn_id)
                return None
            yield fut  # propagate a deadlock rejection, or no-op if resolved
            return None
        finally:
            obs.registry.histogram("lock.wait_ms",
                                   range=self.name).observe(
                                       self.sim.now - started)
            wait_span.finish()

    def serve_write(self, key: Any, ts: Timestamp, value: Any, txn_id: int,
                    anchor_node_id: int, span=None,
                    deadline_ms: Optional[float] = None) -> Generator:
        """Evaluate and replicate a transactional write; returns the
        (possibly advanced) timestamp the intent was written at."""
        if self._c_writes is None:
            self._c_writes = self.sim.obs.registry.counter(
                "kv.writes", range=self.name)
        self._c_writes.inc()
        admission = self.cluster.admission
        if admission is not None:
            # Store-level admission: hold an evaluation slot (modeled
            # CPU/IO cost) before touching locks; expired work is shed
            # here without consuming capacity.
            yield from admission.store_work(self.leaseholder_node_id,
                                            deadline_ms=deadline_ms)
        monitor = self.cluster.clock_monitor
        if monitor is not None:
            # Clock safety: refuse to serve while fenced, and reject
            # request timestamps only an out-of-contract clock could
            # have produced (they would escape commit-wait).
            monitor.check_request(self.leaseholder_replica.node, ts)
        while True:
            # Re-checked every iteration: lock waits yield, and a split
            # or merge may move the key out from under us mid-wait.
            self._check_owns(key)
            holder = self.lock_table.holder_of(key)
            if holder is not None and holder.txn_id != txn_id:
                yield from self._wait_or_push(key, txn_id, holder.txn_id,
                                              span=span)
                continue
            try:
                self.leaseholder_replica.store.check_write(key, ts, txn_id)
            except WriteIntentError as err:
                # Applied intent without a lock-table entry (lease moved):
                # reconstruct the holder so the wait is released on resolve.
                self.lock_table.note_holder(key, err.txn_id, err.intent_ts)
                yield from self._wait_or_push(key, txn_id, err.txn_id,
                                              span=span)
                continue
            except WriteTooOldError as err:
                ts = err.existing_ts.next()
                continue
            break
        ts = self.ts_cache.min_write_ts(key, ts, txn_id)
        floor = self.closed_target()
        if ts <= floor:
            ts = floor.next()
        # Latch the key for the duration of replication + intent lifetime.
        self.lock_table.note_holder(key, txn_id, ts)
        entry = yield self._propose(PutIntentCommand(
            key=key, ts=ts, value=value, txn_id=txn_id,
            anchor_node_id=anchor_node_id), span=span)
        del entry
        return ts

    def serve_locking_read(self, key: Any, ts: Timestamp, txn_id: int,
                           anchor_node_id: int, span=None,
                           deadline_ms: Optional[float] = None) -> Generator:
        """A locking read (SELECT FOR UPDATE): wait for conflicting
        locks, read the *latest* committed value, and lay an exclusive
        intent over it in one leaseholder visit.

        Returns ``(value, lock_ts)``.  Because the value is read at the
        lock's (write) timestamp, a transaction with no earlier read
        spans can adopt ``lock_ts`` as its read timestamp and never pay
        a write-too-old refresh — CRDB's motivation for FOR UPDATE in
        contended read-modify-write transactions.
        """
        admission = self.cluster.admission
        if admission is not None:
            yield from admission.store_work(self.leaseholder_node_id,
                                            deadline_ms=deadline_ms)
        monitor = self.cluster.clock_monitor
        if monitor is not None:
            monitor.check_request(self.leaseholder_replica.node, ts)
        while True:
            self._check_owns(key)
            holder = self.lock_table.holder_of(key)
            if holder is not None and holder.txn_id != txn_id:
                yield from self._wait_or_push(key, txn_id, holder.txn_id,
                                              span=span)
                continue
            try:
                self.leaseholder_replica.store.check_write(key, ts, txn_id)
            except WriteIntentError as err:
                self.lock_table.note_holder(key, err.txn_id, err.intent_ts)
                yield from self._wait_or_push(key, txn_id, err.txn_id,
                                              span=span)
                continue
            except WriteTooOldError as err:
                ts = err.existing_ts.next()
                continue
            break
        ts = self.ts_cache.min_write_ts(key, ts, txn_id)
        floor = self.closed_target()
        if ts <= floor:
            ts = floor.next()
        # Latest committed value (what the lock protects).
        newest = self.leaseholder_replica.store.get(key, ts, txn_id=txn_id)
        self.lock_table.note_holder(key, txn_id, ts)
        yield self._propose(PutIntentCommand(
            key=key, ts=ts, value=newest.value, txn_id=txn_id,
            anchor_node_id=anchor_node_id), span=span)
        self.ts_cache.record_read(key, ts, txn_id)
        return newest.value, ts

    def serve_read(self, key: Any, ts: Timestamp, txn_id: Optional[int],
                   uncertainty_limit: Optional[Timestamp],
                   allow_server_side_bump: bool = False,
                   span=None, deadline_ms: Optional[float] = None
                   ) -> Generator:
        """Leaseholder read at ``ts``; blocks on conflicting locks.

        Returns ``(ReadResult, effective_read_ts)``.  With
        ``allow_server_side_bump`` (transaction has no other spans) an
        uncertainty restart is retried here at the value's timestamp
        instead of costing the coordinator another WAN round trip;
        otherwise ``ReadWithinUncertaintyIntervalError`` propagates and
        the coordinator refreshes.
        """
        if self._c_reads is None:
            self._c_reads = self.sim.obs.registry.counter(
                "kv.reads", range=self.name)
        self._c_reads.inc()
        admission = self.cluster.admission
        if admission is not None:
            yield from admission.store_work(self.leaseholder_node_id,
                                            deadline_ms=deadline_ms)
        monitor = self.cluster.clock_monitor
        if monitor is not None:
            # A beyond-bound *read* timestamp poisons the ts-cache far
            # into the future, forcing every later writer through
            # spurious refreshes — reject it at the door too.
            monitor.check_request(self.leaseholder_replica.node, ts)
        horizon = uncertainty_limit if uncertainty_limit is not None else ts
        while True:
            self._check_owns(key)
            holder = self.lock_table.holder_of(key)
            if (holder is not None and holder.txn_id != txn_id
                    and holder.ts <= horizon):
                yield from self._wait_or_push(key, txn_id, holder.txn_id,
                                              span=span)
                continue
            try:
                result = self.leaseholder_replica.store.get(
                    key, ts, txn_id=txn_id, uncertainty_limit=uncertainty_limit)
            except WriteIntentError as err:
                self.lock_table.note_holder(key, err.txn_id, err.intent_ts)
                yield from self._wait_or_push(key, txn_id, err.txn_id,
                                              span=span)
                continue
            except ReadWithinUncertaintyIntervalError as err:
                if not allow_server_side_bump:
                    raise
                ts = err.value_ts
                if ts > horizon:
                    horizon = ts
                continue
            self.ts_cache.record_read(key, ts, txn_id)
            return result, ts

    def serve_refresh(self, key: Any, lo: Timestamp, hi: Timestamp,
                      txn_id: int, span=None) -> Generator:
        """Read refresh (paper §5.1/§6.1): is ``key`` unchanged in (lo, hi]?

        On success the refreshed timestamp is recorded in the timestamp
        cache so later writes cannot invalidate it.
        """
        self._check_owns(key)
        holder = self.lock_table.holder_of(key)
        if holder is not None and holder.txn_id != txn_id and holder.ts <= hi:
            return False
        changed = self.leaseholder_replica.store.changed_in_interval(
            key, lo, hi, txn_id=txn_id)
        if not changed:
            self.ts_cache.record_read(key, hi, txn_id)
        return changed is False
        yield  # pragma: no cover - marks this function as a generator

    def serve_txn_record(self, txn_id: int, status: str,
                         commit_ts: Optional[Timestamp],
                         span=None) -> Generator:
        """Write the transaction record (commit/abort) on the anchor range."""
        entry = yield self._propose(SetTxnRecordCommand(
            txn_id=txn_id, status=status, commit_ts=commit_ts), span=span)
        del entry
        return None

    def serve_epoch_order(self, epoch: int, txn_ids: tuple,
                          span=None) -> Generator:
        """Replicate an epoch-OCC commit-order decision (key-less: it is
        anchored to whichever range the epoch service chose and is never
        re-routed by splits)."""
        entry = yield self._propose(EpochOrderCommand(
            epoch=epoch, txn_ids=tuple(txn_ids)), span=span)
        del entry
        return None

    def serve_resolve_intent(self, key: Any, txn_id: int,
                             commit_ts: Optional[Timestamp],
                             span=None) -> Generator:
        """Replicate intent resolution; lock waiters release on apply."""
        self._check_owns(key)
        entry = yield self._propose(ResolveIntentCommand(
            key=key, txn_id=txn_id, commit_ts=commit_ts), span=span)
        del entry
        return None

    def get_txn_record(self, txn_id: int) -> Optional[TxnRecord]:
        return self.leaseholder_replica.txn_records.get(txn_id)

    # -- bulk ingestion -------------------------------------------------------------

    def bulk_ingest(self, items, ts: Timestamp) -> None:
        """Write committed versions directly into every replica.

        Models CRDB's AddSSTable ingestion used by IMPORT and index
        backfills: data lands on all replicas at a single timestamp
        without going through the Raft proposal path.
        """
        for replica in self.replicas.values():
            for key, value in items:
                replica.store.put_committed(key, ts, value)
