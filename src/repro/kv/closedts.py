"""Closed-timestamp policies (paper §5.1.1 and §6.2.1).

A closed timestamp is the leaseholder's promise not to accept further
writes at or below that MVCC timestamp.  Two policies exist:

* ``LAG``: close ~3 s in the past.  Default for REGIONAL tables; recent
  enough for useful follower reads, old enough to avoid interfering with
  foreground read-write transactions.
* ``LEAD``: close *in the future* by
  ``L_raft + L_replicate + max_clock_offset``.  Used by GLOBAL tables so
  that by the time the closed timestamp reaches every replica, present
  time is already closed there — enabling strongly-consistent
  present-time reads from any replica.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.clock import Timestamp

__all__ = ["ClosedTimestampPolicy", "LagPolicy", "LeadPolicy",
           "DEFAULT_CLOSED_TS_LAG_MS", "closed_ts_within_contract"]

#: CRDB's default ``kv.closed_timestamp.target_duration``.
DEFAULT_CLOSED_TS_LAG_MS = 3000.0


def closed_ts_within_contract(closed_ts: "Timestamp", local_physical: float,
                              max_offset: float,
                              slack_ms: float = 200.0) -> bool:
    """Receiver-side sanity check on an incoming closed timestamp.

    A *non-synthetic* closed timestamp claims real time has reached it.
    If it sits further ahead of the receiving follower's clock than
    ``max_offset`` plus flight slack, the leaseholder that emitted it
    must have a clock outside the tolerated bound (e.g. a forward jump
    turning its LAG targets into future time) — accepting it would let
    the follower serve "past" reads at timestamps nobody has reached.
    Synthetic (LEAD-policy) targets promise nothing about wall time and
    always pass.  Used by the clock-safety monitor when one is
    installed; the legacy path skips the check entirely.
    """
    if closed_ts.synthetic:
        return True
    return closed_ts.physical <= local_physical + max_offset + slack_ms


class ClosedTimestampPolicy:
    """Computes the closed-timestamp target for new proposals.

    Policies are consulted on every proposal and every side-transport
    tick (the ticks themselves ride the simulator's timer wheel, one
    merge per 128 ms window, rather than individual heap entries), so
    the concrete policies are frozen ``slots`` values: immutable,
    dict-free, shareable across ranges.
    """

    __slots__ = ()

    def target(self, now: Timestamp) -> Timestamp:
        raise NotImplementedError

    @property
    def leads(self) -> bool:
        """Does this policy close future time?"""
        return False


@dataclass(frozen=True, slots=True)
class LagPolicy(ClosedTimestampPolicy):
    """Close ``lag_ms`` behind present time (REGIONAL tables)."""

    lag_ms: float = DEFAULT_CLOSED_TS_LAG_MS

    def target(self, now: Timestamp) -> Timestamp:
        return Timestamp(now.physical - self.lag_ms, 0)


@dataclass(frozen=True, slots=True)
class LeadPolicy(ClosedTimestampPolicy):
    """Close ``lead_ms`` ahead of present time (GLOBAL tables).

    ``lead_ms`` should be ``L_raft + L_replicate + max_clock_offset``;
    :meth:`for_range` computes that from a range's actual topology, which
    is how CRDB estimates its ``lead time for global reads``.
    """

    lead_ms: float

    @property
    def leads(self) -> bool:
        return True

    def target(self, now: Timestamp) -> Timestamp:
        return Timestamp(now.physical + self.lead_ms, 0, synthetic=True)

    @staticmethod
    def for_range(raft_latency_ms: float, replicate_latency_ms: float,
                  max_clock_offset: float,
                  side_transport_interval_ms: float = 200.0,
                  skew_allowance_ms: float = 0.0,
                  slack_ms: float = 5.0) -> "LeadPolicy":
        """Build the policy from measured range latencies (paper §6.2.1).

        Beyond the paper's headline formula
        (``L_raft + L_replicate + max_clock_offset``) the target must
        absorb the closed-timestamp side-transport period (an idle
        follower's closed timestamp is up to one interval stale) and the
        *actual* clock skew between the leaseholder closing time and the
        reader computing its uncertainty limit.  CRDB sizes its
        ``lead-for-global-reads`` target the same way, which is why the
        paper measures 500-600 ms GLOBAL write latency at
        ``max_clock_offset = 250 ms``.
        """
        lead = (raft_latency_ms + replicate_latency_ms + max_clock_offset
                + side_transport_interval_ms + skew_allowance_ms + slack_ms)
        return LeadPolicy(lead_ms=lead)
