"""DistSender: routes KV requests from a gateway node to replicas.

Fresh writes always go to the leaseholder.  Reads are routed by policy:

* ``LEASEHOLDER`` — REGIONAL-table fresh reads (linearizable at the
  leaseholder);
* ``NEAREST`` — GLOBAL-table fresh reads and stale reads: try the
  closest replica first and fall back to the leaseholder when the
  follower cannot serve (closed timestamp too low, or an intent needs
  conflict resolution — paper §5.1.1/§6.2).
"""

from __future__ import annotations

import random
from bisect import bisect_right
from typing import Any, Generator, Iterable, List, Optional, Tuple

from ..errors import (
    ClockFencedError,
    DeadlineExceededError,
    FollowerReadNotAvailableError,
    RangeKeyMismatchError,
    StaleReadBoundError,
    WriteIntentError,
)
from ..obs import NOOP_SPAN
from ..sim.clock import Timestamp
from ..sim.core import Future, all_of, with_timeout
from ..sim.network import NetworkUnavailableError, RpcTimeoutError
from ..sim.retry import ExponentialBackoff
from ..storage.mvcc import ReadResult
from .circuit import BreakerSet
from .keyspace import TableSpan, encode_key
from .range import Range

__all__ = ["DistSender", "ReadRouting", "negotiated_timestamp"]


class ReadRouting:
    LEASEHOLDER = "leaseholder"
    NEAREST = "nearest"


def _value_generator(fn) -> Generator:
    """Wrap a synchronous callable as a zero-yield coroutine."""
    result = fn()
    return result
    yield  # pragma: no cover


def negotiated_timestamp(servable: Iterable[Timestamp],
                         min_ts: Timestamp) -> Timestamp:
    """The §5.3.2 negotiation rule, as a pure function.

    Given every required replica's maximum locally-servable timestamp,
    the negotiated read timestamp is their minimum — the newest
    timestamp *all* replicas can serve — clamped to be meaningful by
    ``min_ts`` when there are no replicas.  Raises
    :class:`StaleReadBoundError` if that falls below the caller's
    minimum bound.
    """
    servable = list(servable)
    negotiated = min(servable) if servable else min_ts
    if negotiated < min_ts:
        raise StaleReadBoundError(
            f"negotiated {negotiated} below bound {min_ts}")
    return negotiated


class DistSender:
    """Per-cluster request router (stateless; one instance is shared).

    ``adaptive_follower_wait_ms`` enables the §5.3.1 adaptive policy: a
    follower whose closed timestamp lags a fresh read waits locally up
    to this long for the next closed-timestamp update instead of
    redirecting to the leaseholder immediately.  0 disables (the
    paper's deployed behaviour).
    """

    #: Per-RPC timeout for leaseholder calls; generous so only genuinely
    #: lost RPCs (dropped packets, gray nodes) trip it, never a slow but
    #: progressing consensus round or lock wait.
    RPC_TIMEOUT_MS = 5000.0

    def __init__(self, cluster, adaptive_follower_wait_ms: float = 0.0,
                 rpc_timeout_ms: Optional[float] = RPC_TIMEOUT_MS,
                 rpc_max_attempts: int = 3,
                 auto_failover: bool = True,
                 breaker_threshold: int = 3,
                 breaker_cooldown_ms: float = 500.0,
                 breaker_probe_jitter: float = 0.15):
        self.cluster = cluster
        self.network = cluster.network
        self.adaptive_follower_wait_ms = adaptive_follower_wait_ms
        self.rpc_timeout_ms = rpc_timeout_ms
        self.rpc_max_attempts = max(1, rpc_max_attempts)
        self.auto_failover = auto_failover
        registry = cluster.sim.obs.registry
        # Half-open probe scheduling is seeded through the simulation
        # seed: a fleet of breakers tripped by the same fault re-probes
        # staggered instead of in lockstep, and every run of a given
        # seed schedules probes byte-identically.
        breaker_rng = random.Random(
            (getattr(cluster, "seed", 0) << 8) ^ 0xB4EA)
        self.breakers = BreakerSet(breaker_threshold, breaker_cooldown_ms,
                                   registry=registry, rng=breaker_rng,
                                   probe_jitter=breaker_probe_jitter)
        # A restarted node deserves a clean slate: accumulated failures
        # (and any probe stranded when it died) belong to the previous
        # incarnation.
        self.network.on_node_restart(self.breakers.reset)
        self._retry_rng = random.Random(
            (getattr(cluster, "seed", 0) << 8) ^ 0xD157)
        #: (gateway_node_id, range_id) -> (replica, routing_generation).
        #: Consulted only while the fault plane is clean and no breaker
        #: is open — the only conditions under which replica selection
        #: depends on anything beyond membership and lease placement.
        self._route_cache: dict = {}
        #: Span-keyed range-descriptor cache: span name -> (generation,
        #: start-key list, descriptor list) snapshot.  Entries go stale
        #: the moment a split/merge lands; staleness is caught either by
        #: the synchronous span-change subscription (meta-range gossip)
        #: or by a RangeKeyMismatch bounce from the old owner.
        self._span_cache: dict = {}
        #: gateway node_id -> interned retry-process name (avoids an
        #: f-string per RPC on the hot path).
        self._retry_names: dict = {}
        #: dst node_id -> lazy RpcTimeoutError factory for with_timeout
        #: (timeouts almost never fire; don't build the exception per RPC).
        self._timeout_factories: dict = {}
        #: Counters for tests/ablations, backed by registry instruments
        #: (read through the int properties below).
        self._c_fallbacks = registry.counter("distsender.follower_read_fallbacks")
        self._c_follower_served = registry.counter("distsender.follower_reads_served")
        self._c_retries = registry.counter("distsender.rpc_retries")
        self._c_failovers = registry.counter("distsender.failovers_triggered")
        self._c_deadline_drops = registry.counter("distsender.deadline_drops")
        # The range-cache counter family is registered lazily on the
        # first elastic resolve: legacy fixed-range runs must not grow
        # new instruments (their metric snapshots are golden-fingerprinted).
        self._c_cache_hit = None
        self._c_cache_miss = None
        self._c_cache_inval = None

    @property
    def follower_read_fallbacks(self) -> int:
        return int(self._c_fallbacks.value)

    @property
    def follower_reads_served(self) -> int:
        return int(self._c_follower_served.value)

    @property
    def rpc_retries(self) -> int:
        return int(self._c_retries.value)

    @property
    def failovers_triggered(self) -> int:
        return int(self._c_failovers.value)

    @property
    def range_cache_hits(self) -> int:
        return int(self._c_cache_hit.value) if self._c_cache_hit else 0

    @property
    def range_cache_misses(self) -> int:
        return int(self._c_cache_miss.value) if self._c_cache_miss else 0

    @property
    def range_cache_invalidations(self) -> int:
        return int(self._c_cache_inval.value) if self._c_cache_inval else 0

    # -- span-keyed descriptor resolution --------------------------------------

    def _timeout_error_factory(self, node_id: int):
        factory = self._timeout_factories.get(node_id)
        if factory is None:
            def factory(_node_id=node_id):
                return RpcTimeoutError(
                    f"rpc to node {_node_id} timed out")
            self._timeout_factories[node_id] = factory
        return factory

    def _ensure_cache_counters(self) -> None:
        if self._c_cache_hit is None:
            registry = self.cluster.sim.obs.registry
            self._c_cache_hit = registry.counter(
                "distsender.range_cache_hit")
            self._c_cache_miss = registry.counter(
                "distsender.range_cache_miss")
            self._c_cache_inval = registry.counter(
                "distsender.range_cache_invalidation")

    def resolve(self, token: Any, key: Any = None, gateway=None,
                record_load: bool = False) -> Range:
        """Resolve a routing token to the :class:`Range` owning ``key``.

        A plain :class:`Range` token (legacy fixed provisioning) is
        returned unchanged — the elastic path costs fixed ranges one
        isinstance check.  A :class:`TableSpan` token is looked up in
        the span-keyed descriptor cache (bisect over cached start keys);
        misses snapshot the span's current descriptors and subscribe to
        its change notifications.  A stale snapshot can still route to a
        range that no longer owns the key — the serve path bounces those
        with ``RangeKeyMismatch`` and the retry loop invalidates and
        re-resolves.
        """
        if not isinstance(token, TableSpan):
            return token
        if key is None:
            return token.descriptors[0].rng
        self._ensure_cache_counters()
        entry = self._span_cache.get(token.name)
        if entry is None:
            self._c_cache_miss.inc()
            token.subscribe(self._on_span_change)
            entry = (token.generation, list(token._starts),
                     list(token.descriptors))
            self._span_cache[token.name] = entry
        else:
            self._c_cache_hit.inc()
        _generation, starts, descriptors = entry
        idx = bisect_right(starts, encode_key(key)) - 1
        if idx < 0:
            idx = 0
        descriptor = descriptors[idx]
        if record_load and gateway is not None:
            descriptor.load.record(self.cluster.sim.now, key=key,
                                   region=gateway.locality.region)
        return descriptor.rng

    def _invalidate_token(self, token: Any) -> None:
        """Drop the cached descriptor snapshot after a mismatch bounce."""
        if isinstance(token, TableSpan):
            if self._span_cache.pop(token.name, None) is not None:
                self._c_cache_inval.inc()

    def _on_span_change(self, span: TableSpan, range_ids: List[int]) -> None:
        """Span subscription: a split/merge landed.  Drop the descriptor
        snapshot and every (gateway, range_id) replica-routing entry for
        the affected ranges — their membership/lease placement may have
        just changed identity entirely."""
        if self._span_cache.pop(span.name, None) is not None:
            if self._c_cache_inval is not None:
                self._c_cache_inval.inc()
        affected = set(range_ids)
        for cache_key in [k for k in self._route_cache if k[1] in affected]:
            del self._route_cache[cache_key]

    # -- replica selection -----------------------------------------------------

    def nearest_replica(self, gateway, rng: Range):
        """The live, reachable replica cheapest to reach from ``gateway``.

        Replicas behind an open circuit breaker or an (asymmetric)
        partition are skipped so chaos cannot route reads into a black
        hole.

        With a clean fault plane and no open breakers the selection
        depends only on membership and lease placement, so the result is
        cached per (gateway, range) and reused until the range's
        ``routing_generation`` moves.  Any installed fault or open
        breaker bypasses the cache entirely (full rescan per read)."""
        cacheable = (not self.network.faults.active
                     and not self.breakers.any_open)
        if cacheable:
            cached = self._route_cache.get((gateway.node_id, rng.range_id))
            if cached is not None and cached[1] == rng.routing_generation:
                return cached[0]
        latency = self.network.latency
        now = self.cluster.sim.now
        # A dead gateway node is still a valid locality vantage point
        # (the client process is separate from the store): only filter
        # on reachability when the gateway itself is up.
        gateway_up = not self.network.node_is_dead(gateway.node_id)
        best = None
        best_cost = None
        for replica in rng.replicas.values():
            node = replica.node
            if self.network.node_is_dead(node.node_id):
                continue
            if gateway_up and node.node_id != gateway.node_id and not (
                    self.network.reachable(gateway, node)
                    and self.network.reachable(node, gateway)):
                continue
            if self.breakers.for_node(node.node_id).blocked(now):
                continue
            if node.node_id == gateway.node_id:
                cost = 0.0
            else:
                cost = latency.rtt(gateway.locality.region,
                                   gateway.locality.zone,
                                   node.locality.region, node.locality.zone)
            if best_cost is None or cost < best_cost:
                best, best_cost = replica, cost
        if best is None:
            raise FollowerReadNotAvailableError(rng.range_id, None, None)
        if cacheable:
            self._route_cache[(gateway.node_id, rng.range_id)] = (
                best, rng.routing_generation)
        return best

    # -- hardened leaseholder RPC ----------------------------------------------

    def _leaseholder_call(self, gateway, token, handler,
                          span=None, op: str = "rpc",
                          deadline_ms: Optional[float] = None,
                          key: Any = None,
                          record_load: bool = False) -> Future:
        """Send ``handler`` to the owning range's leaseholder with the
        full robustness kit: per-RPC timeout, seeded exponential backoff
        with jitter between attempts, a per-replica circuit breaker, and
        automatic lease failover when the leaseholder is unreachable but
        quorum survives (paper §4.1 — previously an operator action).

        ``token`` is a :class:`Range` or :class:`TableSpan`; it is
        re-resolved against ``key`` on *every* attempt, so a split or
        merge landing mid-call (signalled by a ``RangeKeyMismatch``
        bounce, which invalidates the descriptor cache) re-routes the
        next attempt to the new owner instead of failing the request.

        ``handler`` takes ``(rng, attempt_span)``: the resolved range
        and the per-attempt span (or None) to thread into the serve-side
        coroutine.  The call is traced as a ``kv.<op>`` span (child of
        ``span``) with one ``rpc.attempt`` child per try, annotated with
        breaker, backoff and failover decisions.
        """
        sim = self.cluster.sim
        tracer = sim.obs.tracer
        # With observability off every span below is NOOP_SPAN anyway;
        # skipping the calls (and the f-string label work) keeps this
        # per-attempt loop off the profile.
        obs_on = sim.obs.enabled

        def attempts() -> Generator:
            rng = self.resolve(token, key, gateway=gateway,
                               record_load=record_load)
            op_span = (tracer.start_span(f"kv.{op}", parent=span,
                                         range=rng.name)
                       if obs_on else NOOP_SPAN)
            try:
                # Constructed lazily: the zero-retry fast path never
                # draws a backoff delay, so skip the allocation.
                backoff = None
                last_error: Optional[BaseException] = None
                for attempt in range(self.rpc_max_attempts):
                    if attempt:
                        # Attempt 0 reuses the resolve above — nothing
                        # can have moved before the first yield.
                        rng = self.resolve(token, key)
                    if deadline_ms is not None and sim.now >= deadline_ms:
                        # Nobody is waiting for this answer anymore:
                        # drop the RPC instead of spending an attempt
                        # (and server capacity) past the deadline.
                        self._c_deadline_drops.inc()
                        op_span.annotate(error="deadline_exceeded")
                        raise DeadlineExceededError(f"kv.{op}", deadline_ms,
                                                    sim.now)
                    if self.network.node_is_dead(gateway.node_id):
                        # The client's own gateway store is down: fail fast
                        # instead of blaming (and failing over) a healthy
                        # leaseholder for our local outage.
                        op_span.annotate(error="gateway_down")
                        raise NetworkUnavailableError(
                            f"gateway node {gateway.node_id} is down")
                    dst = rng.leaseholder_node
                    breaker = self.breakers.for_node(dst.node_id)
                    attempt_span = (tracer.start_span(
                        "rpc.attempt", parent=op_span, attempt=attempt + 1,
                        dst=dst.node_id) if obs_on else NOOP_SPAN)
                    if not breaker.allow(sim.now):
                        # Known-bad leaseholder: try to move the lease right
                        # away rather than burning a timeout on it.
                        attempt_span.annotate(breaker="open")
                        if self.auto_failover and rng.maybe_failover(
                                from_node=gateway, force=True):
                            self._c_failovers.inc()
                            attempt_span.finish(failover=True)
                            continue
                        last_error = NetworkUnavailableError(
                            f"node {dst.node_id}: circuit breaker open")
                        if backoff is None:
                            backoff = ExponentialBackoff(
                                rng=self._retry_rng,
                                base_ms=10.0, max_ms=400.0)
                        delay = backoff.next_delay()
                        if (deadline_ms is not None
                                and sim.now + delay >= deadline_ms):
                            self._c_deadline_drops.inc()
                            attempt_span.finish(error="deadline_exceeded")
                            raise DeadlineExceededError(
                                f"kv.{op}", deadline_ms, sim.now)
                        attempt_span.finish(backoff_ms=round(delay, 3))
                        yield sim.sleep(delay)
                        continue
                    call = self.network.call(
                        gateway, dst,
                        lambda _rng=rng, _span=attempt_span: handler(_rng,
                                                                     _span),
                        span=attempt_span)
                    timeout_ms = self.rpc_timeout_ms
                    if deadline_ms is not None:
                        remaining = deadline_ms - sim.now
                        timeout_ms = (remaining if timeout_ms is None
                                      else min(timeout_ms, remaining))
                    if timeout_ms is not None:
                        call = with_timeout(
                            sim, call, timeout_ms,
                            self._timeout_error_factory(dst.node_id))
                    try:
                        value = yield call
                    except (NetworkUnavailableError, ClockFencedError) as err:
                        # ClockFencedError: the leaseholder refused to
                        # serve because it clock-fenced itself — treat
                        # exactly like node death: fail the lease over
                        # to a healthy voter and retry there.
                        breaker.record_failure(sim.now)
                        last_error = err
                        self._c_retries.inc()
                        attempt_span.annotate(error=type(err).__name__)
                        if self.auto_failover and rng.maybe_failover(
                                from_node=gateway,
                                force=(breaker.is_open
                                       or isinstance(err, ClockFencedError))):
                            self._c_failovers.inc()
                            attempt_span.annotate(failover=True)
                        if backoff is None:
                            backoff = ExponentialBackoff(
                                rng=self._retry_rng,
                                base_ms=10.0, max_ms=400.0)
                        delay = backoff.next_delay()
                        if (deadline_ms is not None
                                and sim.now + delay >= deadline_ms):
                            # The deadline-propagation fix: a doomed
                            # retry used to sleep its full backoff and
                            # fire anyway, long after the client had
                            # given up.
                            self._c_deadline_drops.inc()
                            attempt_span.finish(error="deadline_exceeded")
                            raise DeadlineExceededError(
                                f"kv.{op}", deadline_ms, sim.now)
                        attempt_span.finish(backoff_ms=round(delay, 3))
                        yield sim.sleep(delay)
                        continue
                    except RangeKeyMismatchError as err:
                        # The contacted range no longer owns the key — a
                        # split/merge won the race.  Not a failure of the
                        # node (it answered), so the breaker records
                        # success; invalidate the descriptor cache and
                        # re-resolve immediately, no backoff.
                        breaker.record_success()
                        last_error = err
                        self._c_retries.inc()
                        attempt_span.finish(error="range_key_mismatch")
                        self._invalidate_token(token)
                        continue
                    except Exception as err:
                        # The node answered; the failure is application-level.
                        breaker.record_success()
                        attempt_span.finish(error=type(err).__name__)
                        raise
                    breaker.record_success()
                    attempt_span.finish()
                    return value
                raise last_error
            finally:
                op_span.finish()
        names = self._retry_names
        name = names.get(gateway.node_id)
        if name is None:
            name = names[gateway.node_id] = f"rpc-retry@{gateway.node_id}"
        return sim.spawn(attempts(), name=name)

    # -- reads -------------------------------------------------------------------

    def read(self, gateway, token, key: Any, ts: Timestamp,
             txn_id: Optional[int] = None,
             uncertainty_limit: Optional[Timestamp] = None,
             routing: str = ReadRouting.LEASEHOLDER,
             allow_server_side_bump: bool = False, span=None,
             deadline_ms: Optional[float] = None) -> Future:
        """Read ``key`` at ``ts``; resolves with (ReadResult, effective_ts).

        ``allow_server_side_bump`` lets the serving replica retry
        uncertainty restarts locally (legal only when the transaction has
        no other spans); otherwise
        ``ReadWithinUncertaintyIntervalError`` rejections bubble up for
        the transaction coordinator to handle.
        """
        if routing == ReadRouting.NEAREST:
            rng = self.resolve(token, key)
            replica = self.nearest_replica(gateway, rng)
            if not replica.is_leaseholder:
                return self._follower_read_with_fallback(
                    gateway, token, replica, key, ts, txn_id,
                    uncertainty_limit, allow_server_side_bump, span=span)
        return self._leaseholder_read(gateway, token, key, ts, txn_id,
                                      uncertainty_limit,
                                      allow_server_side_bump, span=span,
                                      deadline_ms=deadline_ms)

    def _leaseholder_read(self, gateway, token, key, ts, txn_id,
                          uncertainty_limit,
                          allow_server_side_bump: bool = False,
                          span=None,
                          deadline_ms: Optional[float] = None) -> Future:
        return self._leaseholder_call(
            gateway, token,
            lambda _rng, _span=None: _rng.serve_read(key, ts, txn_id,
                                                     uncertainty_limit,
                                                     allow_server_side_bump,
                                                     span=_span,
                                                     deadline_ms=deadline_ms),
            span=span, op="read", deadline_ms=deadline_ms, key=key,
            record_load=True)

    def _follower_read_with_fallback(self, gateway, token, replica,
                                     key, ts, txn_id, uncertainty_limit,
                                     allow_server_side_bump: bool,
                                     span=None) -> Future:
        result = Future(self.cluster.sim)
        follower_span = self.cluster.sim.obs.tracer.start_span(
            "kv.read.follower", parent=span, range=replica.range.name,
            replica=replica.node.node_id)
        if self.adaptive_follower_wait_ms > 0:
            handler = (lambda: replica.follower_read_waiting(
                key, ts, txn_id=txn_id,
                uncertainty_limit=uncertainty_limit,
                allow_server_side_bump=allow_server_side_bump,
                max_wait_ms=self.adaptive_follower_wait_ms))
        else:
            handler = (lambda: _value_generator(
                lambda: replica.follower_read(
                    key, ts, txn_id=txn_id,
                    uncertainty_limit=uncertainty_limit,
                    allow_server_side_bump=allow_server_side_bump)))
        attempt = self.network.call(gateway, replica.node, handler,
                                    span=follower_span)

        def on_done(fut: Future) -> None:
            error = fut.error
            if error is None:
                self._c_follower_served.inc()
                descriptor = replica.range.descriptor
                if descriptor is not None:
                    descriptor.load.record(self.cluster.sim.now, key=key,
                                           region=gateway.locality.region)
                follower_span.finish(served=True)
                result.resolve(fut._value)
                return
            if isinstance(error, (FollowerReadNotAvailableError,
                                  WriteIntentError,
                                  NetworkUnavailableError)):
                # Redirect to the leaseholder for conflict resolution /
                # an up-to-date read (paper §5.1.1), or because the
                # follower died / got cut off mid-read — in which case
                # its breaker keeps later reads away until it recovers.
                if isinstance(error, NetworkUnavailableError):
                    self.breakers.for_node(
                        replica.node.node_id).record_failure(
                            self.cluster.sim.now)
                self._c_fallbacks.inc()
                follower_span.finish(fallback=type(error).__name__)
                fallback = self._leaseholder_read(
                    gateway, token, key, ts, txn_id, uncertainty_limit,
                    allow_server_side_bump, span=span)
                fallback.add_callback(
                    lambda f: result.reject(f.error) if f.error is not None
                    else result.resolve(f._value))
                return
            follower_span.finish(error=type(error).__name__)
            result.reject(error)

        attempt.add_callback(on_done)
        return result

    # -- stale reads ----------------------------------------------------------------

    def exact_staleness_read(self, gateway, token, key: Any,
                             ts: Timestamp, span=None) -> Future:
        """``AS OF SYSTEM TIME <ts>`` single-key read (paper §5.3.1).

        Resolves with the bare ReadResult (the timestamp is the caller's
        and never moves — stale reads have no uncertainty interval).
        """
        inner = self.read(gateway, token, key, ts,
                          routing=ReadRouting.NEAREST, span=span)
        result = Future(self.cluster.sim)
        inner.add_callback(
            lambda f: result.reject(f.error) if f.error is not None
            else result.resolve(f._value[0]))
        return result

    def bounded_staleness_read(self, gateway, token, key: Any,
                               min_ts: Timestamp,
                               nearest_only: bool = False,
                               span=None) -> Future:
        """``with_min_timestamp(...)`` read (paper §5.3.2).

        One RPC to the nearest replica negotiates the highest locally
        servable timestamp and performs the read there.  If the local
        maximum falls below ``min_ts`` the read is either redirected to
        the leaseholder at ``min_ts`` or fails (``nearest_only``).
        """
        rng = self.resolve(token, key)
        replica = self.nearest_replica(gateway, rng)
        read_span = self.cluster.sim.obs.tracer.start_span(
            "kv.read.bounded_staleness", parent=span, range=rng.name,
            replica=replica.node.node_id)

        def negotiate_and_read():
            servable = replica.max_servable_ts(key)
            if servable < min_ts:
                raise StaleReadBoundError(
                    f"local replica servable {servable} below bound {min_ts}")
            return replica.store.get(key, servable), servable

        result = Future(self.cluster.sim)
        attempt = self.network.call(
            gateway, replica.node,
            lambda: _value_generator(negotiate_and_read), span=read_span)

        def on_done(fut: Future) -> None:
            error = fut.error
            if error is None:
                read_span.finish()
                result.resolve(fut._value)
                return
            if isinstance(error, (StaleReadBoundError,
                                  NetworkUnavailableError)) and not nearest_only:
                # Route to the leaseholder using the staleness bound as
                # the read timestamp (paper §5.3.2).
                read_span.finish(fallback=type(error).__name__)
                fallback = self._leaseholder_read(
                    gateway, token, key, min_ts, None, None, span=span)
                fallback.add_callback(
                    lambda f: result.reject(f.error) if f.error is not None
                    else result.resolve(f._value))
                return
            read_span.finish(error=type(error).__name__)
            result.reject(error)

        attempt.add_callback(on_done)
        return result

    def negotiate_bounded_staleness(self, gateway,
                                    spans: Iterable[Tuple[Range, Any]],
                                    min_ts: Timestamp, span=None) -> Future:
        """The §5.3.2 negotiation phase for multi-key bounded-staleness
        reads: ask the nearest replica of every touched range for its
        maximum locally-servable timestamp and take the minimum.

        Resolves with the negotiated timestamp; rejects with
        :class:`StaleReadBoundError` if any replica cannot satisfy
        ``min_ts`` locally (the caller decides whether to redirect to
        leaseholders at ``min_ts`` instead).
        """
        spans = list(spans)
        negotiate_span = self.cluster.sim.obs.tracer.start_span(
            "kv.negotiate_staleness", parent=span, spans=len(spans))
        futures = []
        for token, key in spans:
            replica = self.nearest_replica(gateway, self.resolve(token, key))
            futures.append(self.network.call(
                gateway, replica.node,
                lambda replica=replica, key=key: _value_generator(
                    lambda: replica.max_servable_ts(key)),
                span=negotiate_span))
        result = Future(self.cluster.sim)
        gathered = all_of(self.cluster.sim, futures)

        def on_done(fut: Future) -> None:
            if fut.error is not None:
                negotiate_span.finish(error=type(fut.error).__name__)
                result.reject(fut.error)
                return
            try:
                negotiated = negotiated_timestamp(fut._value, min_ts)
            except StaleReadBoundError as err:
                negotiate_span.finish(error="below_bound")
                result.reject(err)
            else:
                negotiate_span.finish()
                result.resolve(negotiated)

        gathered.add_callback(on_done)
        return result

    # -- writes -------------------------------------------------------------------

    def write(self, gateway, token, key: Any, ts: Timestamp, value: Any,
              txn_id: int, anchor_node_id: int, span=None,
              deadline_ms: Optional[float] = None) -> Future:
        """Write an intent; resolves with the timestamp it was laid at.

        Safe to retry: re-laying the same transaction's intent is
        idempotent (it replaces its own intent)."""
        return self._leaseholder_call(
            gateway, token,
            lambda _rng, _span=None: _rng.serve_write(
                key, ts, value, txn_id, anchor_node_id, span=_span,
                deadline_ms=deadline_ms),
            span=span, op="write", deadline_ms=deadline_ms, key=key,
            record_load=True)

    def locking_read(self, gateway, token, key: Any, ts: Timestamp,
                     txn_id: int, anchor_node_id: int, span=None,
                     deadline_ms: Optional[float] = None) -> Future:
        """SELECT FOR UPDATE read: resolves with (value, lock_ts)."""
        return self._leaseholder_call(
            gateway, token,
            lambda _rng, _span=None: _rng.serve_locking_read(
                key, ts, txn_id, anchor_node_id, span=_span,
                deadline_ms=deadline_ms),
            span=span, op="locking_read", deadline_ms=deadline_ms, key=key,
            record_load=True)

    def refresh(self, gateway, token, key: Any, lo: Timestamp,
                hi: Timestamp, txn_id: int, span=None,
                deadline_ms: Optional[float] = None) -> Future:
        return self._leaseholder_call(
            gateway, token,
            lambda _rng, _span=None: _rng.serve_refresh(key, lo, hi, txn_id,
                                                        span=_span),
            span=span, op="refresh", deadline_ms=deadline_ms, key=key)

    def write_txn_record(self, gateway, token, txn_id: int, status: str,
                         commit_ts: Optional[Timestamp], span=None) -> Future:
        # No key: the transaction record lives on the anchor range the
        # transaction pinned at its first write, split or no split.
        return self._leaseholder_call(
            gateway, token,
            lambda _rng, _span=None: _rng.serve_txn_record(txn_id, status,
                                                           commit_ts,
                                                           span=_span),
            span=span, op="txn_record")

    def epoch_order(self, gateway, token, epoch: int, txn_ids,
                    span=None) -> Future:
        """Replicate an epoch-OCC ordering decision on ``token``'s range.

        No key: like transaction records, the decision is pinned to the
        anchor range the epoch service chose, split or no split.  Safe
        to retry — re-proposing the same epoch's order overwrites it
        with identical content.
        """
        return self._leaseholder_call(
            gateway, token,
            lambda _rng, _span=None: _rng.serve_epoch_order(
                epoch, tuple(txn_ids), span=_span),
            span=span, op="epoch_order")

    def resolve_intent(self, gateway, token, key: Any, txn_id: int,
                       commit_ts: Optional[Timestamp], span=None) -> Future:
        return self._leaseholder_call(
            gateway, token,
            lambda _rng, _span=None: _rng.serve_resolve_intent(key, txn_id,
                                                               commit_ts,
                                                               span=_span),
            span=span, op="resolve_intent", key=key)

    def resolve_intents(self, gateway, spans: Iterable[Tuple[Any, Any]],
                        txn_id: int, commit_ts: Optional[Timestamp],
                        span=None) -> Future:
        """Resolve a batch of intents in parallel; resolves when all do."""
        futures = [self.resolve_intent(gateway, token, key, txn_id, commit_ts,
                                       span=span)
                   for token, key in spans]
        return all_of(self.cluster.sim, futures)
