"""Replicated commands and transaction records.

Commands are the payloads of Raft log entries.  Applying the same
command sequence on every replica keeps the MVCC stores identical, which
is what makes follower reads possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..sim.clock import Timestamp

__all__ = [
    "EpochOrderCommand",
    "PutIntentCommand",
    "ResolveIntentCommand",
    "SetTxnRecordCommand",
    "TxnRecord",
    "TxnStatus",
]


class TxnStatus:
    PENDING = "pending"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class TxnRecord:
    """Authoritative transaction state, stored on the anchor range."""

    txn_id: int
    status: str = TxnStatus.PENDING
    commit_ts: Optional[Timestamp] = None


@dataclass(frozen=True)
class PutIntentCommand:
    """Lay a provisional (intent) version of ``key``."""

    key: Any
    ts: Timestamp
    value: Any
    txn_id: int
    anchor_node_id: int


@dataclass(frozen=True)
class ResolveIntentCommand:
    """Finalize an intent: commit at ``commit_ts`` or abort if ``None``."""

    key: Any
    txn_id: int
    commit_ts: Optional[Timestamp]


@dataclass(frozen=True)
class SetTxnRecordCommand:
    """Create or update the transaction record on the anchor range."""

    txn_id: int
    status: str
    commit_ts: Optional[Timestamp]


@dataclass(frozen=True)
class EpochOrderCommand:
    """Durably replicate one epoch's commit order (epoch-OCC backend).

    The epoch service decides a total order over the epoch's
    transactions and replicates that decision through Raft *before*
    validating/applying any of them, so the order survives coordinator
    failure.  Deliberately key-less: the decision is not tied to any
    user key, so splits must never re-route its application.
    """

    epoch: int
    txn_ids: tuple
