"""Ranges, replicas, closed timestamps, and request routing."""

from .closedts import (
    ClosedTimestampPolicy,
    DEFAULT_CLOSED_TS_LAG_MS,
    LagPolicy,
    LeadPolicy,
)
from .commands import (
    PutIntentCommand,
    ResolveIntentCommand,
    SetTxnRecordCommand,
    TxnRecord,
    TxnStatus,
)
from .distsender import DistSender, ReadRouting
from .keyspace import (
    Keyspace,
    RangeDescriptor,
    RangeLoad,
    TableSpan,
    encode_key,
    live_ranges,
)
from .range import Range
from .replica import Replica

__all__ = [
    "Keyspace",
    "RangeDescriptor",
    "RangeLoad",
    "TableSpan",
    "encode_key",
    "live_ranges",
    "ClosedTimestampPolicy",
    "DEFAULT_CLOSED_TS_LAG_MS",
    "LagPolicy",
    "LeadPolicy",
    "PutIntentCommand",
    "ResolveIntentCommand",
    "SetTxnRecordCommand",
    "TxnRecord",
    "TxnStatus",
    "DistSender",
    "ReadRouting",
    "Range",
    "Replica",
]
