"""Per-replica circuit breaker for the DistSender.

Mirrors CockroachDB's per-replica circuit breakers: a replica that
repeatedly fails RPCs is skipped for a cooldown window, after which a
single probe request is let through; a successful probe closes the
breaker, a failed one re-opens it.  This keeps gray (slow-but-alive)
and freshly-dead replicas off the hot path without waiting out a full
RPC timeout per request.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

__all__ = ["CircuitBreaker", "BreakerState"]


class BreakerState:
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-counting breaker for one destination node."""

    def __init__(self, failure_threshold: int = 3,
                 cooldown_ms: float = 500.0,
                 on_transition: Optional[Callable[[str, str], None]] = None,
                 rng: Optional[random.Random] = None,
                 probe_jitter: float = 0.0):
        self.failure_threshold = failure_threshold
        self.cooldown_ms = cooldown_ms
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at_ms = 0.0
        self.trips = 0
        self._probe_inflight = False
        #: Half-open probe scheduling jitter: each time the breaker
        #: opens, the next probe window is stretched by a factor drawn
        #: from ``rng`` in ``[1, 1 + probe_jitter]``.  Seeded through
        #: the simulation RNG so a fleet of breakers opened by the same
        #: fault does not probe in lockstep, while every run stays
        #: byte-deterministic.  Default 0.0 keeps the legacy fixed
        #: cooldown.
        self._rng = rng
        self.probe_jitter = probe_jitter
        self._cooldown_scale = 1.0
        #: Called with (old_state, new_state) on every state change so
        #: the owner can mirror breaker activity onto the metrics
        #: registry without the breaker importing it.
        self._on_transition = on_transition

    def _set_state(self, new_state: str) -> None:
        if new_state == self.state:
            return
        old_state, self.state = self.state, new_state
        if self._on_transition is not None:
            self._on_transition(old_state, new_state)

    def allow(self, now_ms: float) -> bool:
        """May a request be sent now?  Transitions OPEN → HALF_OPEN when
        the cooldown has elapsed (the caller becomes the probe)."""
        if self.state == BreakerState.CLOSED:
            return True
        if self.state == BreakerState.OPEN:
            if now_ms - self.opened_at_ms < self.cooldown_ms * self._cooldown_scale:
                return False
            self._set_state(BreakerState.HALF_OPEN)
            self._probe_inflight = False
        # HALF_OPEN: exactly one probe at a time.
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    def record_success(self) -> None:
        self._set_state(BreakerState.CLOSED)
        self.consecutive_failures = 0
        self._probe_inflight = False

    def _draw_cooldown_scale(self) -> None:
        if self._rng is not None and self.probe_jitter > 0.0:
            self._cooldown_scale = 1.0 + self.probe_jitter * self._rng.random()
        else:
            self._cooldown_scale = 1.0

    def record_failure(self, now_ms: float) -> None:
        self.consecutive_failures += 1
        self._probe_inflight = False
        if self.state == BreakerState.HALF_OPEN:
            # Failed probe: back to a full cooldown.
            self._set_state(BreakerState.OPEN)
            self.opened_at_ms = now_ms
            self._draw_cooldown_scale()
            return
        if (self.state == BreakerState.CLOSED
                and self.consecutive_failures >= self.failure_threshold):
            self._set_state(BreakerState.OPEN)
            self.opened_at_ms = now_ms
            self._draw_cooldown_scale()
            self.trips += 1

    def reset(self) -> None:
        """Forget all failure state (the destination node restarted).

        Also clears a stranded in-flight probe: if the probe RPC was
        abandoned when the node died, ``_probe_inflight`` would
        otherwise deny every request forever.  ``trips`` is a lifetime
        counter and survives."""
        self._set_state(BreakerState.CLOSED)
        self.consecutive_failures = 0
        self._probe_inflight = False

    @property
    def is_open(self) -> bool:
        return self.state == BreakerState.OPEN

    def blocked(self, now_ms: float) -> bool:
        """Non-mutating probe-free check (for replica *selection*; use
        :meth:`allow` on the actual send path)."""
        return (self.state == BreakerState.OPEN
                and now_ms - self.opened_at_ms
                < self.cooldown_ms * self._cooldown_scale)


class BreakerSet:
    """Lazy per-node breaker collection.

    With a ``registry`` every breaker state change is mirrored onto
    counters (``breaker.transitions{node,to}``) and a per-node state
    gauge (``breaker.open{node}``: 1 while open, else 0), so chaos
    scenarios can see *when* and *where* breakers fired, not just the
    lifetime trip total.
    """

    def __init__(self, failure_threshold: int = 3,
                 cooldown_ms: float = 500.0, registry=None,
                 rng: Optional[random.Random] = None,
                 probe_jitter: float = 0.0):
        self.failure_threshold = failure_threshold
        self.cooldown_ms = cooldown_ms
        self.registry = registry
        #: Shared seeded RNG for half-open probe jitter (None = no jitter).
        self.rng = rng
        self.probe_jitter = probe_jitter
        self._breakers: Dict[int, CircuitBreaker] = {}
        #: Bumped on every breaker state transition (cache invalidation).
        self.generation = 0
        self._open_nodes: set = set()

    @property
    def any_open(self) -> bool:
        """Is any breaker in the OPEN state?  While False, ``blocked``
        is False for every node regardless of the clock, so replica
        selection is independent of breaker state (routing caches key
        on this)."""
        return bool(self._open_nodes)

    def _transition_hook(self, node_id: int):
        registry = self.registry

        def on_transition(old_state: str, new_state: str) -> None:
            self.generation += 1
            if new_state == BreakerState.OPEN:
                self._open_nodes.add(node_id)
            else:
                self._open_nodes.discard(node_id)
            if registry is not None:
                registry.counter("breaker.transitions",
                                 node=node_id, to=new_state).inc()
                registry.gauge("breaker.open", node=node_id).set(
                    1 if new_state == BreakerState.OPEN else 0)
        return on_transition

    def for_node(self, node_id: int) -> CircuitBreaker:
        breaker = self._breakers.get(node_id)
        if breaker is None:
            breaker = CircuitBreaker(self.failure_threshold,
                                     self.cooldown_ms,
                                     on_transition=self._transition_hook(node_id),
                                     rng=self.rng,
                                     probe_jitter=self.probe_jitter)
            self._breakers[node_id] = breaker
        return breaker

    def reset(self, node_id: int) -> None:
        """Reset the breaker for ``node_id`` (no-op if none exists)."""
        breaker = self._breakers.get(node_id)
        if breaker is not None:
            breaker.reset()

    def total_trips(self) -> int:
        return sum(b.trips for b in self._breakers.values())


__all__.append("BreakerSet")
