"""A replica: one node's copy of one Range's state.

Replicas apply replicated commands to their local MVCC store and serve
reads.  Leaseholder-only structures (timestamp cache, lock table) live
on the :class:`~repro.kv.range.Range` object, which represents the
leaseholder's view.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, TYPE_CHECKING

from ..errors import (
    FollowerReadNotAvailableError,
    ReadWithinUncertaintyIntervalError,
)
from ..sim.clock import TS_ZERO, Timestamp
from ..storage.mvcc import MVCCStore, ReadResult
from .commands import (
    EpochOrderCommand,
    PutIntentCommand,
    ResolveIntentCommand,
    SetTxnRecordCommand,
    TxnRecord,
)

if TYPE_CHECKING:  # pragma: no cover
    from .range import Range

__all__ = ["Replica"]


class Replica:
    """One node's participation in one Range."""

    def __init__(self, rng: "Range", node) -> None:
        self.range = rng
        self.range_id = rng.range_id
        self.node = node
        # With observability disabled the store skips its counter
        # mirroring entirely (registry=None) instead of calling into the
        # no-op registry on every get/put.
        obs = rng.sim.obs
        self.store = MVCCStore(registry=obs.registry if obs.enabled else None)
        #: Transaction records anchored on this range (replicated state).
        self.txn_records: Dict[int, TxnRecord] = {}
        #: Epoch-OCC commit-order decisions anchored on this range
        #: (replicated state): epoch -> ordered txn-id tuple.
        self.epoch_orders: Dict[int, tuple] = {}

    # -- raft apply -----------------------------------------------------------

    def apply(self, command: Any) -> None:
        """Apply a committed Raft command to this replica's state."""
        if isinstance(command, PutIntentCommand):
            self.store.put_intent(command.key, command.ts, command.value,
                                  command.txn_id, command.anchor_node_id)
        elif isinstance(command, ResolveIntentCommand):
            self.store.resolve_intent(command.key, command.txn_id,
                                      command.commit_ts)
            # The leaseholder's lock table queues waiters on this intent.
            if self.node.node_id == self.range.leaseholder_node_id:
                self.range.lock_table.release(command.key, command.txn_id)
        elif isinstance(command, SetTxnRecordCommand):
            record = self.txn_records.get(command.txn_id)
            if record is None:
                record = TxnRecord(txn_id=command.txn_id)
                self.txn_records[command.txn_id] = record
            record.status = command.status
            record.commit_ts = command.commit_ts
        elif isinstance(command, EpochOrderCommand):
            self.epoch_orders[command.epoch] = command.txn_ids
        elif command == ("noop",):
            pass
        else:
            raise TypeError(f"unknown command {command!r}")

    # -- follower reads ---------------------------------------------------------

    @property
    def closed_ts(self) -> Timestamp:
        peer = self.range.group.peers.get(self.node.node_id)
        return peer.closed_ts if peer else TS_ZERO

    @property
    def is_leaseholder(self) -> bool:
        return self.node.node_id == self.range.leaseholder_node_id

    def can_serve_follower_read(self, ts: Timestamp) -> bool:
        return self.closed_ts >= ts

    def follower_read(self, key: Any, ts: Timestamp,
                      txn_id: Optional[int] = None,
                      uncertainty_limit: Optional[Timestamp] = None,
                      allow_server_side_bump: bool = False):
        """Serve a read from this (possibly non-leaseholder) replica.

        Requires the whole visibility window — the read timestamp and, if
        present, the uncertainty interval — to be closed locally
        (paper §6.2.1).  Raises
        :class:`FollowerReadNotAvailableError` otherwise;
        :class:`~repro.errors.WriteIntentError` escapes to the caller,
        which redirects the read to the leaseholder for conflict
        resolution (paper §5.1.1).

        Returns ``(ReadResult, effective_read_ts)``.  When the caller's
        transaction has no other spans it sets ``allow_server_side_bump``
        and uncertainty restarts are retried locally at the uncertain
        value's timestamp, avoiding a second WAN round trip.
        """
        required = ts
        if uncertainty_limit is not None and uncertainty_limit > required:
            required = uncertainty_limit
        descriptor = self.range.descriptor
        if descriptor is not None and not descriptor.contains_key(key):
            # The key split/merged away: this replica's store no longer
            # holds its history, and serving would read a phantom
            # absence.  Surface as not-available so the caller falls
            # back to (leaseholder) routing, which re-resolves.
            raise FollowerReadNotAvailableError(
                self.range_id, required, self.closed_ts)
        if self.closed_ts < required:
            raise FollowerReadNotAvailableError(
                self.range_id, required, self.closed_ts)
        while True:
            try:
                result = self.store.get(key, ts, txn_id=txn_id,
                                        uncertainty_limit=uncertainty_limit)
            except ReadWithinUncertaintyIntervalError as err:
                if not allow_server_side_bump:
                    raise
                ts = err.value_ts
                continue
            return result, ts

    def follower_read_waiting(self, key: Any, ts: Timestamp,
                              txn_id=None, uncertainty_limit=None,
                              allow_server_side_bump: bool = False,
                              max_wait_ms: float = 0.0):
        """Follower read that waits locally for the closed timestamp.

        The adaptive policy the paper sketches in §5.3.1/§6.2.1: instead
        of immediately redirecting to the leaseholder when the local
        closed timestamp lags, wait up to ``max_wait_ms`` for the next
        closed-timestamp update to arrive.  Worth it when the remaining
        gap is smaller than a WAN round trip.

        This is a coroutine (it sleeps); raises
        :class:`FollowerReadNotAvailableError` if the deadline passes.
        """
        sim = self.node.sim
        deadline = sim.now + max_wait_ms
        poll_ms = 5.0
        while True:
            try:
                return self.follower_read(
                    key, ts, txn_id=txn_id,
                    uncertainty_limit=uncertainty_limit,
                    allow_server_side_bump=allow_server_side_bump)
            except FollowerReadNotAvailableError:
                if sim.now + poll_ms > deadline:
                    raise
                yield sim.sleep(poll_ms)

    def max_servable_ts(self, key: Any) -> Timestamp:
        """Highest timestamp a (stale) read of ``key`` can use locally.

        The bounded-staleness negotiation (paper §5.3.2): the minimum of
        the local closed timestamp and just-below any conflicting intent.
        """
        servable = self.closed_ts
        intent = self.store.intent_for(key)
        if intent is not None and intent.ts <= servable:
            servable = intent.ts.prev()
        return servable
