"""Chaos engineering: nemesis fault orchestration + invariant checking.

A :class:`~repro.chaos.nemesis.Nemesis` runs a declarative schedule of
timed fault events (inject at t, heal at t') against a cluster's
:class:`~repro.sim.network.FaultPlane` while seeded clients record an
operation :class:`~repro.chaos.invariants.History`.  Afterwards the
invariant checker audits the history against the database's final
state, Jepsen-style: no lost acknowledged writes, no dirty reads, and
bounded indeterminacy for ambiguous commits.

Built-in scenarios live in :mod:`repro.chaos.scenarios` and run via
``python -m repro chaos <scenario>``.
"""

from .invariants import (
    FAIL,
    INDETERMINATE,
    History,
    InvariantReport,
    OK,
    OpRecord,
    availability_timeline,
    check_history,
    render_timeline,
)
from .nemesis import FaultEvent, Nemesis
from .scenarios import ChaosHarness, SCENARIOS, ScenarioResult, run_scenario

__all__ = [
    "FAIL",
    "INDETERMINATE",
    "OK",
    "History",
    "InvariantReport",
    "OpRecord",
    "availability_timeline",
    "check_history",
    "render_timeline",
    "ChaosHarness",
    "FaultEvent",
    "Nemesis",
    "SCENARIOS",
    "ScenarioResult",
    "run_scenario",
]
