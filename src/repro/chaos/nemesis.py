"""The nemesis: a declarative schedule of timed fault injections.

Faults are described as :class:`FaultEvent` records — a name, an inject
time and callable, and an optional heal time and callable — and the
:class:`Nemesis` arms them on the simulator's event heap.  Everything
runs through the cluster's :class:`~repro.sim.network.FaultPlane`, so a
schedule is deterministic under a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

__all__ = ["FaultEvent", "Nemesis"]


@dataclass
class FaultEvent:
    """One fault: inject at ``at_ms``, optionally heal at ``heal_at_ms``.

    Times are relative to the base passed to :meth:`Nemesis.schedule`
    (normally the start of the client workload).  ``inject``/``heal``
    are zero-argument callables mutating the fault plane.
    """

    name: str
    at_ms: float
    inject: Callable[[], None]
    heal_at_ms: Optional[float] = None
    heal: Optional[Callable[[], None]] = None


class Nemesis:
    """Arms fault events on the simulator and tracks what is active.

    The timeline (``(time_ms, "inject"|"heal", name)`` tuples) feeds the
    chaos report so availability dips can be correlated with faults.
    """

    def __init__(self, cluster, events: List[FaultEvent]):
        self.cluster = cluster
        self.sim = cluster.sim
        self.events = list(events)
        self.timeline: List[Tuple[float, str, str]] = []
        self._active: List[FaultEvent] = []

    def schedule(self, base_ms: Optional[float] = None) -> None:
        """Arm every event at ``base_ms + event.at_ms`` (base defaults
        to the current simulated time)."""
        base = self.sim.now if base_ms is None else base_ms
        for event in self.events:
            self.sim.call_at(base + event.at_ms, self._inject, event)
            if event.heal_at_ms is not None:
                self.sim.call_at(base + event.heal_at_ms, self._heal, event)

    def _record(self, action: str, name: str) -> None:
        self.timeline.append((self.sim.now, action, name))
        self.sim.obs.registry.counter("nemesis.events", action=action,
                                      fault=name).inc()

    def _inject(self, event: FaultEvent) -> None:
        event.inject()
        self._active.append(event)
        self._record("inject", event.name)

    def _heal(self, event: FaultEvent) -> None:
        if event in self._active:
            self._active.remove(event)
        if event.heal is not None:
            event.heal()
        self._record("heal", event.name)

    def heal_all(self, restart_dead: bool = True) -> None:
        """Run outstanding heals and scrub the fault plane completely —
        link cuts, loss, latency, gray nodes, partitions, and (unless
        ``restart_dead`` is False) dead nodes, restarted so they catch
        up.  Used before the final audit.  Repair scenarios pass
        ``restart_dead=False``: their node/region loss is *permanent*,
        and reviving the victims would hand the replicate queue its
        repair for free."""
        network = self.cluster.network
        for event in list(self._active):
            self._active.remove(event)
            if event.heal is not None:
                event.heal()
            self._record("heal", event.name)
        faults = network.faults
        faults.heal_all_links()
        faults.clear_partitions()
        # Clock faults heal with everything else: a restarted node is
        # presumed step-synced by NTP (no-op when no clock fault ran).
        clock = getattr(self.cluster, "clock", None)
        if clock is not None and hasattr(clock, "heal_all"):
            clock.heal_all()
        if restart_dead:
            for node_id in list(faults.dead_nodes):
                network.restart_node(node_id)
        self._record("heal", "heal-all")

    @property
    def active_faults(self) -> List[str]:
        return [event.name for event in self._active]
