"""Overload chaos scenarios: graceful degradation under saturation.

Unlike the fault-injection scenarios, the nemesis here is *load*: an
open-loop Poisson arrival process offering 2-4x the store evaluation
capacity, either globally or against a single hot region.  The
invariants are the graceful-degradation properties the admission
subsystem exists to provide:

* **Goodput holds near capacity** — at 4x offered load the admitted
  goodput stays >= 80% of the measured capacity (the best goodput the
  admission-on curve ever reaches).  Excess arrivals are rejected or
  shed at the gateway instead of destroying the work already admitted.
* **Admitted p99 bounded** — requests that *are* admitted still finish
  within the request deadline at p99; the queue never silently trades
  admission for unbounded latency.
* **No livelock after the load drops** — once arrivals stop and the
  system drains, a fresh probe request in every region completes
  promptly.  Metastable failure modes (retry storms sustaining the
  overload after its trigger is gone) would fail this check.
* **Collapse without admission** — the same offered load against the
  same store capacity with the protections disabled demonstrably
  collapses (goodput under 50% of capacity), proving the degradation
  above is graceful *because of* admission control, not because the
  load was survivable anyway.

Everything is deterministic from the seed; these scenarios back the
acceptance gates that ``python -m repro scale`` sweeps continuously.
"""

from __future__ import annotations

from typing import Dict

from ..harness.openloop import OpenLoopConfig, OpenLoopHarness, _pct
from .invariants import FAIL, OK, History, InvariantReport, OpRecord
from .scenarios import ScenarioResult

__all__ = ["overload_global", "overload_hot_region",
           "GOODPUT_FLOOR", "COLLAPSE_CEILING", "PROBE_BOUND_MS"]

#: Graceful-degradation thresholds (shared with harness.scale gates).
GOODPUT_FLOOR = 0.80
COLLAPSE_CEILING = 0.50
#: A post-drain probe slower than this indicates residual livelock
#: (the unloaded baseline read is single-digit milliseconds).
PROBE_BOUND_MS = 100.0
PEAK_MULTIPLIER = 4.0
ON_DURATION_MS = 1000.0
#: The collapse baseline needs a longer window: the unprotected
#: backlog (and with it the latency it inflicts) grows linearly in the
#: overload duration, so a short window understates the damage.
OFF_DURATION_MS = 1500.0
HOT_REGION = "us-east1"
HOT_WEIGHT = 4.0


def _history_from(harness: OpenLoopHarness) -> History:
    """Convert the harness's per-request records into a History."""
    history = History()
    for rec in harness.records:
        good = rec["status"] == "good"
        history.record(OpRecord(
            client=rec["client"], kind=rec["kind"], key=rec["key"],
            start_ms=rec["start_ms"], end_ms=rec["end_ms"],
            status=OK if good else FAIL,
            error="" if good else str(rec["status"])))
    return history


def _probe_all(harness: OpenLoopHarness) -> Dict[str, float]:
    """Post-drain recovery probes: one protected read per region.

    Returns region -> latency_ms (``inf`` when the probe never
    completed — the livelock signature)."""
    sim = harness.sim
    procs = {region: sim.spawn(harness.probe(region),
                               name=f"recovery-probe-{region}")
             for region in harness.config.regions}
    sim.run(until=sim.now + 10.0 * PROBE_BOUND_MS)
    return {region: (proc.value if proc.done else float("inf"))
            for region, proc in procs.items()}


def _check(report: InvariantReport, ok: bool, text: str) -> None:
    if ok:
        report.checks_run.append(text)
    else:
        report.violations.append(text)


def _snapshot(harness: OpenLoopHarness):
    registry = getattr(harness.sim.obs, "registry", None)
    return registry.snapshot() if registry is not None else None


def overload_global(seed: int = 0) -> ScenarioResult:
    """4x global saturation with admission on, plus the ablation.

    Three deterministic runs: a 1x reference (measures capacity), the
    4x admission-on run under audit, and a 4x admission-off baseline
    that must collapse."""
    base = OpenLoopHarness(OpenLoopConfig(
        load_multiplier=1.0, duration_ms=ON_DURATION_MS, seed=seed)).run()

    on_harness = OpenLoopHarness(OpenLoopConfig(
        load_multiplier=PEAK_MULTIPLIER, duration_ms=ON_DURATION_MS,
        seed=seed), record_ops=True)
    on = on_harness.run()
    probes = _probe_all(on_harness)

    off = OpenLoopHarness(OpenLoopConfig(
        load_multiplier=PEAK_MULTIPLIER, admission=False,
        duration_ms=OFF_DURATION_MS, seed=seed)).run()

    capacity = max(base.goodput_per_s, on.goodput_per_s)
    goodput_ratio = on.goodput_per_s / capacity if capacity else 0.0
    collapse_ratio = off.goodput_per_s / capacity if capacity else 0.0
    deadline_ms = on.config.deadline_ms
    worst_probe = max(probes.values())

    report = InvariantReport()
    _check(report, goodput_ratio >= GOODPUT_FLOOR,
           f"goodput holds at {PEAK_MULTIPLIER:g}x load: "
           f"{on.goodput_per_s:.0f}/s is {goodput_ratio:.0%} of capacity "
           f"{capacity:.0f}/s (floor {GOODPUT_FLOOR:.0%})")
    _check(report, on.p99_ms <= deadline_ms,
           f"admitted p99 bounded: {on.p99_ms:.1f}ms <= "
           f"deadline {deadline_ms:.0f}ms")
    _check(report, worst_probe <= PROBE_BOUND_MS,
           f"no livelock after load drop: worst recovery probe "
           f"{worst_probe:.1f}ms <= {PROBE_BOUND_MS:.0f}ms")
    _check(report, collapse_ratio < COLLAPSE_CEILING,
           f"congestion collapse without admission: "
           f"{off.goodput_per_s:.0f}/s is {collapse_ratio:.0%} of capacity "
           f"(ceiling {COLLAPSE_CEILING:.0%})")

    timeline = [
        (on_harness.load_start_ms, "inject",
         f"open-loop {PEAK_MULTIPLIER:g}x saturation ({on.users} users)"),
        (on_harness.load_end_ms, "heal", "arrivals stop"),
    ]
    stats = {
        "capacity_per_s": round(capacity, 1),
        "goodput_per_s": round(on.goodput_per_s, 1),
        "goodput_ratio": round(goodput_ratio, 3),
        "p50_ms": round(on.p50_ms, 2),
        "p99_ms": round(on.p99_ms, 2),
        "offered": on.offered,
        "rejected": on.rejected,
        "shed": on.shed,
        "probe_worst_ms": round(worst_probe, 2),
        "no_admission_goodput_per_s": round(off.goodput_per_s, 1),
        "collapse_ratio": round(collapse_ratio, 3),
    }
    return ScenarioResult(
        name="overload-global", seed=seed,
        history=_history_from(on_harness), report=report,
        nemesis_timeline=timeline, final_values={},
        duration_ms=on.duration_ms, stats=stats,
        metrics_snapshot=_snapshot(on_harness))


def overload_hot_region(seed: int = 0) -> ScenarioResult:
    """One region at 4x capacity while the others run at 1x.

    The hot region must degrade gracefully (goodput pinned near its
    gateway admit rate, admitted p99 inside the deadline) and the load
    must stay *isolated*: the cold regions' p99 stays far below the
    deadline because their gateways, stores, and retry budgets are
    per-region."""
    config = OpenLoopConfig(
        region_weights={HOT_REGION: HOT_WEIGHT},
        duration_ms=ON_DURATION_MS, seed=seed)
    harness = OpenLoopHarness(config, record_ops=True)
    result = harness.run()
    probes = _probe_all(harness)

    hot = result.per_region[HOT_REGION]
    hot_lat = sorted(hot.latencies)
    hot_goodput = hot.good * 1000.0 / result.duration_ms
    hot_p99 = _pct(hot_lat, 99.0)
    admit_rate = config.admit_rate_per_s
    deadline_ms = config.deadline_ms
    cold_regions = [r for r in config.regions if r != HOT_REGION]
    cold_p99 = {region: _pct(sorted(result.per_region[region].latencies),
                             99.0)
                for region in cold_regions}
    worst_cold_p99 = max(cold_p99.values())
    cold_bound_ms = deadline_ms / 2.0
    worst_probe = max(probes.values())

    report = InvariantReport()
    _check(report, hot_goodput >= GOODPUT_FLOOR * admit_rate,
           f"hot region goodput holds: {hot_goodput:.0f}/s >= "
           f"{GOODPUT_FLOOR:.0%} of its {admit_rate:.0f}/s admit rate")
    _check(report, hot_p99 <= deadline_ms,
           f"hot region admitted p99 bounded: {hot_p99:.1f}ms <= "
           f"deadline {deadline_ms:.0f}ms")
    _check(report, worst_cold_p99 <= cold_bound_ms,
           f"overload stays isolated: worst cold-region p99 "
           f"{worst_cold_p99:.1f}ms <= {cold_bound_ms:.0f}ms")
    _check(report, worst_probe <= PROBE_BOUND_MS,
           f"no livelock after load drop: worst recovery probe "
           f"{worst_probe:.1f}ms <= {PROBE_BOUND_MS:.0f}ms")

    timeline = [
        (harness.load_start_ms, "inject",
         f"hot region {HOT_REGION} at {HOT_WEIGHT:g}x"),
        (harness.load_end_ms, "heal", "arrivals stop"),
    ]
    stats = {
        "hot_goodput_per_s": round(hot_goodput, 1),
        "hot_p99_ms": round(hot_p99, 2),
        "hot_rejected": hot.rejected,
        "hot_shed": hot.shed,
        "worst_cold_p99_ms": round(worst_cold_p99, 2),
        "offered": result.offered,
        "goodput_per_s": round(result.goodput_per_s, 1),
        "probe_worst_ms": round(worst_probe, 2),
    }
    return ScenarioResult(
        name="overload-hot-region", seed=seed,
        history=_history_from(harness), report=report,
        nemesis_timeline=timeline, final_values={},
        duration_ms=result.duration_ms, stats=stats,
        metrics_snapshot=_snapshot(harness))
