"""Jepsen-style history recording and invariant checking.

Clients record every operation (counter increments and reads) into a
:class:`History`; after the run heals, :func:`check_history` audits it
against the database's final state:

* **No lost acknowledged writes** — for each key,
  ``acked <= final <= acked + indeterminate``.  An acknowledged
  increment must survive every fault; an *indeterminate* one (an
  ambiguous commit whose RPC was lost mid-flight) may or may not have
  applied, but nothing else may.
* **No dirty reads** — a read can never observe more increments than
  had been *invoked* when it completed (values from uncommitted or
  aborted transactions would inflate the counter past that bound).
* **Recency floor** — a strong (leaseholder-consistent) read that
  starts after an increment was acknowledged must observe it.
* **Monotonic reads** — per client per key, observed values never go
  backwards.

The checker is pure bookkeeping: it never touches the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "OK",
    "FAIL",
    "INDETERMINATE",
    "OpRecord",
    "History",
    "InvariantReport",
    "check_history",
    "availability_timeline",
    "render_timeline",
]

OK = "ok"
FAIL = "fail"
INDETERMINATE = "indeterminate"


@dataclass
class OpRecord:
    """One client operation, Jepsen-history style."""

    client: str
    kind: str                     # "inc" | "read"
    key: str
    start_ms: float
    end_ms: float
    status: str                   # OK | FAIL | INDETERMINATE
    value: Optional[int] = None   # read result (None for incs/failures)
    stale: bool = False           # read allowed to lag (follower/stale)
    error: str = ""

    @property
    def latency_ms(self) -> float:
        return self.end_ms - self.start_ms


class History:
    """Append-only operation log shared by all clients in a run."""

    def __init__(self):
        self.ops: List[OpRecord] = []

    def record(self, op: OpRecord) -> None:
        self.ops.append(op)

    # -- aggregate views ---------------------------------------------------

    def incs(self, key: Optional[str] = None) -> List[OpRecord]:
        return [op for op in self.ops if op.kind == "inc"
                and (key is None or op.key == key)]

    def reads(self, key: Optional[str] = None) -> List[OpRecord]:
        return [op for op in self.ops if op.kind == "read"
                and (key is None or op.key == key)]

    def acked_incs(self, key: str) -> int:
        return sum(1 for op in self.incs(key) if op.status == OK)

    def indeterminate_incs(self, key: str) -> int:
        return sum(1 for op in self.incs(key) if op.status == INDETERMINATE)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {OK: 0, FAIL: 0, INDETERMINATE: 0}
        for op in self.ops:
            out[op.status] = out.get(op.status, 0) + 1
        return out


@dataclass
class InvariantReport:
    """Outcome of auditing one run's history."""

    violations: List[str] = field(default_factory=list)
    checks_run: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = []
        for check in self.checks_run:
            lines.append(f"  [pass] {check}")
        for violation in self.violations:
            lines.append(f"  [FAIL] {violation}")
        verdict = "OK" if self.ok else "INVARIANT VIOLATIONS"
        lines.append(f"  => {verdict}")
        return "\n".join(lines)


def check_history(history: History,
                  final_values: Dict[str, int]) -> InvariantReport:
    """Audit ``history`` against the healed database's final counters."""
    report = InvariantReport()

    # 1. Durability bounds per key.
    for key in sorted(final_values):
        final = final_values[key]
        acked = history.acked_incs(key)
        indet = history.indeterminate_incs(key)
        if final < acked:
            report.violations.append(
                f"lost writes on {key!r}: {acked} acked but final={final}")
        elif final > acked + indet:
            report.violations.append(
                f"phantom writes on {key!r}: final={final} > "
                f"{acked} acked + {indet} indeterminate")
    report.checks_run.append(
        "durability: acked <= final <= acked + indeterminate "
        f"({len(final_values)} keys)")

    # 2/3/4. Read checks.
    dirty = recency = 0
    for read in history.reads():
        if read.status != OK or read.value is None:
            continue
        invoked = sum(1 for inc in history.incs(read.key)
                      if inc.status in (OK, INDETERMINATE)
                      and inc.start_ms <= read.end_ms)
        if read.value > invoked:
            dirty += 1
            report.violations.append(
                f"dirty read on {read.key!r} by {read.client}: saw "
                f"{read.value} with only {invoked} increments invoked "
                f"by t={read.end_ms:.1f}")
        if not read.stale:
            floor = sum(1 for inc in history.incs(read.key)
                        if inc.status == OK and inc.end_ms <= read.start_ms)
            if read.value < floor:
                recency += 1
                report.violations.append(
                    f"stale strong read on {read.key!r} by {read.client}: "
                    f"saw {read.value} but {floor} increments were acked "
                    f"before t={read.start_ms:.1f}")
    report.checks_run.append(
        f"dirty reads: none may outrun invoked increments "
        f"({len(history.reads())} reads)")
    report.checks_run.append(
        "recency: strong reads observe all previously-acked increments")

    # 4. Monotonic reads per (client, key).
    last_seen: Dict[Tuple[str, str], int] = {}
    for read in history.reads():
        if read.status != OK or read.value is None:
            continue
        slot = (read.client, read.key)
        prev = last_seen.get(slot)
        if prev is not None and read.value < prev:
            report.violations.append(
                f"non-monotonic reads on {read.key!r} by {read.client}: "
                f"{prev} then {read.value}")
        last_seen[slot] = max(prev or 0, read.value)
    report.checks_run.append("monotonicity: per-client reads never regress")
    return report


def availability_timeline(history: History, bucket_ms: float = 250.0
                          ) -> List[Tuple[float, int, int, int, float]]:
    """Bucketed availability: ``(bucket_start, ok, fail, indeterminate,
    mean_latency_ms)`` per bucket, keyed by operation end time."""
    buckets: Dict[int, List[OpRecord]] = {}
    for op in history.ops:
        buckets.setdefault(int(op.end_ms // bucket_ms), []).append(op)
    rows = []
    for index in sorted(buckets):
        ops = buckets[index]
        ok = sum(1 for op in ops if op.status == OK)
        fail = sum(1 for op in ops if op.status == FAIL)
        indet = sum(1 for op in ops if op.status == INDETERMINATE)
        oks = [op.latency_ms for op in ops if op.status == OK]
        mean = sum(oks) / len(oks) if oks else 0.0
        rows.append((index * bucket_ms, ok, fail, indet, mean))
    return rows


def render_timeline(history: History, nemesis_timeline=(),
                    bucket_ms: float = 250.0) -> str:
    """ASCII availability/latency timeline with fault markers."""
    rows = availability_timeline(history, bucket_ms)
    marks: Dict[int, List[str]] = {}
    for when, action, name in nemesis_timeline:
        marks.setdefault(int(when // bucket_ms), []).append(
            f"{action} {name}")
    lines = ["  t(ms)      ok fail amb  mean-lat  faults"]
    for start, ok, fail, indet, mean in rows:
        bar = "#" * min(ok, 30) + "x" * min(fail, 10)
        note = "; ".join(marks.pop(int(start // bucket_ms), []))
        lines.append(
            f"  {start:8.0f} {ok:4d} {fail:4d} {indet:3d} {mean:8.1f}ms"
            f"  {bar}{('  <- ' + note) if note else ''}")
    for index in sorted(marks):
        lines.append(f"  {index * bucket_ms:8.0f}  (no ops)"
                     f"          <- {'; '.join(marks[index])}")
    return "\n".join(lines)
