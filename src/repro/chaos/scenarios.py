"""Built-in chaos scenarios: workload + nemesis schedule + audit.

Each scenario builds a REGION-survivable cluster, runs seeded increment
and read clients against one range while a :class:`Nemesis` injects and
heals faults, then heals everything, audits the final counters from
every region, and checks the Jepsen-style invariants.

All randomness flows from the scenario seed (client think times, key
choice, packet-loss sampling, retry jitter), so a run is exactly
reproducible from ``(scenario, seed)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..cluster import StoreLiveness, install_clock_monitor, standard_cluster
from ..errors import (
    AmbiguousCommitError,
    FollowerReadNotAvailableError,
    RangeUnavailableError,
    TransactionAbortedError,
    TransactionRetryError,
)
from ..kv.distsender import ReadRouting
from ..placement import (
    RebalanceQueue,
    ReplicateQueue,
    SurvivalGoal,
    placement_violations,
    provision_range,
    zone_config_for_home,
)
from ..sim.network import NetworkUnavailableError
from ..txn import TransactionCoordinator
from .invariants import (
    FAIL,
    INDETERMINATE,
    OK,
    History,
    InvariantReport,
    OpRecord,
    check_history,
    render_timeline,
)
from .nemesis import FaultEvent, Nemesis

__all__ = ["SCENARIOS", "ScenarioResult", "ChaosHarness", "run_scenario",
           "FAULT_BUILDERS", "build_faults"]

REGIONS = ["us-east1", "europe-west2", "asia-northeast1"]
HOME = "us-east1"
KEYS = ["acct0", "acct1", "acct2"]

RETRYABLE = (TransactionRetryError, TransactionAbortedError,
             RangeUnavailableError, NetworkUnavailableError,
             FollowerReadNotAvailableError)


@dataclass
class ScenarioResult:
    """Everything a chaos run produced, ready to render or assert on."""

    name: str
    seed: int
    history: History
    report: InvariantReport
    nemesis_timeline: list
    final_values: Dict[str, int]
    duration_ms: float
    stats: Dict[str, float] = field(default_factory=dict)
    #: The harness that produced this result (liveness + repair metrics
    #: live here for the ``repair`` CLI report); None for custom runs.
    harness: Optional["ChaosHarness"] = None
    #: Full registry snapshot taken at the end of the run.
    metrics_snapshot: Optional[Dict[str, Dict[str, object]]] = None

    def to_json(self) -> Dict[str, object]:
        """Machine-readable summary for CI tooling."""
        counts = self.history.counts()
        return {
            "scenario": self.name,
            "seed": self.seed,
            "ok": self.ok,
            "duration_ms": round(self.duration_ms, 1),
            "ops": {
                "total": len(self.history.ops),
                "ok": counts.get(OK, 0),
                "fail": counts.get(FAIL, 0),
                "indeterminate": counts.get(INDETERMINATE, 0),
            },
            "stats": dict(self.stats),
            "final_values": dict(self.final_values),
            "checks_run": list(self.report.checks_run),
            "violations": list(self.report.violations),
            "nemesis_timeline": [
                {"at_ms": round(when, 1), "action": action, "fault": fault}
                for when, action, fault in self.nemesis_timeline],
        }

    @property
    def ok(self) -> bool:
        return self.report.ok

    def render(self) -> str:
        counts = self.history.counts()
        lines = [
            f"chaos scenario {self.name!r} (seed={self.seed}) — "
            f"{len(self.history.ops)} ops in {self.duration_ms:.0f}ms sim",
            f"  ops: {counts.get(OK, 0)} ok, {counts.get(FAIL, 0)} failed, "
            f"{counts.get(INDETERMINATE, 0)} indeterminate",
            "  stats: " + ", ".join(
                f"{key}={value}" for key, value in sorted(self.stats.items())),
            f"  final: " + ", ".join(
                f"{key}={value}"
                for key, value in sorted(self.final_values.items())),
            "timeline:",
            render_timeline(self.history, self.nemesis_timeline),
            "invariants:",
            self.report.render(),
        ]
        return "\n".join(lines)


class ChaosHarness:
    """One REGION-survivable range plus seeded clients and a nemesis."""

    def __init__(self, seed: int, regions: Optional[List[str]] = None,
                 home: str = HOME, goal: str = SurvivalGoal.REGION,
                 proposal_timeout_ms: float = 1000.0,
                 retransmit_interval_ms: float = 150.0,
                 enable_repair: bool = False,
                 heartbeat_interval_ms: float = 100.0,
                 time_until_store_dead_ms: float = 600.0,
                 repair_interval_ms: float = 200.0,
                 clock_monitor: bool = False,
                 fence_enabled: bool = True,
                 elastic: bool = False,
                 txn_protocol=None):
        self.seed = seed
        self.regions = list(regions or REGIONS)
        self.home = home
        self.cluster = standard_cluster(self.regions, seed=seed)
        # txn_protocol=None keeps the CRDB default (and legacy event
        # schedules byte-identical); "epoch-occ" runs the same nemesis
        # schedules against the optimistic backend.
        self.coord = TransactionCoordinator(self.cluster,
                                            protocol=txn_protocol)
        self.ds = self.coord.distsender
        # Clock-safety monitor (off by default so legacy scenarios keep
        # their exact event schedules); clock scenarios turn it on.
        self.clock_monitor = None
        if clock_monitor:
            self.clock_monitor = install_clock_monitor(
                self.cluster, fence_enabled=fence_enabled)
        config = zone_config_for_home(home, self.cluster.regions(), goal)
        self.config = config
        # Chaos provisioning turns on the hardening that seed
        # experiments leave off: bounded Raft proposals (writes fail
        # cleanly instead of hanging without quorum) and leader
        # retransmission (progress under packet loss).
        self.range = provision_range(
            self.cluster, config, name="chaos",
            side_transport_interval_ms=100.0,
            proposal_timeout_ms=proposal_timeout_ms,
            retransmit_interval_ms=retransmit_interval_ms)
        # Elastic mode adopts the chaos range into a span so the
        # rebalance queue can split/merge it under fire; the routing
        # token the clients use is the span.  Legacy scenarios keep the
        # raw Range token (and never instantiate the keyspace), so
        # their event schedules stay byte-identical.
        self.span = None
        self.token = self.range
        if elastic:
            self.span = self.cluster.keyspace.adopt(self.range,
                                                    name="chaos")
            self.token = self.span
        self.history = History()
        self.rng = random.Random((seed << 4) ^ 0xC4A05)
        # Self-healing: store liveness + the replicate queue, watching
        # the chaos range.  ``time_until_store_dead_ms`` is scaled to
        # the scenario's compressed clock (CRDB's default is 5 min).
        self.liveness: Optional[StoreLiveness] = None
        self.repair_queue: Optional[ReplicateQueue] = None
        if enable_repair or elastic:
            self.liveness = StoreLiveness(
                self.cluster,
                heartbeat_interval_ms=heartbeat_interval_ms,
                time_until_store_dead_ms=time_until_store_dead_ms)
            if elastic:
                # Thresholds scaled to the 3-key chaos workload: the
                # seeded range size-splits immediately (3 > 2 keys) and
                # the hot keys drive load splits during the run.
                queue = RebalanceQueue(
                    self.cluster, self.liveness,
                    interval_ms=repair_interval_ms,
                    split_max_keys=2, split_qps=8.0,
                    merge_qps=0.5, merge_patience=3,
                    replica_moves=False)
                queue.manage_span(self.span, config)
                self.repair_queue = queue
            else:
                self.repair_queue = ReplicateQueue(
                    self.cluster, self.liveness,
                    interval_ms=repair_interval_ms)
                self.repair_queue.manage(self.range, config)
            self.repair_queue.start()

    @property
    def sim(self):
        return self.cluster.sim

    # -- clients -----------------------------------------------------------

    def inc_client(self, name: str, region: str, gateway_index: int,
                   ops: int, think_ms=(10.0, 40.0)):
        """Increment a random key per op; record ok/fail/indeterminate."""
        gateway = self.cluster.gateway_for_region(region, gateway_index)
        rng = random.Random(self.rng.random())
        for _ in range(ops):
            key = rng.choice(KEYS)
            start = self.sim.now

            def txn_fn(txn, key=key):
                value = yield from txn.read(self.token, key)
                yield from txn.write(self.token, key, value + 1)

            status, error = OK, ""
            try:
                yield from self.coord.run(gateway, txn_fn, max_attempts=6)
            except AmbiguousCommitError as err:
                status, error = INDETERMINATE, type(err).__name__
            except RETRYABLE as err:
                status, error = FAIL, type(err).__name__
            self.history.record(OpRecord(
                client=name, kind="inc", key=key, start_ms=start,
                end_ms=self.sim.now, status=status, error=error))
            yield self.sim.sleep(rng.uniform(*think_ms))

    def read_client(self, name: str, region: str, gateway_index: int,
                    ops: int, routing: str = ReadRouting.LEASEHOLDER,
                    think_ms=(10.0, 40.0)):
        """Read a random key per op; NEAREST routing marks reads stale
        (follower reads serve a closed, slightly-past timestamp)."""
        gateway = self.cluster.gateway_for_region(region, gateway_index)
        rng = random.Random(self.rng.random())
        stale = routing != ReadRouting.LEASEHOLDER
        for _ in range(ops):
            key = rng.choice(KEYS)
            start = self.sim.now

            def txn_fn(txn, key=key):
                value = yield from txn.read(self.token, key, routing=routing)
                return value

            status, error, value = OK, "", None
            try:
                result, _ts = yield from self.coord.run(
                    gateway, txn_fn, max_attempts=6)
                value = result
            except AmbiguousCommitError as err:
                status, error = INDETERMINATE, type(err).__name__
            except RETRYABLE as err:
                status, error = FAIL, type(err).__name__
            self.history.record(OpRecord(
                client=name, kind="read", key=key, start_ms=start,
                end_ms=self.sim.now, status=status, value=value,
                stale=stale, error=error))
            yield self.sim.sleep(rng.uniform(*think_ms))

    # -- the run -----------------------------------------------------------

    def run(self, name: str, events: List[FaultEvent],
            inc_ops: int = 14, read_ops: int = 14,
            read_routing: str = ReadRouting.LEASEHOLDER,
            client_regions: Optional[List[str]] = None,
            restart_dead_on_heal: bool = True,
            audit_regions: Optional[List[str]] = None,
            expect_fences: Optional[bool] = None) -> ScenarioResult:
        sim = self.sim
        # Seed the counters before chaos starts.
        for key in KEYS:
            gateway = self.cluster.gateway_for_region(self.home)

            def init_fn(txn, key=key):
                yield from txn.write(self.token, key, 0)

            sim.run_until_future(sim.spawn(self.coord.run(gateway, init_fn)))
        sim.run(until=sim.now + 200.0)  # settle replication

        start_ms = sim.now
        nemesis = Nemesis(self.cluster, events)
        nemesis.schedule(base_ms=start_ms)
        regions = client_regions or self.regions
        processes = []
        for index, region in enumerate(regions):
            processes.append(sim.spawn(self.inc_client(
                f"inc-{region}", region, index % 2, inc_ops)))
            processes.append(sim.spawn(self.read_client(
                f"read-{region}", region, (index + 1) % 2, read_ops,
                routing=read_routing)))
        for process in processes:
            sim.run_until_future(process)
        duration = sim.now - start_ms

        # Heal the world (permanent losses stay lost), let replication
        # and any in-flight repair catch up, then audit.
        nemesis.heal_all(restart_dead=restart_dead_on_heal)
        sim.run(until=sim.now + 2000.0)
        final_values = self._audit(audit_regions)
        report = check_history(self.history, final_values)
        group = self.range.group
        stats = {
            "failovers": self.range.failovers,
            "rpc_retries": self.ds.rpc_retries,
            "breaker_trips": self.ds.breakers.total_trips(),
            "messages_dropped": self.cluster.network.messages_dropped,
            "ambiguous_commits": self.coord.stats.ambiguous_commits,
            "txn_retries": self.coord.stats.aborted_retries,
            "raft_term": group.term,
        }
        if self.repair_queue is not None:
            self._check_placement(report, stats)
        if self.span is not None:
            self._check_ownership(report, stats)
        if self.clock_monitor is not None:
            self._merge_clock_timeline(nemesis)
            stats["clock_fences"] = len(self.clock_monitor.fence_events)
            stats["clock_outliers"] = len(
                self.clock_monitor.outlier_detections)
            if expect_fences is not None:
                self._check_clock(report, expect_fences)
        return ScenarioResult(
            name=name, seed=self.seed, history=self.history, report=report,
            nemesis_timeline=nemesis.timeline, final_values=final_values,
            duration_ms=duration, stats=stats, harness=self,
            metrics_snapshot=sim.obs.registry.snapshot())

    def _check_placement(self, report: InvariantReport,
                         stats: Dict[str, float]) -> None:
        """Repair-scenario extras: the healed placement must satisfy the
        zone config (constraints, diversity, lease) given the nodes that
        still exist, and the repair metrics ride along in the stats."""
        from ..kv.keyspace import live_ranges
        for rng in live_ranges(self.token):
            report.violations.extend(placement_violations(
                rng, self.config, self.cluster, self.liveness))
        report.checks_run.append(
            "placement: post-repair constraints + diversity + lease "
            "satisfied on surviving nodes")
        metrics = self.repair_queue.metrics
        guard = self.range.group.config_guard
        stats.update({
            "repair_actions": metrics.total_actions(),
            "repair_failures": sum(metrics.failures.values()),
            "under_replicated": metrics.under_replicated_ranges,
            "config_changes": guard.changes,
            "max_inflight_changes": guard.max_inflight,
            "liveness_transitions": len(self.liveness.transitions),
        })
        if metrics.time_to_repair_ms:
            stats["time_to_repair_ms"] = round(
                max(metrics.time_to_repair_ms), 1)

    def _check_ownership(self, report: InvariantReport,
                         stats: Dict[str, float]) -> None:
        """Elastic-scenario extras: after splits and merges raced the
        nemesis, the span's descriptors must still tile the keyspace —
        no key unowned, none doubly-owned — and every replica's store
        must hold only keys inside its range's bounds."""
        from ..kv.keyspace import MIN_KEY, encode_key
        descriptors = list(self.span.descriptors)
        if descriptors[0].start_key != MIN_KEY:
            report.violations.append(
                "keyspace: first descriptor does not start at /Min: "
                f"{descriptors[0].span_repr()}")
        if descriptors[-1].end_key is not None:
            report.violations.append(
                "keyspace: last descriptor does not extend to /Max: "
                f"{descriptors[-1].span_repr()}")
        for left, right in zip(descriptors, descriptors[1:]):
            if left.end_key != right.start_key:
                report.violations.append(
                    "keyspace: gap or overlap between "
                    f"{left.span_repr()} and {right.span_repr()}")
        for key in KEYS:
            owners = [d for d in descriptors if d.contains_key(key)]
            if len(owners) != 1:
                spans = [d.span_repr() for d in owners]
                report.violations.append(
                    f"keyspace: key {key!r} owned by {len(owners)} "
                    f"descriptors {spans} (want exactly 1)")
        for descriptor in descriptors:
            for node_id, replica in sorted(
                    descriptor.rng.replicas.items()):
                strays = [key for key in replica.store.keys()
                          if not descriptor.contains(encode_key(key))]
                if strays:
                    report.violations.append(
                        f"keyspace: replica n{node_id} of "
                        f"{descriptor.rng.name} holds keys outside "
                        f"{descriptor.span_repr()}: {sorted(strays)}")
        report.checks_run.append(
            "keyspace: descriptors tile [/Min, /Max); every key owned "
            "exactly once; replica stores within bounds")
        keyspace = self.cluster.keyspace
        stats.update({
            "keyspace_splits": keyspace.splits,
            "keyspace_merges": keyspace.merges,
            "ranges_final": len(descriptors),
            "range_cache_invalidations":
                self.ds.range_cache_invalidations,
        })

    def _merge_clock_timeline(self, nemesis: Nemesis) -> None:
        """Fold self-fence (and, when fencing is off, bare detection)
        events into the nemesis timeline so the availability rendering
        correlates dips with the clock defense kicking in."""
        monitor = self.clock_monitor
        for when, node_id, worst in monitor.fence_events:
            nemesis.timeline.append(
                (when, "fence", f"clock-outlier:n{node_id}"
                                f" ({worst:.0f}ms)"))
        if not monitor.fence_enabled:
            for when, node_id, worst in monitor.outlier_detections:
                nemesis.timeline.append(
                    (when, "detect", f"clock-outlier:n{node_id}"
                                     f" ({worst:.0f}ms)"))
        nemesis.timeline.sort(key=lambda entry: entry[0])

    def _check_clock(self, report: InvariantReport,
                     expect_fences: bool) -> None:
        """Clock-scenario extras: the monitor must have fenced exactly
        when the injected fault was beyond bounds, and never otherwise."""
        events = self.clock_monitor.fence_events
        if expect_fences:
            report.checks_run.append(
                "clock: beyond-bound clock fault self-fences the victim")
            if not events:
                report.violations.append(
                    "clock: no node self-fenced despite a beyond-bound "
                    "clock fault")
        else:
            report.checks_run.append(
                "clock: in-bounds clock faults cause no fences")
            if events:
                fenced = sorted({n for _, n, _ in events})
                report.violations.append(
                    f"clock: unexpected self-fence of node(s) {fenced} "
                    "under in-bounds clock faults")

    def _audit(self, audit_regions: Optional[List[str]] = None
               ) -> Dict[str, int]:
        """Strong-read every key from every auditable region; they must
        agree.  Regions with no live node (permanent loss) are skipped —
        clients there no longer exist either."""
        values: Dict[str, int] = {}
        network = self.cluster.network
        gateways = []
        for region in (audit_regions or self.regions):
            live = [n for n in self.cluster.nodes_in_region(region)
                    if not network.node_is_dead(n.node_id)]
            if live:
                gateways.append(live[0])
        for key in KEYS:
            observed = []
            for gateway in gateways:

                def read_fn(txn, key=key):
                    value = yield from txn.read(self.token, key)
                    return value

                result, _ts = self.sim.run_until_future(
                    self.sim.spawn(self.coord.run(gateway, read_fn)))
                observed.append(result)
            values[key] = observed[0]
            if len(set(observed)) != 1:
                # Surfaced through the durability check as a phantom /
                # lost write; record the worst value.
                values[key] = min(observed)
        return values


# -- fault-schedule builders -------------------------------------------------
#
# Each builder takes any harness-like object exposing ``.cluster``,
# ``.regions``, ``.home`` and ``.range`` (the range whose leaseholder /
# followers the scenario targets) and returns the scenario's fault
# schedule.  The chaos scenarios below and the transactional-consistency
# verifier (:mod:`repro.verify`) share these, so every nemesis schedule
# doubles as an isolation-level test.


def _blackout_faults(harness) -> List[FaultEvent]:
    cluster = harness.cluster
    victims = [n.node_id for n in cluster.nodes_in_region(harness.home)]
    return [FaultEvent(
        name=f"blackout:{harness.home}",
        at_ms=250.0,
        inject=lambda: [cluster.crash_node(n) for n in victims],
        heal_at_ms=1600.0,
        heal=lambda: [cluster.restart_node(n) for n in victims])]


def _rolling_zone_faults(harness) -> List[FaultEvent]:
    cluster = harness.cluster
    events = []
    for index, region in enumerate(harness.regions):
        node_id = cluster.nodes_in_region(region)[-1].node_id
        start = 200.0 + 450.0 * index
        events.append(FaultEvent(
            name=f"zone-crash:{region}",
            at_ms=start,
            inject=lambda n=node_id: cluster.crash_node(n),
            heal_at_ms=start + 400.0,
            heal=lambda n=node_id: cluster.restart_node(n)))
    return events


def _flaky_wan_faults(harness) -> List[FaultEvent]:
    faults = harness.cluster.network.faults
    home = harness.home
    other = next(r for r in harness.regions if r != home)
    return [FaultEvent(
        name=f"flaky-wan:{home}<->{other}",
        at_ms=200.0,
        inject=lambda: (faults.set_loss(home, other, 0.25),
                        faults.set_latency_factor(home, other, 3.0)),
        heal_at_ms=1400.0,
        heal=lambda: (faults.set_loss(home, other, 0.0),
                      faults.set_latency_factor(home, other, 1.0)))]


def _non_lease_follower(harness) -> int:
    lease_node = harness.range.leaseholder_node_id
    return next(p.node.node_id for p in harness.range.group.voters()
                if p.node.node_id != lease_node)


def _gray_follower_faults(harness) -> List[FaultEvent]:
    faults = harness.cluster.network.faults
    follower = _non_lease_follower(harness)
    return [FaultEvent(
        name=f"gray-node:{follower}",
        at_ms=200.0,
        inject=lambda: faults.slow_node(follower, 20.0),
        heal_at_ms=1400.0,
        heal=lambda: faults.restore_node_speed(follower))]


def _asym_partition_faults(harness) -> List[FaultEvent]:
    faults = harness.cluster.network.faults
    home = harness.home
    other = next(r for r in harness.regions if r != home)
    return [FaultEvent(
        name=f"asym-cut:{other}->{home}",
        at_ms=250.0,
        inject=lambda: faults.cut_link(other, home, bidirectional=False),
        heal=lambda: faults.heal_link(other, home, bidirectional=False),
        heal_at_ms=1400.0)]


def _partition_leaseholder_faults(harness) -> List[FaultEvent]:
    """Symmetrically partition exactly the node holding the lease.

    The victim stays up — it just can't talk to anyone: the lease must
    fail over (the old leaseholder cannot heartbeat its liveness), the
    deposed node must not serve stale reads or ack writes into the
    void, and on heal it rejoins as a follower and catches up."""
    faults = harness.cluster.network.faults
    victim = harness.range.leaseholder_node_id
    peers = [n.node_id for n in harness.cluster.nodes
             if n.node_id != victim]
    return [FaultEvent(
        name=f"partition-lease:n{victim}",
        at_ms=250.0,
        inject=lambda: [faults.cut_link(victim, p, bidirectional=True)
                        for p in peers],
        heal_at_ms=1400.0,
        heal=lambda: [faults.heal_link(victim, p, bidirectional=True)
                      for p in peers])]


def _crash_restart_faults(harness) -> List[FaultEvent]:
    cluster = harness.cluster
    follower = _non_lease_follower(harness)
    return [FaultEvent(
        name=f"crash:{follower}",
        at_ms=250.0,
        inject=lambda: cluster.crash_node(follower),
        heal_at_ms=1100.0,
        heal=lambda: cluster.restart_node(follower))]


def _kill_node_faults(harness) -> List[FaultEvent]:
    cluster = harness.cluster
    lease_node = harness.range.leaseholder_node_id
    candidates = [p.node for p in harness.range.group.voters()
                  if p.node.node_id != lease_node]

    def is_gateway(node) -> bool:
        # Clients connect to the first two nodes of each region; prefer
        # a victim that isn't someone's gateway so availability dips
        # reflect the range, not a dead client connection.
        peers = cluster.nodes_in_region(node.locality.region)
        return node in peers[:2]

    victim = sorted(candidates,
                    key=lambda n: (is_gateway(n), n.node_id))[0].node_id
    return [FaultEvent(
        name=f"kill:{victim}",
        at_ms=300.0,
        inject=lambda: cluster.crash_node(victim))]


def _split_under_fire_faults(harness) -> List[FaultEvent]:
    """Crash the (initial) leaseholder while hot-key load is driving
    the rebalance queue through splits, then restart it."""
    cluster = harness.cluster
    victim = harness.range.leaseholder_node_id
    return [FaultEvent(
        name=f"crash-lease:{victim}",
        at_ms=250.0,
        inject=lambda: cluster.crash_node(victim),
        heal_at_ms=1100.0,
        heal=lambda: cluster.restart_node(victim))]


def _region_loss_faults(harness) -> List[FaultEvent]:
    cluster = harness.cluster
    victims = [n.node_id for n in cluster.nodes_in_region(harness.home)]
    return [FaultEvent(
        name=f"region-loss:{harness.home}",
        at_ms=300.0,
        inject=lambda: [cluster.crash_node(n) for n in victims])]


def _clock_drift_faults(harness) -> List[FaultEvent]:
    """Two non-leaseholder voters drift at +-3%/s — enough to smear the
    MVCC timeline, never enough to leave the max-offset contract."""
    clock = harness.cluster.clock
    lease_node = harness.range.leaseholder_node_id
    victims = [p.node.node_id for p in harness.range.group.voters()
               if p.node.node_id != lease_node][:2]
    events = []
    for index, node_id in enumerate(victims):
        rate = 0.03 if index % 2 == 0 else -0.03
        events.append(FaultEvent(
            name=f"clock-drift:n{node_id}",
            at_ms=200.0,
            inject=lambda n=node_id, r=rate: clock.set_drift(n, r),
            heal_at_ms=1400.0,
            heal=lambda n=node_id: clock.heal(n)))
    return events


def _clock_jump_victim(harness) -> int:
    """A non-leaseholder voter, preferring one that isn't a client
    gateway (the fence kills it; availability should show the range's
    story, not a dead client connection)."""
    cluster = harness.cluster
    lease_node = harness.range.leaseholder_node_id
    candidates = [p.node for p in harness.range.group.voters()
                  if p.node.node_id != lease_node]

    def is_gateway(node) -> bool:
        peers = cluster.nodes_in_region(node.locality.region)
        return node in peers[:2]

    return sorted(candidates,
                  key=lambda n: (is_gateway(n), n.node_id))[0].node_id


def _clock_jump_faults(harness) -> List[FaultEvent]:
    """One voter's clock steps +800 ms — far beyond the 250 ms contract.

    No heal ever comes: the monitor must fence the node and (with repair
    enabled) the replicate queue must re-replicate around it, exactly as
    if it had died — because for correctness purposes it has."""
    clock = harness.cluster.clock
    victim = _clock_jump_victim(harness)
    return [FaultEvent(
        name=f"clock-jump:n{victim}",
        at_ms=300.0,
        inject=lambda: clock.jump(victim, 800.0))]


def _clock_freeze_faults(harness) -> List[FaultEvent]:
    """The leaseholder's clock freezes solid mid-run.

    Peers march ahead at 1 ms/ms, so the victim's measured offsets grow
    until it self-fences and the lease fails over; the heal step-syncs
    the clock so the end-of-run restart rejoins it cleanly."""
    clock = harness.cluster.clock
    victim = harness.range.leaseholder_node_id
    return [FaultEvent(
        name=f"clock-freeze:n{victim}",
        at_ms=250.0,
        inject=lambda: clock.freeze(victim),
        heal_at_ms=1400.0,
        heal=lambda: clock.heal(victim))]


#: Scenario name -> fault-schedule builder (shared with repro.verify).
FAULT_BUILDERS: Dict[str, Callable[[Any], List[FaultEvent]]] = {
    "region-blackout": _blackout_faults,
    "rolling-zones": _rolling_zone_faults,
    "flaky-wan": _flaky_wan_faults,
    "gray-follower": _gray_follower_faults,
    "asym-partition": _asym_partition_faults,
    "partition-leaseholder": _partition_leaseholder_faults,
    "crash-restart": _crash_restart_faults,
    "split-under-fire": _split_under_fire_faults,
    "kill-node-repair": _kill_node_faults,
    "region-loss-repair": _region_loss_faults,
    "clock-drift": _clock_drift_faults,
    "clock-jump-fence": _clock_jump_faults,
    "clock-freeze-lease": _clock_freeze_faults,
}


def build_faults(name: str, harness) -> List[FaultEvent]:
    """The named scenario's fault schedule, targeted at ``harness``."""
    return FAULT_BUILDERS[name](harness)


# -- built-in scenarios ------------------------------------------------------


def _region_blackout(seed: int, txn_protocol=None) -> ScenarioResult:
    """The home region (leaseholder included) goes dark, then returns.

    SURVIVE REGION FAILURE + automatic lease failover must keep the
    database available from the surviving regions with no operator
    action, and the healed region must catch back up.
    """
    harness = ChaosHarness(seed, txn_protocol=txn_protocol)
    return harness.run("region-blackout",
                       build_faults("region-blackout", harness))


def _rolling_zones(seed: int, txn_protocol=None) -> ScenarioResult:
    """One zone per region crash-restarts in a rolling wave."""
    harness = ChaosHarness(seed, txn_protocol=txn_protocol)
    return harness.run("rolling-zones",
                       build_faults("rolling-zones", harness))


def _flaky_wan(seed: int, txn_protocol=None) -> ScenarioResult:
    """The home<->Europe WAN link drops 25% of packets and triples
    latency for a window; retries + Raft retransmission ride it out."""
    harness = ChaosHarness(seed, txn_protocol=txn_protocol)
    return harness.run("flaky-wan", build_faults("flaky-wan", harness))


def _gray_follower(seed: int, txn_protocol=None) -> ScenarioResult:
    """A non-leaseholder voter goes gray (20x slower, still up); nearest
    reads route through/around it without consistency loss."""
    harness = ChaosHarness(seed, txn_protocol=txn_protocol)
    return harness.run("gray-follower",
                       build_faults("gray-follower", harness),
                       read_routing=ReadRouting.NEAREST)


def _asym_partition(seed: int, txn_protocol=None) -> ScenarioResult:
    """Europe can't reach the home region but the home region can reach
    Europe (one-way cut) — the classic gray failure behind satellite
    bugfix #1; replies must not sneak through the cut direction."""
    harness = ChaosHarness(seed, txn_protocol=txn_protocol)
    return harness.run("asym-partition",
                       build_faults("asym-partition", harness))


def _crash_restart(seed: int, txn_protocol=None) -> ScenarioResult:
    """A follower crashes mid-run and restarts with its Raft log intact;
    it must catch up (resync) rather than diverge or stall the range."""
    harness = ChaosHarness(seed, txn_protocol=txn_protocol)
    return harness.run("crash-restart",
                       build_faults("crash-restart", harness))


def _partition_leaseholder(seed: int, txn_protocol=None) -> ScenarioResult:
    """The node holding the lease is symmetrically partitioned from
    every peer (it stays up).  The lease must fail over and the deposed
    node must not serve split-brain reads or writes; on heal it rejoins
    as a follower.  The protocol-matrix CI job runs this under both
    transaction backends — for epoch-OCC the partition additionally
    races the epoch service's ordering/apply RPCs."""
    harness = ChaosHarness(seed, txn_protocol=txn_protocol)
    return harness.run("partition-leaseholder",
                       build_faults("partition-leaseholder", harness))


def _split_under_fire(seed: int, txn_protocol=None) -> ScenarioResult:
    """Hot-key load splits the range while its leaseholder crashes.

    The chaos range runs in elastic mode: the rebalance queue
    size-splits the seeded keyspace immediately and keeps load-splitting
    the hot keys while the nemesis crashes the node holding the initial
    lease mid-split.  Every acked write must survive, and the span's
    descriptors must still tile the keyspace afterwards — no key may
    ever be left unowned or doubly-owned by the split/merge machinery
    racing lease failover and repair.
    """
    harness = ChaosHarness(seed, enable_repair=True, elastic=True,
                           txn_protocol=txn_protocol)
    return harness.run("split-under-fire",
                       build_faults("split-under-fire", harness),
                       inc_ops=20, read_ops=20)


def _kill_node_repair(seed: int, txn_protocol=None) -> ScenarioResult:
    """A non-leaseholder voter dies *permanently* — no heal ever comes.

    Store liveness must walk it LIVE → SUSPECT → DEAD, and the replicate
    queue must re-replicate its voter slot onto a constraint-satisfying,
    diversity-maximizing survivor through the safe learner → snapshot →
    promote pipeline, with zero lost acked writes.
    """
    harness = ChaosHarness(seed, enable_repair=True,
                           txn_protocol=txn_protocol)
    return harness.run("kill-node-repair",
                       build_faults("kill-node-repair", harness),
                       restart_dead_on_heal=False)


def _region_loss_repair(seed: int, txn_protocol=None) -> ScenarioResult:
    """The home region (leaseholder included) is lost *permanently*.

    The lease must fail over to a survivor, and the repair queue must
    rebuild full REGION-survivable replication on the two remaining
    regions — back to 5 constraint- and diversity-satisfying voters —
    within ``time_until_store_dead`` + a few repair intervals, with
    zero lost acked writes.  Clients and the final audit live only in
    the surviving regions.
    """
    harness = ChaosHarness(seed, enable_repair=True,
                           txn_protocol=txn_protocol)
    survivors = [r for r in harness.regions if r != harness.home]
    return harness.run("region-loss-repair",
                       build_faults("region-loss-repair", harness),
                       client_regions=survivors,
                       restart_dead_on_heal=False,
                       audit_regions=survivors)


def _clock_drift(seed: int, txn_protocol=None) -> ScenarioResult:
    """Two voters drift within the max-offset contract.

    The monitor measures the drift (exported via the per-node
    ``clock.offset_measured`` gauge) but must NOT fence anyone: the
    uncertainty machinery absorbs in-contract skew by design, and a
    monitor that fences healthy nodes is itself an availability bug.
    """
    harness = ChaosHarness(seed, clock_monitor=True,
                           txn_protocol=txn_protocol)
    return harness.run("clock-drift", build_faults("clock-drift", harness),
                       expect_fences=False)


def _clock_jump_fence(seed: int, txn_protocol=None) -> ScenarioResult:
    """A voter's clock steps +800 ms, beyond the 250 ms contract, and
    never heals.

    The node must self-fence from its own peer measurements (it sees
    every peer ~800 ms behind; healthy nodes see only it as an
    outlier), store liveness must walk it to DEAD, and the replicate
    queue must repair its voter slot — the clock-outlier node is
    treated exactly like a dead one.
    """
    harness = ChaosHarness(seed, enable_repair=True, clock_monitor=True,
                           txn_protocol=txn_protocol)
    return harness.run("clock-jump-fence",
                       build_faults("clock-jump-fence", harness),
                       restart_dead_on_heal=False,
                       expect_fences=True)


def _clock_freeze_lease(seed: int, txn_protocol=None) -> ScenarioResult:
    """The leaseholder's clock freezes solid.

    Its measured peer offsets grow at 1 ms/ms until it fences itself
    and the lease fails over to a healthy voter; after the nemesis
    heals (step-syncing the clock) the node restarts and rejoins.
    """
    harness = ChaosHarness(seed, clock_monitor=True,
                           txn_protocol=txn_protocol)
    return harness.run("clock-freeze-lease",
                       build_faults("clock-freeze-lease", harness),
                       expect_fences=True)


def _overload_global(seed: int, txn_protocol=None) -> ScenarioResult:
    # Imported lazily: chaos.overload builds on harness.openloop and
    # imports ScenarioResult from this module.
    if txn_protocol is not None:
        raise ValueError(
            "overload scenarios drive the open-loop harness and do not "
            "support a txn_protocol override")
    from .overload import overload_global
    return overload_global(seed)


def _overload_hot_region(seed: int, txn_protocol=None) -> ScenarioResult:
    if txn_protocol is not None:
        raise ValueError(
            "overload scenarios drive the open-loop harness and do not "
            "support a txn_protocol override")
    from .overload import overload_hot_region
    return overload_hot_region(seed)


SCENARIOS: Dict[str, Callable[[int], ScenarioResult]] = {
    "region-blackout": _region_blackout,
    "rolling-zones": _rolling_zones,
    "flaky-wan": _flaky_wan,
    "gray-follower": _gray_follower,
    "asym-partition": _asym_partition,
    "partition-leaseholder": _partition_leaseholder,
    "crash-restart": _crash_restart,
    "split-under-fire": _split_under_fire,
    "kill-node-repair": _kill_node_repair,
    "region-loss-repair": _region_loss_repair,
    "overload-global": _overload_global,
    "overload-hot-region": _overload_hot_region,
    "clock-drift": _clock_drift,
    "clock-jump-fence": _clock_jump_fence,
    "clock-freeze-lease": _clock_freeze_lease,
}


def run_scenario(name: str, seed: int = 0,
                 txn_protocol=None) -> ScenarioResult:
    """Run one built-in scenario by name.

    ``txn_protocol`` selects the transaction backend ("crdb" default,
    "epoch-occ"); None keeps every legacy schedule byte-identical."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown chaos scenario {name!r}; "
            f"choose from {sorted(SCENARIOS)}") from None
    if txn_protocol is None:
        return scenario(seed)
    return scenario(seed, txn_protocol=txn_protocol)
