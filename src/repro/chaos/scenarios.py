"""Built-in chaos scenarios: workload + nemesis schedule + audit.

Each scenario builds a REGION-survivable cluster, runs seeded increment
and read clients against one range while a :class:`Nemesis` injects and
heals faults, then heals everything, audits the final counters from
every region, and checks the Jepsen-style invariants.

All randomness flows from the scenario seed (client think times, key
choice, packet-loss sampling, retry jitter), so a run is exactly
reproducible from ``(scenario, seed)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..cluster import standard_cluster
from ..errors import (
    AmbiguousCommitError,
    FollowerReadNotAvailableError,
    RangeUnavailableError,
    TransactionAbortedError,
    TransactionRetryError,
)
from ..kv.distsender import ReadRouting
from ..placement import SurvivalGoal, provision_range, zone_config_for_home
from ..sim.network import NetworkUnavailableError
from ..txn import TransactionCoordinator
from .invariants import (
    FAIL,
    INDETERMINATE,
    OK,
    History,
    InvariantReport,
    OpRecord,
    check_history,
    render_timeline,
)
from .nemesis import FaultEvent, Nemesis

__all__ = ["SCENARIOS", "ScenarioResult", "ChaosHarness", "run_scenario"]

REGIONS = ["us-east1", "europe-west2", "asia-northeast1"]
HOME = "us-east1"
KEYS = ["acct0", "acct1", "acct2"]

RETRYABLE = (TransactionRetryError, TransactionAbortedError,
             RangeUnavailableError, NetworkUnavailableError,
             FollowerReadNotAvailableError)


@dataclass
class ScenarioResult:
    """Everything a chaos run produced, ready to render or assert on."""

    name: str
    seed: int
    history: History
    report: InvariantReport
    nemesis_timeline: list
    final_values: Dict[str, int]
    duration_ms: float
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.report.ok

    def render(self) -> str:
        counts = self.history.counts()
        lines = [
            f"chaos scenario {self.name!r} (seed={self.seed}) — "
            f"{len(self.history.ops)} ops in {self.duration_ms:.0f}ms sim",
            f"  ops: {counts.get(OK, 0)} ok, {counts.get(FAIL, 0)} failed, "
            f"{counts.get(INDETERMINATE, 0)} indeterminate",
            "  stats: " + ", ".join(
                f"{key}={value}" for key, value in sorted(self.stats.items())),
            f"  final: " + ", ".join(
                f"{key}={value}"
                for key, value in sorted(self.final_values.items())),
            "timeline:",
            render_timeline(self.history, self.nemesis_timeline),
            "invariants:",
            self.report.render(),
        ]
        return "\n".join(lines)


class ChaosHarness:
    """One REGION-survivable range plus seeded clients and a nemesis."""

    def __init__(self, seed: int, regions: Optional[List[str]] = None,
                 home: str = HOME, goal: str = SurvivalGoal.REGION,
                 proposal_timeout_ms: float = 1000.0,
                 retransmit_interval_ms: float = 150.0):
        self.seed = seed
        self.regions = list(regions or REGIONS)
        self.home = home
        self.cluster = standard_cluster(self.regions, seed=seed)
        self.coord = TransactionCoordinator(self.cluster)
        self.ds = self.coord.distsender
        config = zone_config_for_home(home, self.cluster.regions(), goal)
        # Chaos provisioning turns on the hardening that seed
        # experiments leave off: bounded Raft proposals (writes fail
        # cleanly instead of hanging without quorum) and leader
        # retransmission (progress under packet loss).
        self.range = provision_range(
            self.cluster, config, name="chaos",
            side_transport_interval_ms=100.0,
            proposal_timeout_ms=proposal_timeout_ms,
            retransmit_interval_ms=retransmit_interval_ms)
        self.history = History()
        self.rng = random.Random((seed << 4) ^ 0xC4A05)

    @property
    def sim(self):
        return self.cluster.sim

    # -- clients -----------------------------------------------------------

    def inc_client(self, name: str, region: str, gateway_index: int,
                   ops: int, think_ms=(10.0, 40.0)):
        """Increment a random key per op; record ok/fail/indeterminate."""
        gateway = self.cluster.gateway_for_region(region, gateway_index)
        rng = random.Random(self.rng.random())
        for _ in range(ops):
            key = rng.choice(KEYS)
            start = self.sim.now

            def txn_fn(txn, key=key):
                value = yield from txn.read(self.range, key)
                yield from txn.write(self.range, key, value + 1)

            status, error = OK, ""
            try:
                yield from self.coord.run(gateway, txn_fn, max_attempts=6)
            except AmbiguousCommitError as err:
                status, error = INDETERMINATE, type(err).__name__
            except RETRYABLE as err:
                status, error = FAIL, type(err).__name__
            self.history.record(OpRecord(
                client=name, kind="inc", key=key, start_ms=start,
                end_ms=self.sim.now, status=status, error=error))
            yield self.sim.sleep(rng.uniform(*think_ms))

    def read_client(self, name: str, region: str, gateway_index: int,
                    ops: int, routing: str = ReadRouting.LEASEHOLDER,
                    think_ms=(10.0, 40.0)):
        """Read a random key per op; NEAREST routing marks reads stale
        (follower reads serve a closed, slightly-past timestamp)."""
        gateway = self.cluster.gateway_for_region(region, gateway_index)
        rng = random.Random(self.rng.random())
        stale = routing != ReadRouting.LEASEHOLDER
        for _ in range(ops):
            key = rng.choice(KEYS)
            start = self.sim.now

            def txn_fn(txn, key=key):
                value = yield from txn.read(self.range, key, routing=routing)
                return value

            status, error, value = OK, "", None
            try:
                result, _ts = yield from self.coord.run(
                    gateway, txn_fn, max_attempts=6)
                value = result
            except AmbiguousCommitError as err:
                status, error = INDETERMINATE, type(err).__name__
            except RETRYABLE as err:
                status, error = FAIL, type(err).__name__
            self.history.record(OpRecord(
                client=name, kind="read", key=key, start_ms=start,
                end_ms=self.sim.now, status=status, value=value,
                stale=stale, error=error))
            yield self.sim.sleep(rng.uniform(*think_ms))

    # -- the run -----------------------------------------------------------

    def run(self, name: str, events: List[FaultEvent],
            inc_ops: int = 14, read_ops: int = 14,
            read_routing: str = ReadRouting.LEASEHOLDER,
            client_regions: Optional[List[str]] = None) -> ScenarioResult:
        sim = self.sim
        # Seed the counters before chaos starts.
        for key in KEYS:
            gateway = self.cluster.gateway_for_region(self.home)

            def init_fn(txn, key=key):
                yield from txn.write(self.range, key, 0)

            sim.run_until_future(sim.spawn(self.coord.run(gateway, init_fn)))
        sim.run(until=sim.now + 200.0)  # settle replication

        start_ms = sim.now
        nemesis = Nemesis(self.cluster, events)
        nemesis.schedule(base_ms=start_ms)
        regions = client_regions or self.regions
        processes = []
        for index, region in enumerate(regions):
            processes.append(sim.spawn(self.inc_client(
                f"inc-{region}", region, index % 2, inc_ops)))
            processes.append(sim.spawn(self.read_client(
                f"read-{region}", region, (index + 1) % 2, read_ops,
                routing=read_routing)))
        for process in processes:
            sim.run_until_future(process)
        duration = sim.now - start_ms

        # Heal the world, let replication catch up, then audit.
        nemesis.heal_all()
        sim.run(until=sim.now + 2000.0)
        final_values = self._audit()
        report = check_history(self.history, final_values)
        group = self.range.group
        stats = {
            "failovers": self.range.failovers,
            "rpc_retries": self.ds.rpc_retries,
            "breaker_trips": self.ds.breakers.total_trips(),
            "messages_dropped": self.cluster.network.messages_dropped,
            "ambiguous_commits": self.coord.stats.ambiguous_commits,
            "txn_retries": self.coord.stats.aborted_retries,
            "raft_term": group.term,
        }
        return ScenarioResult(
            name=name, seed=self.seed, history=self.history, report=report,
            nemesis_timeline=nemesis.timeline, final_values=final_values,
            duration_ms=duration, stats=stats)

    def _audit(self) -> Dict[str, int]:
        """Strong-read every key from every region; they must agree."""
        values: Dict[str, int] = {}
        for key in KEYS:
            observed = []
            for region in self.regions:
                gateway = self.cluster.gateway_for_region(region)

                def read_fn(txn, key=key):
                    value = yield from txn.read(self.range, key)
                    return value

                result, _ts = self.sim.run_until_future(
                    self.sim.spawn(self.coord.run(gateway, read_fn)))
                observed.append(result)
            values[key] = observed[0]
            if len(set(observed)) != 1:
                # Surfaced through the durability check as a phantom /
                # lost write; record the worst value.
                values[key] = min(observed)
        return values


# -- built-in scenarios ------------------------------------------------------


def _region_blackout(seed: int) -> ScenarioResult:
    """The home region (leaseholder included) goes dark, then returns.

    SURVIVE REGION FAILURE + automatic lease failover must keep the
    database available from the surviving regions with no operator
    action, and the healed region must catch back up.
    """
    harness = ChaosHarness(seed)
    cluster = harness.cluster
    victims = [n.node_id for n in cluster.nodes_in_region(HOME)]
    events = [FaultEvent(
        name=f"blackout:{HOME}",
        at_ms=250.0,
        inject=lambda: [cluster.crash_node(n) for n in victims],
        heal_at_ms=1600.0,
        heal=lambda: [cluster.restart_node(n) for n in victims])]
    return harness.run("region-blackout", events)


def _rolling_zones(seed: int) -> ScenarioResult:
    """One zone per region crash-restarts in a rolling wave."""
    harness = ChaosHarness(seed)
    cluster = harness.cluster
    events = []
    for index, region in enumerate(harness.regions):
        node_id = cluster.nodes_in_region(region)[-1].node_id
        start = 200.0 + 450.0 * index
        events.append(FaultEvent(
            name=f"zone-crash:{region}",
            at_ms=start,
            inject=lambda n=node_id: cluster.crash_node(n),
            heal_at_ms=start + 400.0,
            heal=lambda n=node_id: cluster.restart_node(n)))
    return harness.run("rolling-zones", events)


def _flaky_wan(seed: int) -> ScenarioResult:
    """The home<->Europe WAN link drops 25% of packets and triples
    latency for a window; retries + Raft retransmission ride it out."""
    harness = ChaosHarness(seed)
    faults = harness.cluster.network.faults
    events = [FaultEvent(
        name=f"flaky-wan:{HOME}<->europe-west2",
        at_ms=200.0,
        inject=lambda: (faults.set_loss(HOME, "europe-west2", 0.25),
                        faults.set_latency_factor(HOME, "europe-west2", 3.0)),
        heal_at_ms=1400.0,
        heal=lambda: (faults.set_loss(HOME, "europe-west2", 0.0),
                      faults.set_latency_factor(HOME, "europe-west2", 1.0)))]
    return harness.run("flaky-wan", events)


def _gray_follower(seed: int) -> ScenarioResult:
    """A non-leaseholder voter goes gray (20x slower, still up); nearest
    reads route through/around it without consistency loss."""
    harness = ChaosHarness(seed)
    faults = harness.cluster.network.faults
    lease_node = harness.range.leaseholder_node_id
    follower = next(p.node.node_id for p in harness.range.group.voters()
                    if p.node.node_id != lease_node)
    events = [FaultEvent(
        name=f"gray-node:{follower}",
        at_ms=200.0,
        inject=lambda: faults.slow_node(follower, 20.0),
        heal_at_ms=1400.0,
        heal=lambda: faults.restore_node_speed(follower))]
    return harness.run("gray-follower", events,
                       read_routing=ReadRouting.NEAREST)


def _asym_partition(seed: int) -> ScenarioResult:
    """Europe can't reach the home region but the home region can reach
    Europe (one-way cut) — the classic gray failure behind satellite
    bugfix #1; replies must not sneak through the cut direction."""
    harness = ChaosHarness(seed)
    faults = harness.cluster.network.faults
    events = [FaultEvent(
        name=f"asym-cut:europe-west2->{HOME}",
        at_ms=250.0,
        inject=lambda: faults.cut_link("europe-west2", HOME,
                                       bidirectional=False),
        heal_at_ms=1400.0,
        heal=lambda: faults.heal_link("europe-west2", HOME,
                                      bidirectional=False))]
    return harness.run("asym-partition", events)


def _crash_restart(seed: int) -> ScenarioResult:
    """A follower crashes mid-run and restarts with its Raft log intact;
    it must catch up (resync) rather than diverge or stall the range."""
    harness = ChaosHarness(seed)
    cluster = harness.cluster
    lease_node = harness.range.leaseholder_node_id
    follower = next(p.node.node_id for p in harness.range.group.voters()
                    if p.node.node_id != lease_node)
    events = [FaultEvent(
        name=f"crash:{follower}",
        at_ms=250.0,
        inject=lambda: cluster.crash_node(follower),
        heal_at_ms=1100.0,
        heal=lambda: cluster.restart_node(follower))]
    return harness.run("crash-restart", events)


SCENARIOS: Dict[str, Callable[[int], ScenarioResult]] = {
    "region-blackout": _region_blackout,
    "rolling-zones": _rolling_zones,
    "flaky-wan": _flaky_wan,
    "gray-follower": _gray_follower,
    "asym-partition": _asym_partition,
    "crash-restart": _crash_restart,
}


def run_scenario(name: str, seed: int = 0) -> ScenarioResult:
    """Run one built-in scenario by name."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown chaos scenario {name!r}; "
            f"choose from {sorted(SCENARIOS)}") from None
    return scenario(seed)
