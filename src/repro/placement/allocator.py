"""Replica placement allocator.

Turns a :class:`ZoneConfig` into a concrete assignment of replicas to
nodes.  Within the constraint counts, the allocator spreads replicas
across failure domains by maximizing a diversity score (paper §3.2:
"candidates are assigned a diversity score such that nodes that do not
share localities with already placed replicas are ranked higher") and
balances load by preferring nodes hosting fewer replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from .zoneconfig import ZoneConfig

__all__ = ["Allocator", "Placement"]


@dataclass
class Placement:
    """A concrete replica assignment."""

    voters: List = field(default_factory=list)
    non_voters: List = field(default_factory=list)
    leaseholder = None

    def all_nodes(self) -> List:
        return list(self.voters) + list(self.non_voters)

    def regions(self) -> List[str]:
        seen = []
        for node in self.all_nodes():
            if node.locality.region not in seen:
                seen.append(node.locality.region)
        return seen


class Allocator:
    """Chooses nodes for a zone config on a given cluster.

    ``load_fn`` replaces the default load signal (hosted replica count)
    with a caller-supplied score — the rebalancing queue passes a
    QPS-weighted one so placement follows the workload, not just the
    replica census.  It must return a totally ordered value (number or
    tuple) and be deterministic for a given cluster state.
    """

    def __init__(self, cluster, load_fn=None):
        self.cluster = cluster
        self.load_fn = load_fn

    def _load(self, node) -> object:
        if self.load_fn is not None:
            return self.load_fn(node)
        return len(node.replicas)

    def place(self, config: ZoneConfig) -> Placement:
        placement = Placement()
        used = set()

        def candidates_in(region: Optional[str]) -> List:
            nodes = (self.cluster.nodes_in_region(region) if region
                     else self.cluster.live_nodes())
            return [n for n in nodes if n.node_id not in used]

        def score(node, chosen: Sequence) -> tuple:
            diversity = sum(node.locality.diversity_from(c.locality)
                            for c in chosen)
            # Higher diversity first, then lower load, then stable id.
            return (-diversity, self._load(node), node.node_id)

        def pick(region: Optional[str], chosen: Sequence):
            options = candidates_in(region)
            if not options:
                raise ConfigurationError(
                    f"no available node in region {region!r} "
                    f"(constraints unsatisfiable)")
            best = min(options, key=lambda n: score(n, chosen))
            used.add(best.node_id)
            return best

        # 1. Voters satisfying voter_constraints.
        for region, count in config.voter_constraints.items():
            for _ in range(count):
                placement.voters.append(pick(region, placement.voters))

        # 2. Remaining voters: satisfy overall per-region constraints that
        #    still need replicas, then free placement by diversity.
        remaining_constraint = dict(config.constraints)
        for node in placement.voters:
            region = node.locality.region
            if remaining_constraint.get(region, 0) > 0:
                remaining_constraint[region] -= 1
        voters_left = config.num_voters - len(placement.voters)
        for region in sorted(remaining_constraint,
                             key=lambda r: -remaining_constraint[r]):
            while voters_left > 0 and remaining_constraint[region] > 0:
                placement.voters.append(pick(region, placement.voters))
                remaining_constraint[region] -= 1
                voters_left -= 1
        while voters_left > 0:
            placement.voters.append(pick(None, placement.voters))
            voters_left -= 1

        # 3. Non-voters: cover remaining constraints, then free slots.
        non_voters_left = config.num_non_voters
        for region in sorted(remaining_constraint,
                             key=lambda r: -remaining_constraint[r]):
            while non_voters_left > 0 and remaining_constraint[region] > 0:
                placement.non_voters.append(
                    pick(region, placement.all_nodes()))
                remaining_constraint[region] -= 1
                non_voters_left -= 1
        while non_voters_left > 0:
            placement.non_voters.append(pick(None, placement.all_nodes()))
            non_voters_left -= 1

        # 4. Leaseholder: a voter in the preferred region.
        placement.leaseholder = self._choose_leaseholder(
            placement, config.lease_preferences)
        return placement

    def pick_addition(self, config: ZoneConfig, existing_nodes: Sequence,
                      exclude_ids: Sequence[int] = (),
                      live_filter=None):
        """Choose one node to add to an *existing* placement (repair path).

        Regions whose constraint count is not yet met by
        ``existing_nodes`` are tried first, most-deficient first; if all
        constraints are met (or their regions hold no eligible node —
        e.g. a lost region), any node may be chosen.  Within a pool the
        pick maximizes failure-domain diversity against the survivors,
        then balances load, exactly like initial placement.  Returns
        ``None`` when no eligible node exists.

        ``live_filter`` lets the caller exclude nodes its liveness view
        considers unusable (the cluster's ``alive`` flag only reflects
        explicit decommissioning, not network death).
        """
        exclude = set(exclude_ids) | {n.node_id for n in existing_nodes}

        def eligible(node) -> bool:
            if node.node_id in exclude or not node.alive:
                return False
            return live_filter is None or live_filter(node)

        def score(node) -> tuple:
            diversity = sum(node.locality.diversity_from(c.locality)
                            for c in existing_nodes)
            return (-diversity, self._load(node), node.node_id)

        counts: Dict[str, int] = {}
        for node in existing_nodes:
            region = node.locality.region
            counts[region] = counts.get(region, 0) + 1
        deficits = {region: want - counts.get(region, 0)
                    for region, want in config.constraints.items()
                    if want > counts.get(region, 0)}
        pools = []
        for region in sorted(deficits, key=lambda r: (-deficits[r], r)):
            pools.append(self.cluster.nodes_in_region(region))
        pools.append(list(self.cluster.nodes))
        for pool in pools:
            options = [n for n in pool if eligible(n)]
            if options:
                return min(options, key=score)
        return None

    def _choose_leaseholder(self, placement: Placement,
                            preferences: Sequence[str]):
        for region in preferences:
            for voter in placement.voters:
                if voter.locality.region == region:
                    return voter
        if not placement.voters:
            raise ConfigurationError("placement has no voters")
        return placement.voters[0]
