"""Provisioning: build live Ranges from zone configurations.

This is the glue between placement decisions and the KV layer: it
creates the Range, attaches replicas per the placement, assigns the
lease, picks the closed-timestamp policy (lag for REGIONAL, lead for
GLOBAL, sized from the range's actual topology), and starts the
closed-timestamp side transport.
"""

from __future__ import annotations

from typing import Optional

from ..kv.closedts import LagPolicy, LeadPolicy
from ..kv.range import Range
from ..raft.group import ReplicaType
from .allocator import Allocator, Placement
from .zoneconfig import ZoneConfig

__all__ = ["provision_range", "reconfigure_range"]


def provision_range(cluster, config: ZoneConfig, global_reads: bool = False,
                    name: str = "",
                    side_transport_interval_ms: Optional[float] = None,
                    closed_ts_lag_ms: Optional[float] = None,
                    proposal_timeout_ms: Optional[float] = None,
                    retransmit_interval_ms: Optional[float] = None) -> Range:
    """Create a Range placed per ``config``.

    ``global_reads`` selects the future-time closed timestamp policy
    (GLOBAL tables); otherwise the standard lag policy applies.

    ``proposal_timeout_ms`` bounds Raft proposals (needed so writes fail
    cleanly instead of hanging when quorum is lost) and
    ``retransmit_interval_ms`` enables leader append retries — both are
    off by default and switched on by chaos provisioning.
    """
    placement = Allocator(cluster).place(config)
    rng = Range(cluster, name=name, proposal_timeout_ms=proposal_timeout_ms)
    for node in placement.voters:
        rng.add_replica(node, ReplicaType.VOTER)
    for node in placement.non_voters:
        rng.add_replica(node, ReplicaType.NON_VOTER)
    rng.set_leaseholder(placement.leaseholder.node_id)
    _assign_policy(cluster, rng, global_reads, closed_ts_lag_ms,
                   side_transport_interval_ms)
    rng.start_side_transport(side_transport_interval_ms)
    if retransmit_interval_ms is not None:
        rng.group.start_retransmission(retransmit_interval_ms)
    return rng


def _assign_policy(cluster, rng: Range, global_reads: bool,
                   closed_ts_lag_ms: Optional[float],
                   side_transport_interval_ms: Optional[float] = None) -> None:
    if global_reads:
        interval = (side_transport_interval_ms
                    if side_transport_interval_ms is not None
                    else Range.SIDE_TRANSPORT_INTERVAL_MS)
        # The worst-case *actual* clock skew between any two nodes, per
        # the cluster's skew model (never exceeds max_clock_offset).
        skew_allowance = cluster.skew.max_offset * cluster.skew.skew_fraction
        rng.policy = LeadPolicy.for_range(
            raft_latency_ms=rng.raft_latency_ms(),
            replicate_latency_ms=rng.replicate_latency_ms(),
            max_clock_offset=cluster.max_clock_offset,
            side_transport_interval_ms=interval,
            skew_allowance_ms=skew_allowance)
    elif closed_ts_lag_ms is not None:
        rng.policy = LagPolicy(lag_ms=closed_ts_lag_ms)
    else:
        rng.policy = LagPolicy()


def reconfigure_range(cluster, rng: Range, config: ZoneConfig,
                      global_reads: bool = False,
                      closed_ts_lag_ms: Optional[float] = None) -> Range:
    """Re-place an existing Range under a new zone config.

    Used by ``ALTER TABLE ... SET LOCALITY`` and survivability changes:
    replicas are added/removed/retyped in place (new replicas catch up
    from the leader) and the lease moves to the new preferred region.
    """
    placement = Allocator(cluster).place(config)
    desired = {node.node_id: ReplicaType.VOTER for node in placement.voters}
    desired.update({node.node_id: ReplicaType.NON_VOTER
                    for node in placement.non_voters})

    # Lease must land on a new voter before dropping the old leaseholder.
    new_lease_node = placement.leaseholder
    guard = rng.group.config_guard

    current_ids = set(rng.replicas)
    # 1. Add new members, one config change each (instant snapshot from
    #    the leader — the provisioning shortcut; the repair path pays
    #    real transfer latency instead).  Learners first would be
    #    strictly more faithful, but each add here is a complete,
    #    caught-up single change, so quorum is never at risk.
    for node in placement.all_nodes():
        if node.node_id not in current_ids:
            rng.add_replica(node, desired[node.node_id])
    # 2. Promote surviving non-voters one at a time.  A synchronous
    #    reconfigure cannot wait for the live stream, so each promotion
    #    is preceded by an instant snapshot-catch-up; the promotion then
    #    passes the learner-completeness and quorum checks for real.
    for node_id, replica_type in desired.items():
        peer = rng.group.peers.get(node_id)
        if (peer is not None and replica_type == ReplicaType.VOTER
                and peer.replica_type != ReplicaType.VOTER):
            guard.acquire(f"promote@n{node_id}", cluster.sim.now)
            try:
                rng.group.install_snapshot(node_id)
                rng.group.promote_learner(node_id)
            finally:
                guard.release(cluster.sim.now)
    # 3. Move the lease off any voter about to be demoted or removed.
    if rng.leaseholder_node_id != new_lease_node.node_id:
        rng.transfer_lease(new_lease_node.node_id)
    # 4. Demote surviving voters one at a time (quorum-checked).
    for node_id, replica_type in desired.items():
        peer = rng.group.peers.get(node_id)
        if (peer is not None and replica_type == ReplicaType.NON_VOTER
                and peer.replica_type == ReplicaType.VOTER):
            guard.acquire(f"demote@n{node_id}", cluster.sim.now)
            try:
                rng.group.demote_voter(node_id)
            finally:
                guard.release(cluster.sim.now)
    # 5. Drop stragglers via the quorum-safe removal path.
    for node_id in list(current_ids - set(desired)):
        rng.remove_replica_safely(node_id)
    _assign_policy(cluster, rng, global_reads, closed_ts_lag_ms)
    return rng
