"""Load-based rebalancing: the replicate queue, generalized (paper §4).

CockroachDB's allocator does more than repair broken placements — it
keeps the keyspace *elastic*: ranges split when they get too big or too
hot, cold neighbours merge back, and leases (and, where the zone config
leaves slack, replicas) migrate toward the regions actually generating
the load ("follow the workload").  :class:`RebalanceQueue` extends
:class:`~repro.placement.repair.ReplicateQueue` with exactly those
decisions, driven by the per-range load tracking on
:class:`~repro.kv.keyspace.RangeDescriptor`:

* **size splits** — a range holding more than ``split_max_keys`` keys
  splits at its median key;
* **load splits** — a range sustaining ``split_qps`` or more splits at
  the load-weighted median of its recent access histogram, so the hot
  tail lands in its own range;
* **cold merges** — adjacent ranges of the same span that have been
  cold (below ``merge_qps``) for ``merge_patience`` consecutive scans
  and fit in one range merge back, subject to the safety preconditions
  in :meth:`~repro.kv.keyspace.Keyspace.can_merge`;
* **lease moves** — when one region drives a dominant share of a
  range's traffic and the zone config expresses no explicit lease
  preference, the lease transfers to a live, log-complete voter there;
* **replica moves** — when the dominant region holds no voter at all
  and some region has more voters than its constraints require, a
  surplus voter is relocated through the safe learner pipeline.

Repair always wins: the inherited scan runs first, ranges with an
in-flight repair chain (or any in-flight membership change) are left
alone, and an explicit ``lease_preferences`` in the zone config
disables follow-the-workload for that span so the two policies cannot
ping-pong a lease between regions.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Set, Tuple

from ..cluster.liveness import LivenessStatus
from ..errors import ConfigurationError, RangeUnavailableError
from ..kv.keyspace import encode_key
from ..raft.group import ReplicaType
from ..raft.membership import ConfigChangeError
from ..sim.network import NetworkUnavailableError
from .allocator import Allocator
from .repair import ReplicateQueue
from .zoneconfig import ZoneConfig

__all__ = ["RebalanceQueue"]


class RebalanceQueue(ReplicateQueue):
    """Repair plus splits, merges, and follow-the-workload rebalancing."""

    #: Size-split threshold: keys in the leaseholder's store.
    SPLIT_MAX_KEYS = 64
    #: Load-split threshold: sustained QPS over the last load window.
    SPLIT_QPS = 20.0
    #: Merge candidate ceiling: both sides below this QPS...
    MERGE_QPS = 2.0
    #: ...for this many consecutive scans.
    MERGE_PATIENCE = 3
    #: Follow-the-workload: one region must drive this traffic share.
    LEASE_SHARE = 0.6
    #: Minimum sim-time between lease moves on one range (anti-thrash).
    LEASE_COOLDOWN_MS = 2000.0

    def __init__(self, cluster, liveness,
                 interval_ms: float = ReplicateQueue.INTERVAL_MS,
                 split_max_keys: int = SPLIT_MAX_KEYS,
                 split_qps: float = SPLIT_QPS,
                 merge_qps: float = MERGE_QPS,
                 merge_patience: int = MERGE_PATIENCE,
                 lease_share: float = LEASE_SHARE,
                 lease_cooldown_ms: float = LEASE_COOLDOWN_MS,
                 replica_moves: bool = True):
        super().__init__(cluster, liveness, interval_ms)
        # Load-aware allocator: prefer nodes with low leaseholder QPS,
        # breaking ties by replica count like the default signal.
        self.allocator = Allocator(cluster, load_fn=self._node_load)
        self.split_max_keys = split_max_keys
        self.split_qps = split_qps
        self.merge_qps = merge_qps
        self.merge_patience = merge_patience
        self.lease_share = lease_share
        self.lease_cooldown_ms = lease_cooldown_ms
        self.replica_moves = replica_moves
        #: span name -> (TableSpan, ZoneConfig)
        self._spans: Dict[str, Tuple[object, ZoneConfig]] = {}
        #: span name -> range_ids this queue manages on the span's behalf.
        self._span_ranges: Dict[str, Set[int]] = {}
        #: range_id -> consecutive scans at/below merge_qps.
        self._cold_scans: Dict[int, int] = {}
        #: range_id -> sim time of the last follow-the-workload move.
        self._last_lease_move: Dict[int, float] = {}

    # -- management --------------------------------------------------------

    def manage_span(self, span, config: ZoneConfig) -> None:
        """Manage every live range of an elastic span, present and future."""
        self._spans[span.name] = (span, config)
        self._span_ranges.setdefault(span.name, set())
        self._sync_span(span, config)

    def _sync_span(self, span, config: ZoneConfig) -> None:
        """Adopt new descriptors (splits) and drop merged-away ranges."""
        live = {d.range_id for d in span.descriptors}
        tracked = self._span_ranges[span.name]
        for descriptor in span.descriptors:
            if descriptor.range_id not in tracked:
                self.manage(descriptor.rng, config)
                tracked.add(descriptor.range_id)
        for range_id in sorted(tracked - live):
            tracked.discard(range_id)
            self._managed.pop(range_id, None)
            self._cold_scans.pop(range_id, None)
            self._last_lease_move.pop(range_id, None)

    # -- load signals ------------------------------------------------------

    def _node_load(self, node) -> tuple:
        """(leaseholder QPS, replica count): the follow-the-workload
        load signal fed to the allocator."""
        now = self.sim.now
        qps = 0.0
        for span, _config in self._spans.values():
            for descriptor in span.descriptors:
                if descriptor.rng.leaseholder_node_id == node.node_id:
                    qps += descriptor.load.qps(now)
        return (qps, len(node.replicas))

    def _range_keys(self, rng) -> List:
        try:
            store = rng.leaseholder_replica.store
        except RangeUnavailableError:
            return []
        return sorted(store.keys(), key=encode_key)

    def _counter(self, name: str, **labels):
        return self.metrics.registry.counter(name, **labels)

    def _quiet(self, rng) -> bool:
        """Safe to restructure: no repair chain or membership change in
        flight, and the range has a leaseholder to anchor the change."""
        return (rng.range_id not in self._busy
                and rng.group.config_guard.in_flight is None
                and rng.leaseholder_node_id is not None)

    # -- scanning ----------------------------------------------------------

    def scan(self) -> int:
        enqueued = super().scan()
        for name in sorted(self._spans):
            span, config = self._spans[name]
            self._sync_span(span, config)
            enqueued += self._rebalance_span(span, config)
        return enqueued

    def _rebalance_span(self, span, config: ZoneConfig) -> int:
        actions = 0
        now = self.sim.now
        for descriptor in list(span.descriptors):
            qps = descriptor.load.qps(now)
            self.metrics.registry.gauge(
                "range.qps", range=descriptor.rng.name).set(qps)
            if qps <= self.merge_qps:
                self._cold_scans[descriptor.range_id] = (
                    self._cold_scans.get(descriptor.range_id, 0) + 1)
            else:
                self._cold_scans[descriptor.range_id] = 0
            actions += self._maybe_split(span, config, descriptor, qps)
        actions += self._maybe_merge(span)
        if not config.lease_preferences:
            for descriptor in list(span.descriptors):
                actions += self._follow_workload(config, descriptor)
        return actions

    # -- splits ------------------------------------------------------------

    def _maybe_split(self, span, config: ZoneConfig, descriptor,
                     qps: float) -> int:
        rng = descriptor.rng
        if not self._quiet(rng):
            return 0
        split_key = None
        trigger = None
        keys = self._range_keys(rng)
        if len(keys) > self.split_max_keys:
            split_key, trigger = keys[len(keys) // 2], "size"
        elif qps >= self.split_qps:
            key = descriptor.load.split_key(self.sim.now)
            if key is not None:
                split_key, trigger = key, "load"
        if split_key is None or not descriptor.contains_key(split_key):
            return 0
        # Descriptor bounds are stored pre-encoded; splitting at the
        # start key would create an empty left half.
        if encode_key(split_key) <= descriptor.start_key:
            return 0
        try:
            child = self.cluster.keyspace.split(
                descriptor, split_key, trigger=trigger)
        except (ValueError, RangeUnavailableError):
            self._counter("rebalance.split_failures", trigger=trigger).inc()
            return 0
        self.manage(child.rng, config)
        self._span_ranges[span.name].add(child.range_id)
        self._counter("rebalance.splits", trigger=trigger).inc()
        return 1

    # -- merges ------------------------------------------------------------

    def _maybe_merge(self, span) -> int:
        """At most one merge per span per scan (descriptor list mutates)."""
        keyspace = self.cluster.keyspace
        descriptors = span.descriptors
        for left, right in zip(descriptors, descriptors[1:]):
            if (self._cold_scans.get(left.range_id, 0) < self.merge_patience
                    or self._cold_scans.get(right.range_id, 0)
                    < self.merge_patience):
                continue
            if not (self._quiet(left.rng) and self._quiet(right.rng)):
                continue
            combined = (len(self._range_keys(left.rng))
                        + len(self._range_keys(right.rng)))
            if combined > self.split_max_keys:
                continue
            if not keyspace.can_merge(left, right):
                continue
            right_id = right.range_id
            try:
                keyspace.merge(left, right)
            except (ValueError, RangeUnavailableError):
                self._counter("rebalance.merge_failures").inc()
                continue
            self._managed.pop(right_id, None)
            self._cold_scans.pop(right_id, None)
            self._counter("rebalance.merges").inc()
            return 1
        return 0

    # -- follow the workload -----------------------------------------------

    def _follow_workload(self, config: ZoneConfig, descriptor) -> int:
        rng = descriptor.rng
        if not self._quiet(rng):
            return 0
        region, share = descriptor.load.dominant_region(self.sim.now)
        if region is None or share < self.lease_share:
            return 0
        lh_peer = rng.group.peers.get(rng.leaseholder_node_id)
        if lh_peer is None or lh_peer.node.locality.region == region:
            return 0
        last = self._last_lease_move.get(rng.range_id)
        if last is not None and self.sim.now - last < self.lease_cooldown_ms:
            return 0
        candidates = [
            p for p in rng.group.voters()
            if p.node.locality.region == region
            and self._status(p.node) == LivenessStatus.LIVE
            and rng.group.log_complete(p)]
        if candidates:
            best = max(candidates, key=lambda p: (p.last_term, p.last_index,
                                                  -p.node.node_id))
            rng.transfer_lease(best.node.node_id)
            self._last_lease_move[rng.range_id] = self.sim.now
            self._counter("rebalance.lease_moves", region=region).inc()
            return 1
        if self.replica_moves:
            return self._maybe_move_replica(config, rng, region)
        return 0

    def _maybe_move_replica(self, config: ZoneConfig, rng,
                            region: str) -> int:
        """Relocate a surplus voter into the dominant region.

        Only fires when it provably keeps the zone config satisfied: the
        victim comes from a region holding strictly more live voters
        than its constraint requires, so constraint counts never drop
        below target, and the learner pipeline keeps quorum safe.
        """
        voters = rng.group.voters()
        by_region: Dict[str, List] = {}
        for peer in voters:
            by_region.setdefault(peer.node.locality.region, []).append(peer)
        victim = None
        for victim_region in sorted(
                by_region, key=lambda r: (-len(by_region[r]), r)):
            surplus = (len(by_region[victim_region])
                       - config.constraints.get(victim_region, 0))
            if victim_region == region or surplus <= 0:
                continue
            pool = [p for p in by_region[victim_region]
                    if p.node.node_id != rng.leaseholder_node_id
                    and self._status(p.node) == LivenessStatus.LIVE]
            if pool:
                victim = min(pool, key=lambda p: p.node.node_id)
                break
        if victim is None:
            return 0
        member_ids = set(rng.group.peers)
        targets = [n for n in self.cluster.nodes_in_region(region)
                   if n.node_id not in member_ids
                   and self.liveness.aggregate_status(n.node_id)
                   == LivenessStatus.LIVE]
        if not targets:
            return 0
        target = min(targets, key=lambda n: (self._node_load(n), n.node_id))
        self._busy.add(rng.range_id)
        self._last_lease_move[rng.range_id] = self.sim.now
        self.sim.spawn(
            self._move_replica(rng, victim.node.node_id, target, region),
            name=f"rebalance-{rng.name}")
        return 1

    def _move_replica(self, rng, victim_id: int, target,
                      region: str) -> Generator:
        try:
            yield from rng.add_replica_safely(target, ReplicaType.VOTER)
            rng.remove_replica_safely(victim_id)
        except (ConfigChangeError, ConfigurationError,
                RangeUnavailableError, NetworkUnavailableError):
            self._counter("rebalance.replica_move_failures").inc()
            return None
        finally:
            self._busy.discard(rng.range_id)
        self._counter("rebalance.replica_moves", region=region).inc()
        return None
