"""Replica repair: the replicate queue (paper §2.3, §4).

The paper's survivability goals are *continuously maintained*: when a
store dies, the replica allocator notices (via store liveness) and
re-replicates the lost replicas onto constraint-satisfying,
diversity-maximizing survivors.  This module is the reproduction's
version of CockroachDB's replicate queue:

* every ``interval_ms`` it scans the ranges under management,
* diffs each range's placement against its zone config and the
  cluster-level liveness view, and
* enqueues prioritized repair actions, executed strictly one at a time
  per range through the safe membership pipeline
  (:meth:`repro.kv.range.Range.add_replica_safely` — learner join,
  leader-driven snapshot, catch-up, promote).

Priorities follow CRDB's allocator: get the lease off a dying
leaseholder first (so the range stays available *during* repair), then
restore the voter set, then non-voters, then cosmetic placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from ..cluster.liveness import LivenessStatus, StoreLiveness
from ..errors import ConfigurationError, RangeUnavailableError
from ..obs import MetricsRegistry
from ..raft.group import ReplicaType
from ..raft.membership import ConfigChangeError
from ..sim.network import NetworkUnavailableError
from .allocator import Allocator
from .zoneconfig import ZoneConfig

__all__ = [
    "RepairAction",
    "RepairActionKind",
    "RepairMetrics",
    "ReplicateQueue",
    "placement_violations",
]


class RepairActionKind:
    """Action kinds, listed in descending priority."""

    TRANSFER_LEASE = "transfer_lease"            # off a SUSPECT/DEAD holder
    REPLACE_DEAD_VOTER = "replace_dead_voter"
    UP_REPLICATE = "up_replicate"                # voter deficit, none dead
    REPLACE_DEAD_NON_VOTER = "replace_dead_non_voter"
    DOWN_REPLICATE = "down_replicate"            # stale/excess replica
    RESTORE_LEASE_PREFERENCE = "restore_lease_preference"


#: kind -> priority (lower runs first).
ACTION_PRIORITY: Dict[str, int] = {
    RepairActionKind.TRANSFER_LEASE: 0,
    RepairActionKind.REPLACE_DEAD_VOTER: 1,
    RepairActionKind.UP_REPLICATE: 2,
    RepairActionKind.REPLACE_DEAD_NON_VOTER: 3,
    RepairActionKind.DOWN_REPLICATE: 4,
    RepairActionKind.RESTORE_LEASE_PREFERENCE: 5,
}


@dataclass
class RepairAction:
    kind: str
    range_id: int
    #: The replica being replaced/removed, or the lease-transfer target.
    node_id: Optional[int] = None

    @property
    def priority(self) -> int:
        return ACTION_PRIORITY[self.kind]


class RepairMetrics:
    """Observability for the repair subsystem.

    A view over ``repair.*`` instruments on the shared metrics registry
    (per-kind action/failure counters, an under-replication gauge, a
    time-to-repair histogram, a scan counter).  The original dict/list
    attribute interface is preserved as properties so existing tests and
    harness reporting keep working.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = (registry if registry is not None
                         else MetricsRegistry())

    def _by_kind(self, name: str) -> Dict[str, int]:
        return {dict(inst.labels)["kind"]: int(inst.value)
                for inst in self.registry.instruments(name=name)}

    #: kind -> successfully completed actions.
    @property
    def actions(self) -> Dict[str, int]:
        return self._by_kind("repair.actions")

    #: kind -> failed attempts (retried on a later scan).
    @property
    def failures(self) -> Dict[str, int]:
        return self._by_kind("repair.failures")

    @property
    def scans(self) -> int:
        return int(self.registry.counter("repair.scans").value)

    @scans.setter
    def scans(self, value: int) -> None:
        counter = self.registry.counter("repair.scans")
        counter.inc(value - counter.value)

    #: Gauge: ranges whose live voter count is below target (last scan).
    @property
    def under_replicated_ranges(self) -> int:
        return int(self.registry.gauge("repair.under_replicated_ranges").value)

    @under_replicated_ranges.setter
    def under_replicated_ranges(self, value: int) -> None:
        self.registry.gauge("repair.under_replicated_ranges").set(value)

    #: Per-range ms from first-broken scan to the scan that found it
    #: healthy again (the time-to-repair histogram's samples).
    @property
    def time_to_repair_ms(self) -> List[float]:
        return list(self.registry.histogram("repair.time_to_repair_ms").samples)

    def record_time_to_repair(self, ms: float) -> None:
        self.registry.histogram("repair.time_to_repair_ms").observe(ms)

    def record_action(self, kind: str) -> None:
        self.registry.counter("repair.actions", kind=kind).inc()

    def record_failure(self, kind: str) -> None:
        self.registry.counter("repair.failures", kind=kind).inc()

    def total_actions(self) -> int:
        return sum(self.actions.values())

    def snapshot(self) -> Dict[str, object]:
        return {
            "actions": dict(self.actions),
            "failures": dict(self.failures),
            "under_replicated_ranges": self.under_replicated_ranges,
            "time_to_repair_ms": list(self.time_to_repair_ms),
            "scans": self.scans,
        }


def placement_violations(rng, config: ZoneConfig, cluster,
                         liveness: Optional[StoreLiveness] = None
                         ) -> List[str]:
    """Audit a range's placement against its zone config.

    Constraints whose region no longer has any usable node are skipped —
    after a permanent region loss they are unsatisfiable, and the repair
    goal becomes "fully replicated on the survivors".
    """
    def usable(node) -> bool:
        if not node.alive or cluster.network.node_is_dead(node.node_id):
            return False
        if liveness is not None:
            return (liveness.aggregate_status(node.node_id)
                    != LivenessStatus.DEAD)
        return True

    violations: List[str] = []
    voters = rng.group.voters()
    non_voters = rng.group.non_voters()

    for peer in voters + non_voters:
        if not usable(peer.node):
            violations.append(
                f"{rng.name}: replica on unusable node n{peer.node.node_id}")

    if len(voters) != config.num_voters:
        violations.append(
            f"{rng.name}: {len(voters)} voters, want {config.num_voters}")
    total = len(voters) + len(non_voters)
    usable_regions = {n.locality.region for n in cluster.nodes if usable(n)}
    # Replica slots homed in lost regions cannot be filled; the
    # achievable total shrinks by the unsatisfiable per-region counts.
    lost_slots = sum(count for region, count in config.constraints.items()
                     if region not in usable_regions)
    want_total = max(config.num_voters, config.num_replicas - lost_slots)
    if total != want_total:
        violations.append(
            f"{rng.name}: {total} replicas, want {want_total}")

    by_region: Dict[str, List] = {}
    for peer in voters + non_voters:
        by_region.setdefault(peer.node.locality.region, []).append(peer)
    for region, want in sorted(config.constraints.items()):
        if region not in usable_regions:
            continue
        have = len(by_region.get(region, []))
        if have < want:
            violations.append(
                f"{rng.name}: region {region} has {have} replicas, "
                f"constraint wants {want}")

    # Diversity: within a region, two replicas may share a zone only if
    # no other zone of that region has a free usable node.
    member_ids = {p.node.node_id for p in voters + non_voters}
    for region, peers in sorted(by_region.items()):
        zones: Dict[str, int] = {}
        for peer in peers:
            zones[peer.node.locality.zone] = (
                zones.get(peer.node.locality.zone, 0) + 1)
        crowded = any(count > 1 for count in zones.values())
        if crowded:
            free_zones = {
                n.locality.zone for n in cluster.nodes
                if usable(n) and n.locality.region == region
                and n.node_id not in member_ids
                and n.locality.zone not in zones}
            if free_zones:
                violations.append(
                    f"{rng.name}: region {region} stacks replicas in one "
                    f"zone while zones {sorted(free_zones)} are free")

    lh_id = rng.leaseholder_node_id
    if lh_id is None:
        violations.append(f"{rng.name}: no leaseholder")
    else:
        lh_peer = rng.group.peers.get(lh_id)
        if lh_peer is None or lh_peer.replica_type != ReplicaType.VOTER:
            violations.append(
                f"{rng.name}: leaseholder n{lh_id} is not a voter")
        elif not usable(lh_peer.node):
            violations.append(
                f"{rng.name}: leaseholder n{lh_id} is unusable")
        else:
            for region in config.lease_preferences:
                if region not in usable_regions:
                    continue
                if lh_peer.node.locality.region != region and any(
                        p.node.locality.region == region and usable(p.node)
                        for p in voters):
                    violations.append(
                        f"{rng.name}: lease on n{lh_id} "
                        f"({lh_peer.node.locality.region}) despite live "
                        f"voter in preferred region {region}")
                break
    return violations


class ReplicateQueue:
    """Periodic placement repair for a set of managed ranges."""

    #: Default scan cadence (CRDB's replicate queue is timer-driven too).
    INTERVAL_MS = 250.0

    def __init__(self, cluster, liveness: StoreLiveness,
                 interval_ms: float = INTERVAL_MS):
        self.cluster = cluster
        self.sim = cluster.sim
        self.liveness = liveness
        self.interval_ms = interval_ms
        self.metrics = RepairMetrics(cluster.sim.obs.registry)
        self.allocator = Allocator(cluster)
        #: range_id -> (Range, ZoneConfig)
        self._managed: Dict[int, Tuple[object, ZoneConfig]] = {}
        #: Ranges with an in-flight repair chain (no overlapping repairs).
        self._busy: set = set()
        #: range_id -> sim time the range was first found broken.
        self._broken_since: Dict[int, float] = {}
        self._started = False
        self._stopped = False

    def manage(self, rng, config: ZoneConfig) -> None:
        self._managed[rng.range_id] = (rng, config)

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.liveness.start()

        def loop() -> Generator:
            while not self._stopped:
                yield self.sim.sleep(self.interval_ms)
                self.scan()

        self.sim.spawn(loop(), name="replicate-queue")

    def stop(self) -> None:
        self._stopped = True

    # -- scanning ----------------------------------------------------------

    def scan(self) -> int:
        """One pass over every managed range; returns actions enqueued."""
        self.metrics.scans += 1
        enqueued = 0
        under_replicated = 0
        for range_id, (rng, config) in sorted(self._managed.items()):
            live_voters = sum(
                1 for p in rng.group.voters() if self._status(p.node)
                != LivenessStatus.DEAD)
            if live_voters < config.num_voters:
                under_replicated += 1
            if range_id in self._busy:
                continue
            actions = self.plan(rng, config)
            if not actions:
                broken_at = self._broken_since.pop(range_id, None)
                if broken_at is not None:
                    self.metrics.record_time_to_repair(
                        self.sim.now - broken_at)
                continue
            self._broken_since.setdefault(range_id, self.sim.now)
            enqueued += len(actions)
            self._busy.add(range_id)
            self.sim.spawn(self._repair_range(rng, config, actions),
                           name=f"repair-{rng.name}")
        self.metrics.under_replicated_ranges = under_replicated
        return enqueued

    def _status(self, node) -> str:
        if not node.alive:
            return LivenessStatus.DEAD
        return self.liveness.aggregate_status(node.node_id)

    def plan(self, rng, config: ZoneConfig) -> List[RepairAction]:
        """Diff one range's placement against config + liveness."""
        actions: List[RepairAction] = []
        voters = rng.group.voters()
        non_voters = rng.group.non_voters()
        status = {p.node.node_id: self._status(p.node)
                  for p in voters + non_voters}

        lh_id = rng.leaseholder_node_id
        if lh_id is not None and status.get(lh_id) != LivenessStatus.LIVE:
            actions.append(RepairAction(
                RepairActionKind.TRANSFER_LEASE, rng.range_id))

        dead_voters = [p for p in voters
                       if status[p.node.node_id] == LivenessStatus.DEAD]
        for peer in sorted(dead_voters, key=lambda p: p.node.node_id):
            actions.append(RepairAction(
                RepairActionKind.REPLACE_DEAD_VOTER, rng.range_id,
                peer.node.node_id))
        if not dead_voters and len(voters) < config.num_voters:
            for _ in range(config.num_voters - len(voters)):
                actions.append(RepairAction(
                    RepairActionKind.UP_REPLICATE, rng.range_id))

        dead_non_voters = [p for p in non_voters
                           if status[p.node.node_id] == LivenessStatus.DEAD]
        for peer in sorted(dead_non_voters, key=lambda p: p.node.node_id):
            actions.append(RepairAction(
                RepairActionKind.REPLACE_DEAD_NON_VOTER, rng.range_id,
                peer.node.node_id))

        if not dead_voters and len(voters) > config.num_voters:
            victim = self._down_replicate_victim(rng, voters, status)
            if victim is not None:
                actions.append(RepairAction(
                    RepairActionKind.DOWN_REPLICATE, rng.range_id, victim))

        if (lh_id is not None and status.get(lh_id) == LivenessStatus.LIVE
                and not dead_voters):
            target = self._lease_preference_target(rng, config, status)
            if target is not None:
                actions.append(RepairAction(
                    RepairActionKind.RESTORE_LEASE_PREFERENCE,
                    rng.range_id, target))

        actions.sort(key=lambda a: (a.priority, a.node_id or 0))
        return actions

    def _down_replicate_victim(self, rng, voters, status) -> Optional[int]:
        """Pick the most redundant live voter to shed (never the lease)."""
        candidates = [p for p in voters
                      if p.node.node_id != rng.leaseholder_node_id
                      and status[p.node.node_id] == LivenessStatus.LIVE]
        if not candidates:
            return None

        def redundancy(peer) -> tuple:
            others = [p for p in voters if p is not peer]
            diversity = sum(peer.node.locality.diversity_from(
                o.node.locality) for o in others)
            # Least diverse (most redundant) first; stable by node id.
            return (diversity, peer.node.node_id)

        return min(candidates, key=redundancy).node.node_id

    def _lease_preference_target(self, rng, config: ZoneConfig,
                                 status) -> Optional[int]:
        lh_peer = rng.group.peers.get(rng.leaseholder_node_id)
        for region in config.lease_preferences:
            in_region = [
                p for p in rng.group.voters()
                if p.node.locality.region == region
                and status.get(p.node.node_id) == LivenessStatus.LIVE
                and rng.group.log_complete(p)]
            if lh_peer is not None and lh_peer.node.locality.region == region:
                return None  # already satisfied
            if in_region:
                best = max(in_region,
                           key=lambda p: (p.last_term, p.last_index,
                                          -p.node.node_id))
                return best.node.node_id
            if any(self._status(n) != LivenessStatus.DEAD
                   for n in self.cluster.nodes
                   if n.locality.region == region):
                return None  # region alive but no eligible voter yet
        return None

    # -- execution ---------------------------------------------------------

    def _repair_range(self, rng, config: ZoneConfig,
                      actions: List[RepairAction]) -> Generator:
        try:
            for action in actions:
                try:
                    yield from self._execute(rng, config, action)
                except (ConfigChangeError, ConfigurationError,
                        RangeUnavailableError, NetworkUnavailableError):
                    # Best-effort: count it, drop the rest of this
                    # chain, and let the next scan re-plan from the
                    # range's current state.
                    self.metrics.record_failure(action.kind)
                    return None
                self.metrics.record_action(action.kind)
        finally:
            self._busy.discard(rng.range_id)
        return None

    def _execute(self, rng, config: ZoneConfig,
                 action: RepairAction) -> Generator:
        if action.kind == RepairActionKind.TRANSFER_LEASE:
            lh_id = rng.leaseholder_node_id
            if lh_id is None or self.cluster.network.node_is_dead(lh_id):
                # Dead holder: non-cooperative failover among survivors.
                if not rng.maybe_failover(force=True):
                    raise RangeUnavailableError(
                        f"{rng.name}: no eligible lease target")
            else:
                # SUSPECT holder, still reachable: cooperative handoff
                # to the best live, log-complete voter.
                candidates = [
                    p for p in rng.group.voters()
                    if p.node.node_id != lh_id
                    and self._status(p.node) == LivenessStatus.LIVE
                    and rng.group.log_complete(p)]
                if not candidates:
                    raise RangeUnavailableError(
                        f"{rng.name}: no live voter to take the lease")
                preferred = [p for p in candidates
                             if p.node.locality.region
                             in config.lease_preferences]
                pool = preferred or candidates
                best = max(pool, key=lambda p: (p.last_term, p.last_index,
                                                -p.node.node_id))
                rng.transfer_lease(best.node.node_id)
        elif action.kind in (RepairActionKind.REPLACE_DEAD_VOTER,
                             RepairActionKind.UP_REPLICATE,
                             RepairActionKind.REPLACE_DEAD_NON_VOTER):
            replica_type = (
                ReplicaType.NON_VOTER
                if action.kind == RepairActionKind.REPLACE_DEAD_NON_VOTER
                else ReplicaType.VOTER)
            candidate = self._pick_candidate(rng, config)
            if candidate is None:
                raise ConfigurationError(
                    f"{rng.name}: no eligible node for {action.kind}")
            yield from rng.add_replica_safely(candidate, replica_type)
            if action.node_id is not None:
                rng.remove_replica_safely(action.node_id)
        elif action.kind == RepairActionKind.DOWN_REPLICATE:
            rng.remove_replica_safely(action.node_id)
        elif action.kind == RepairActionKind.RESTORE_LEASE_PREFERENCE:
            rng.transfer_lease(action.node_id)
        else:  # pragma: no cover - planner only emits known kinds
            raise ConfigurationError(f"unknown repair action {action.kind}")
        return None

    def _pick_candidate(self, rng, config: ZoneConfig):
        surviving = [p.node for p in rng.group.peers.values()
                     if self._status(p.node) != LivenessStatus.DEAD]
        member_ids = list(rng.group.peers)
        return self.allocator.pick_addition(
            config, surviving, exclude_ids=member_ids,
            live_filter=lambda n: (
                self.liveness.aggregate_status(n.node_id)
                == LivenessStatus.LIVE))
