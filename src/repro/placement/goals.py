"""Survivability goals and the automatic zone-config translation (§3.3).

The home region of a table/partition is where all its leaseholders live.
Given the home region, the database regions, and the survivability goal,
this module emits the zone configuration the paper describes:

* **ZONE survivability** (§3.3.2): 3 voters, all in the home region
  (spread across zones), plus one non-voting replica in every other
  region for follower reads.  ``PLACEMENT RESTRICTED`` (§3.3.4) drops
  the non-voters for domiciling.
* **REGION survivability** (§3.3.3): 5 voters with 2 in the home region,
  and ``max(2 + (N - 1), num_voters)`` total replicas with at least one
  replica in every region.
"""

from __future__ import annotations

from typing import Iterable, List

from ..errors import ConfigurationError
from .zoneconfig import ZoneConfig

__all__ = ["SurvivalGoal", "zone_config_for_home",
           "REGION_SURVIVAL_MIN_REGIONS"]

#: REGION survivability requires at least this many database regions.
REGION_SURVIVAL_MIN_REGIONS = 3


class SurvivalGoal:
    ZONE = "zone"
    REGION = "region"


def zone_config_for_home(home_region: str, db_regions: Iterable[str],
                         goal: str = SurvivalGoal.ZONE,
                         placement_restricted: bool = False) -> ZoneConfig:
    """The automatic zone config for a table/partition homed in
    ``home_region`` (paper §3.3)."""
    regions: List[str] = list(db_regions)
    if home_region not in regions:
        raise ConfigurationError(
            f"home region {home_region!r} is not a database region")
    others = [r for r in regions if r != home_region]

    if goal == SurvivalGoal.ZONE:
        num_voters = 3
        if placement_restricted:
            num_replicas = num_voters
            constraints = {home_region: num_replicas}
        else:
            # One non-voter per non-home region for local stale reads.
            num_replicas = num_voters + len(others)
            constraints = {home_region: num_voters}
            constraints.update({r: 1 for r in others})
        return ZoneConfig(
            num_replicas=num_replicas,
            num_voters=num_voters,
            constraints=constraints,
            voter_constraints={home_region: num_voters},
            lease_preferences=[home_region],
        )

    if goal == SurvivalGoal.REGION:
        if placement_restricted:
            raise ConfigurationError(
                "PLACEMENT RESTRICTED cannot be combined with REGION "
                "survivability (paper §3.3.4)")
        if len(regions) < REGION_SURVIVAL_MIN_REGIONS:
            raise ConfigurationError(
                "REGION survivability requires at least "
                f"{REGION_SURVIVAL_MIN_REGIONS} regions, have {len(regions)}")
        num_voters = 5
        # max(2 + (N - 1), num_voters) replicas, >= 1 in each region.
        num_replicas = max(2 + len(others), num_voters)
        constraints = {home_region: 2}
        constraints.update({r: 1 for r in others})
        return ZoneConfig(
            num_replicas=num_replicas,
            num_voters=num_voters,
            constraints=constraints,
            voter_constraints={home_region: 2},
            lease_preferences=[home_region],
        )

    raise ConfigurationError(f"unknown survivability goal {goal!r}")
