"""Placement: zone configs, survivability goals, allocator, provisioning."""

from .allocator import Allocator, Placement
from .goals import (
    REGION_SURVIVAL_MIN_REGIONS,
    SurvivalGoal,
    zone_config_for_home,
)
from .provision import provision_range, reconfigure_range
from .rebalance import RebalanceQueue
from .repair import (
    RepairAction,
    RepairActionKind,
    RepairMetrics,
    ReplicateQueue,
    placement_violations,
)
from .zoneconfig import ZoneConfig

__all__ = [
    "Allocator",
    "Placement",
    "REGION_SURVIVAL_MIN_REGIONS",
    "RepairAction",
    "RepairActionKind",
    "RepairMetrics",
    "RebalanceQueue",
    "ReplicateQueue",
    "SurvivalGoal",
    "placement_violations",
    "zone_config_for_home",
    "provision_range",
    "reconfigure_range",
    "ZoneConfig",
]
