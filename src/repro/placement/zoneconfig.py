"""Zone configurations (paper §3.2, Listing 1).

A zone configuration pins the number and placement of voting and
non-voting replicas for a schema object, plus a lease preference.  Users
could always write these by hand; the multi-region abstractions generate
them automatically (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ConfigurationError

__all__ = ["ZoneConfig"]


@dataclass(frozen=True)
class ZoneConfig:
    """Replica count/placement constraints for one schema object.

    ``constraints`` and ``voter_constraints`` map region name to a fixed
    replica count in that region; replicas not covered by constraints may
    be placed anywhere (the allocator maximizes diversity).
    ``lease_preferences`` lists regions allowed to hold the lease, in
    preference order.
    """

    num_replicas: int
    num_voters: int
    constraints: Dict[str, int] = field(default_factory=dict)
    voter_constraints: Dict[str, int] = field(default_factory=dict)
    lease_preferences: List[str] = field(default_factory=list)

    def __post_init__(self):
        if self.num_voters < 1:
            raise ConfigurationError("need at least one voter")
        if self.num_replicas < self.num_voters:
            raise ConfigurationError(
                "num_replicas must be >= num_voters "
                f"({self.num_replicas} < {self.num_voters})")
        if sum(self.voter_constraints.values()) > self.num_voters:
            raise ConfigurationError("voter constraints exceed num_voters")
        if sum(self.constraints.values()) > self.num_replicas:
            raise ConfigurationError("constraints exceed num_replicas")

    @property
    def num_non_voters(self) -> int:
        return self.num_replicas - self.num_voters
