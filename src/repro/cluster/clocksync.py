"""Clock-safety monitoring and self-fencing (CRDB-style).

The uncertainty/commit-wait machinery is only correct while every pair
of clocks differs by at most ``max_clock_offset``.  CockroachDB does
not take that on faith: every node measures its offset from its peers
using timestamps piggybacked on RPCs it is already exchanging, and a
node that finds itself outside the bound **crashes itself** rather than
risk serving inconsistent reads.  This module reproduces that defense
on the simulated substrate:

* :class:`ClockMonitor` collects clock readings piggybacked on store
  liveness heartbeats and Raft messages (no extra network traffic), and
  maintains a per-(observer, peer) offset estimate corrected for the
  link's nominal one-way latency.
* When a node's own measurements show it beyond
  ``fence_threshold_fraction x max_clock_offset`` against a majority of
  the peers it has heard from, it **self-fences**: it stops serving,
  drops its leases, and takes itself down so store liveness walks it to
  DEAD and the replicate queue repairs around it.
* Independently of the (asynchronous) fencing loop, replicas consult
  :meth:`check_request` on every serve: a *non-synthetic* request
  timestamp further ahead of the local clock than any in-contract
  sender could produce is rejected outright — the synchronous backstop
  that closes the detection window between a clock jump and the fence.

Both defenses are off by default (``cluster.clock_monitor is None``);
the fencing-disabled ablation installs the monitor with
``fence_enabled=False`` so offsets are still measured and exported but
nothing intervenes — letting the verify checker demonstrate the real
anomalies an undefended beyond-bound clock causes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ClockFencedError, ClockOutlierRejectedError
from ..kv.closedts import closed_ts_within_contract

__all__ = ["ClockMonitor", "install_clock_monitor"]


class ClockMonitor:
    """Measures peer clock offsets and fences outlier nodes.

    One monitor serves the whole cluster but keeps strictly per-observer
    state: node A's estimate of node B's clock is only ever derived from
    messages A itself received, so a partitioned or dead observer's view
    goes stale exactly like its liveness view does.
    """

    #: Fence when measured offset exceeds this fraction of the bound
    #: (CRDB fences at 80% of max-offset to act before correctness is
    #: actually at risk).
    FENCE_THRESHOLD_FRACTION = 0.8
    #: Extra allowance on the synchronous request-timestamp check, over
    #: ``max_offset``: covers one-way flight time plus jitter so no
    #: in-contract sender can ever be rejected.
    REQUEST_SLACK_MS = 200.0
    #: An observer needs at least this many peer measurements before its
    #: majority vote can fence it (a single bad link must not kill a
    #: healthy node).
    MIN_PEERS = 2

    def __init__(self, cluster, fence_enabled: bool = True,
                 fence_threshold_fraction: float = FENCE_THRESHOLD_FRACTION,
                 request_slack_ms: float = REQUEST_SLACK_MS,
                 min_peers: int = MIN_PEERS):
        self.cluster = cluster
        self.sim = cluster.sim
        self.network = cluster.network
        self.max_offset = cluster.max_clock_offset
        self.fence_enabled = fence_enabled
        self.fence_threshold_ms = (
            self.max_offset * fence_threshold_fraction)
        self.request_slack_ms = request_slack_ms
        self.min_peers = min_peers
        #: observer node_id -> peer node_id -> latest offset estimate
        #: (positive: the peer's clock is ahead of the observer's).
        self._estimates: Dict[int, Dict[int, float]] = {}
        #: Cached nominal one-way latency per (src, dst) node pair.
        self._expected_flight: Dict[Tuple[int, int], float] = {}
        #: (sim_ms, node_id, worst_measured_offset_ms) per fence.
        self.fence_events: List[Tuple[float, int, float]] = []
        #: (sim_ms, node_id, worst_measured_offset_ms) per detection —
        #: recorded even when fencing is disabled (the ablation's
        #: "we saw it and did nothing" evidence).
        self.outlier_detections: List[Tuple[float, int, float]] = []
        registry = self.sim.obs.registry
        self._registry = registry
        self._c_observations = registry.counter("clock.observations")
        self._c_rejected = registry.counter("clock.requests_rejected")
        self._gauges: Dict[int, object] = {}
        self.network.on_node_restart(self._on_restart)

    # -- measurement --------------------------------------------------------

    def _flight_ms(self, src_id: int, dst_id: int) -> float:
        cached = self._expected_flight.get((src_id, dst_id))
        if cached is None:
            src = self.cluster.node_by_id(src_id)
            dst = self.cluster.node_by_id(dst_id)
            latency = self.network.latency
            cached = (latency.rtt(src.locality.region, src.locality.zone,
                                  dst.locality.region, dst.locality.zone)
                      / 2.0 + self.network.PROCESSING_MS)
            self._expected_flight[(src_id, dst_id)] = cached
        return cached

    def observe(self, observer_id: int, peer_id: int,
                remote_physical: float) -> None:
        """Fold in a clock reading piggybacked on a delivered message.

        ``remote_physical`` is the sender's physical clock captured when
        the message was sent; the observer corrects for the link's
        nominal one-way latency and compares against its own clock.
        Jitter and queueing make the estimate honestly noisy — a few ms
        against a 250 ms bound.
        """
        try:
            observer = self.cluster.node_by_id(observer_id)
        except KeyError:
            return
        if not observer.alive or self.network.node_is_dead(observer_id):
            return
        local = observer.clock.physical_now()
        estimate = (remote_physical + self._flight_ms(peer_id, observer_id)
                    - local)
        self._c_observations.inc()
        peers = self._estimates.setdefault(observer_id, {})
        peers[peer_id] = estimate
        worst = max(abs(v) for v in peers.values())
        gauge = self._gauges.get(observer_id)
        if gauge is None:
            gauge = self._gauges[observer_id] = self._registry.gauge(
                "clock.offset_measured", node=observer_id)
        gauge.set(round(worst, 3))
        self._evaluate(observer, peers, worst)

    def wrap(self, src_node, dst_node, callback):
        """Piggyback a clock reading on a fire-and-forget message.

        Returns a delivery callback that first reports ``src_node``'s
        clock (captured *now*, at send time) to the destination's
        monitor view, then runs the original callback.  Used by Raft
        senders, which already have a callback-per-message shape.
        """
        sent_physical = src_node.clock.physical_now()
        observer_id = dst_node.node_id
        peer_id = src_node.node_id

        def deliver() -> None:
            self.observe(observer_id, peer_id, sent_physical)
            callback()

        return deliver

    def estimate(self, observer_id: int, peer_id: int) -> Optional[float]:
        return self._estimates.get(observer_id, {}).get(peer_id)

    # -- fencing ------------------------------------------------------------

    def _evaluate(self, observer, peers: Dict[int, float],
                  worst: float) -> None:
        """Self-fence check from the observer's own measurements.

        A node whose clock is the outlier sees *every* peer as offset by
        roughly the same amount; a healthy node sees at most the one bad
        peer.  Majority vote over measured peers separates the two."""
        if observer.fenced or len(peers) < self.min_peers:
            return
        threshold = self.fence_threshold_ms
        bad = sum(1 for v in peers.values() if abs(v) > threshold)
        if bad <= len(peers) // 2:
            return
        self.outlier_detections.append(
            (self.sim.now, observer.node_id, worst))
        self._registry.counter("clock.outliers_detected",
                               node=observer.node_id).inc()
        if self.fence_enabled:
            self.fence(observer, worst)

    def fence(self, node, worst_ms: float) -> None:
        """Take the node out: stop serving, drop leases, go dark.

        Mirrors CRDB crashing a clock-outlier node.  The crash stops
        the node's heartbeats, so store liveness walks it SUSPECT→DEAD
        and the replicate queue (when running) repairs around it."""
        if node.fenced:
            return
        node.fenced = True
        self.fence_events.append((self.sim.now, node.node_id, worst_ms))
        self._registry.counter("clock.fence", node=node.node_id).inc()
        # Ranges whose lease the fenced node holds: fail them over to a
        # surviving voter once the node is down (a CRDB crash lets the
        # lease expire; the sim moves it eagerly and deterministically).
        lease_ranges = [replica.range for replica in node.replicas.values()
                        if replica.range.leaseholder_node_id == node.node_id]
        self.cluster.crash_node(node.node_id)
        for rng in lease_ranges:
            rng.maybe_failover()

    # -- synchronous serve-side check ---------------------------------------

    def check_request(self, node, ts) -> None:
        """Replica-side guard run before serving a request at ``ts``.

        Fenced nodes refuse everything.  Beyond that, a *non-synthetic*
        timestamp promises some clock has reached it; if it is further
        ahead of this node's clock than ``max_offset`` plus flight
        slack, the sender's clock is provably out of contract and the
        request is rejected before it can corrupt the MVCC timeline.
        Synthetic timestamps (GLOBAL-table future writes, lead closed
        timestamps) make no such promise and are exempt.
        """
        if node.fenced:
            raise ClockFencedError(node.node_id)
        if not self.fence_enabled or ts.synthetic:
            return
        local = node.clock.physical_now()
        if ts.physical > local + self.max_offset + self.request_slack_ms:
            self._c_rejected.inc()
            raise ClockOutlierRejectedError(node.node_id, ts.physical, local)

    def accepts_closed_ts(self, node, closed_ts) -> bool:
        """Follower-side guard on incoming closed timestamps: refuse
        non-synthetic targets only an out-of-contract leaseholder clock
        could have produced (see
        :func:`repro.kv.closedts.closed_ts_within_contract`)."""
        if not self.fence_enabled:
            return True
        if closed_ts_within_contract(closed_ts, node.clock.physical_now(),
                                     self.max_offset,
                                     self.request_slack_ms):
            return True
        self._registry.counter("clock.closed_ts_rejected",
                               node=node.node_id).inc()
        return False

    # -- lifecycle ----------------------------------------------------------

    def _on_restart(self, node_id: int) -> None:
        """A restarted node rejoins unfenced with a fresh view (its
        process restarted; NTP is presumed to have step-synced it —
        nemesis schedules that restart a node without healing its clock
        will simply re-fence it)."""
        try:
            node = self.cluster.node_by_id(node_id)
        except KeyError:
            return
        node.fenced = False
        self._estimates.pop(node_id, None)
        for peers in self._estimates.values():
            peers.pop(node_id, None)


def install_clock_monitor(cluster, **kwargs) -> ClockMonitor:
    """Create a :class:`ClockMonitor` and wire it into the cluster and
    network so liveness heartbeats and Raft messages start piggybacking
    clock readings.  Idempotent per cluster attribute."""
    monitor = ClockMonitor(cluster, **kwargs)
    cluster.clock_monitor = monitor
    cluster.network.clock_monitor = monitor
    return monitor
