"""Cluster topology: localities, nodes, membership, store liveness,
and clock safety."""

from .clocksync import ClockMonitor, install_clock_monitor
from .liveness import LivenessStatus, StoreLiveness
from .locality import Locality
from .node import Node
from .topology import Cluster, standard_cluster

__all__ = [
    "ClockMonitor",
    "Cluster",
    "LivenessStatus",
    "Locality",
    "Node",
    "StoreLiveness",
    "install_clock_monitor",
    "standard_cluster",
]
