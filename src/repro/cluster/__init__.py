"""Cluster topology: localities, nodes, and cluster membership."""

from .locality import Locality
from .node import Node
from .topology import Cluster, standard_cluster

__all__ = ["Locality", "Node", "Cluster", "standard_cluster"]
