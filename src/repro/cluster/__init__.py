"""Cluster topology: localities, nodes, membership, and store liveness."""

from .liveness import LivenessStatus, StoreLiveness
from .locality import Locality
from .node import Node
from .topology import Cluster, standard_cluster

__all__ = [
    "Cluster",
    "LivenessStatus",
    "Locality",
    "Node",
    "StoreLiveness",
    "standard_cluster",
]
