"""A database node: an HLC, a locality, and the stores living on it."""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from ..sim.clock import HLC, ClockModel
from ..sim.core import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..kv.replica import Replica

__all__ = ["Node"]


class Node:
    """One simulated ``cockroach`` process.

    Nodes host :class:`~repro.kv.replica.Replica` objects (one per Range
    the node participates in) and act as SQL gateways for clients in
    their region.
    """

    def __init__(self, sim: Simulator, node_id: int, locality,
                 skew: Optional[ClockModel] = None):
        self.sim = sim
        self.node_id = node_id
        self.locality = locality
        self.clock = HLC(sim, node_id, skew)
        #: range_id -> Replica hosted on this node.
        self.replicas: Dict[int, "Replica"] = {}
        self.alive = True
        #: Set by the clock-safety monitor when this node detects its
        #: own clock is beyond the tolerated bound: the node stops
        #: serving and takes itself down rather than serve wrong answers.
        self.fenced = False

    def add_replica(self, replica: "Replica") -> None:
        self.replicas[replica.range_id] = replica

    def remove_replica(self, range_id: int) -> None:
        self.replicas.pop(range_id, None)

    def replica_for(self, range_id: int) -> Optional["Replica"]:
        return self.replicas.get(range_id)

    def __repr__(self) -> str:
        return f"Node({self.node_id}, {self.locality})"
