"""Localities: the (region, zone) tags assigned to every node.

Mirrors CockroachDB's ``--locality=region=...,zone=...`` startup flag
(paper §2.1).  Localities form a two-level hierarchy used both for
latency modelling and for the allocator's diversity score.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Locality"]


@dataclass(frozen=True)
class Locality:
    """A node's position in the region/zone hierarchy."""

    region: str
    zone: str

    @classmethod
    def parse(cls, flag: str) -> "Locality":
        """Parse the CLI-style flag, e.g. ``region=us-east1,zone=us-east1b``."""
        parts = {}
        for item in flag.split(","):
            key, _, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            if not key or not value:
                raise ValueError(f"malformed locality flag: {flag!r}")
            parts[key] = value
        if "region" not in parts:
            raise ValueError(f"locality flag missing region: {flag!r}")
        return cls(region=parts["region"], zone=parts.get("zone", parts["region"]))

    def diversity_from(self, other: "Locality") -> float:
        """How different two localities are, for replica spreading.

        1.0 for different regions, 0.5 for different zones in the same
        region, 0.0 for the same zone.  The allocator prefers candidates
        maximizing total diversity against already-placed replicas.
        """
        if self.region != other.region:
            return 1.0
        if self.zone != other.zone:
            return 0.5
        return 0.0

    def __str__(self) -> str:
        return f"region={self.region},zone={self.zone}"
