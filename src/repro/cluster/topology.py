"""Cluster membership and topology helpers.

A :class:`Cluster` owns the simulator, the network fabric, the shared
skew model, and all nodes.  ``standard_cluster`` builds the layout used
throughout the paper's evaluation: N regions x Z zones x nodes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..sim.clock import ClockModel
from ..sim.core import Simulator
from ..sim.network import LatencyModel, Network
from ..storage.locktable import WaitGraph
from .locality import Locality
from .node import Node

__all__ = ["Cluster", "standard_cluster"]


class Cluster:
    """All nodes plus the shared simulation infrastructure."""

    def __init__(self, sim: Simulator, network: Network,
                 max_clock_offset: float = 250.0,
                 skew_fraction: float = 0.5, seed: int = 0,
                 raft_coalesce_ms: Optional[float] = None,
                 txn_protocol=None):
        self.sim = sim
        self.network = network
        self.seed = seed
        #: Raft message coalescing window (ms) for every range created on
        #: this cluster; None disables coalescing (the default — it is a
        #: throughput/latency trade the benchmarks opt into explicitly).
        self.raft_coalesce_ms = raft_coalesce_ms
        #: Per-node clock model: static base offsets plus the dynamic
        #: fault surface (drift/jump/freeze) the clock nemesis drives.
        #: ``skew`` is the historical name; ``clock`` reads better at
        #: fault-injection sites.
        self.skew = ClockModel(max_clock_offset, seed=seed,
                               skew_fraction=skew_fraction, sim=sim)
        self.clock = self.skew
        #: Clock-safety monitor (``repro.cluster.clocksync``); ``None``
        #: means clock monitoring/fencing is disabled and every gated
        #: path is a single attribute check — installed via
        #: ``install_clock_monitor``.
        self.clock_monitor = None
        # Crash-restart support: a restarted node keeps its durable
        # state but must catch up on Raft traffic it missed.
        network.on_node_restart(self._catch_up_restarted_node)
        self.nodes: List[Node] = []
        #: Shared wait-for graph for cross-range deadlock detection.
        self.wait_graph = WaitGraph()
        #: txn_id -> live Transaction object; the authoritative status
        #: consulted by lock pushes (stands in for CRDB's txn records +
        #: coordinator heartbeats).
        self.txn_registry: Dict[int, object] = {}
        #: Admission controller (``repro.admission``); ``None`` means
        #: admission control is disabled and every gated path is a
        #: single attribute check — installed via ``install_admission``.
        self.admission = None
        #: Cluster-default transaction protocol: anything
        #: :func:`repro.txn.protocol.resolve_protocol` accepts ("crdb",
        #: "epoch-occ", a TxnProtocol instance, or None for the CRDB
        #: default).  Coordinators built without an explicit ``protocol``
        #: inherit this.
        self.txn_protocol = txn_protocol
        #: Shared epoch-OCC sequencer (``repro.txn.epoch``); created
        #: lazily by the first epoch-OCC coordinator on this cluster.
        self.epoch_service = None
        self._next_node_id = 1
        self._next_range_id = 1
        self._keyspace = None

    @property
    def keyspace(self):
        """The elastic-keyspace registry (``repro.kv.keyspace``), created
        lazily so fixed-provisioning runs never touch it."""
        if self._keyspace is None:
            from ..kv.keyspace import Keyspace
            self._keyspace = Keyspace(self)
        return self._keyspace

    def txn_status(self, txn_id: int):
        """Authoritative transaction state for pushes.

        Returns None if unknown, else ``(final, commit_ts)`` where
        ``final`` is True for committed/aborted transactions and
        ``commit_ts`` is the commit timestamp (None if aborted/pending).
        """
        txn = self.txn_registry.get(txn_id)
        if txn is None:
            return None
        status = getattr(txn, "status", "pending")
        if status == "committed":
            return True, txn.commit_ts
        if status == "aborted":
            return True, None
        return False, None

    @property
    def max_clock_offset(self) -> float:
        return self.skew.max_offset

    def add_node(self, locality: Locality) -> Node:
        node = Node(self.sim, self._next_node_id, locality, self.skew)
        self._next_node_id += 1
        self.nodes.append(node)
        return node

    def remove_node(self, node: Node) -> None:
        node.alive = False
        self.network.kill_node(node.node_id)

    # -- crash / restart ---------------------------------------------------

    def crash_node(self, node_id: int) -> None:
        """Crash a node: unreachable, but its durable state survives."""
        self.network.crash_node(node_id)

    def restart_node(self, node_id: int) -> None:
        """Restart a crashed node; it rejoins and catches up on Raft."""
        self.network.restart_node(node_id)

    def _catch_up_restarted_node(self, node_id: int) -> None:
        try:
            node = self.node_by_id(node_id)
        except KeyError:
            return
        for replica in node.replicas.values():
            replica.range.group.resync_peer(node_id)

    def allocate_range_id(self) -> int:
        range_id = self._next_range_id
        self._next_range_id += 1
        return range_id

    # -- lookups -----------------------------------------------------------

    def regions(self) -> List[str]:
        """Cluster regions: the union of node regions (paper §2.1)."""
        seen = []
        for node in self.nodes:
            if node.alive and node.locality.region not in seen:
                seen.append(node.locality.region)
        return seen

    def zones_in_region(self, region: str) -> List[str]:
        seen = []
        for node in self.nodes:
            if node.alive and node.locality.region == region:
                if node.locality.zone not in seen:
                    seen.append(node.locality.zone)
        return seen

    def nodes_in_region(self, region: str) -> List[Node]:
        return [n for n in self.nodes
                if n.alive and n.locality.region == region]

    def live_nodes(self) -> List[Node]:
        return [n for n in self.nodes if n.alive]

    def node_by_id(self, node_id: int) -> Node:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise KeyError(f"no node {node_id}")

    def gateway_for_region(self, region: str, index: int = 0) -> Node:
        """The node a client in ``region`` connects to (collocated)."""
        nodes = self.nodes_in_region(region)
        if not nodes:
            raise KeyError(f"no live nodes in region {region!r}")
        return nodes[index % len(nodes)]


def standard_cluster(regions: Sequence[str],
                     nodes_per_region: int = 3,
                     zones_per_region: int = 3,
                     max_clock_offset: float = 250.0,
                     skew_fraction: float = 0.5,
                     rtt_matrix: Optional[dict] = None,
                     jitter_fraction: float = 0.05,
                     seed: int = 0,
                     obs_enabled: bool = True,
                     trace_sample_every: int = 1,
                     raft_coalesce_ms: Optional[float] = None,
                     txn_protocol=None) -> Cluster:
    """Build the paper's standard layout: one node per zone per region."""
    sim = Simulator(obs_enabled=obs_enabled,
                    trace_sample_every=trace_sample_every)
    latency = LatencyModel(rtt_matrix=rtt_matrix, seed=seed,
                           jitter_fraction=jitter_fraction)
    network = Network(sim, latency, seed=seed)
    cluster = Cluster(sim, network, max_clock_offset=max_clock_offset,
                      skew_fraction=skew_fraction, seed=seed,
                      raft_coalesce_ms=raft_coalesce_ms,
                      txn_protocol=txn_protocol)
    for region in regions:
        for i in range(nodes_per_region):
            zone = f"{region}-{chr(ord('a') + (i % zones_per_region))}"
            cluster.add_node(Locality(region=region, zone=zone))
    return cluster
