"""Store liveness: epoch-based heartbeats over the simulated network.

Models CockroachDB's store-liveness fabric: every store periodically
heartbeats every other store, and each observer independently tracks
when it last heard from each subject.  Because heartbeats ride the real
(simulated) network, *anything* that delays or drops messages — crashes,
partitions, one-way cuts, gray (slow) nodes, lossy WAN links — degrades
the observed liveness, not just explicit node death:

* **LIVE**    — a heartbeat arrived within ``suspect_after_ms``;
* **SUSPECT** — heartbeats are late but the store is not yet presumed
  dead (leases should move away, replicas should stay);
* **DEAD**    — nothing heard for ``time_until_store_dead_ms`` (CRDB's
  ``server.time_until_store_dead``): the replica allocator may now
  treat the store's replicas as lost and re-replicate elsewhere.

Heartbeats carry an **epoch**, incremented each time the node restarts,
so observers can distinguish "the same incarnation, delayed" from "a
new incarnation after a crash" — the basis for epoch-based leases.

Views are per-observer (store pairs), mirroring the directionality of
the fault surface: an asymmetrically partitioned node may look LIVE
from one side and DEAD from the other.  Cluster-level consumers (the
replicate queue) use :meth:`StoreLiveness.aggregate_status`, which
takes a majority vote among live observers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["LivenessStatus", "StoreLiveness"]


class LivenessStatus:
    LIVE = "live"
    SUSPECT = "suspect"
    DEAD = "dead"


class StoreLiveness:
    """Per-store-pair heartbeat tracking with LIVE/SUSPECT/DEAD states.

    ``time_until_store_dead_ms`` is the knob the paper's self-healing
    story hinges on: it trades repair latency against the churn of
    re-replicating a store that was merely slow to answer.
    """

    #: Default heartbeat period.
    HEARTBEAT_INTERVAL_MS = 100.0
    #: Default grace period before a quiet store turns SUSPECT
    #: (multiples of the heartbeat interval when not set explicitly).
    SUSPECT_MULTIPLE = 3.0
    #: Default ``server.time_until_store_dead`` analogue.
    TIME_UNTIL_STORE_DEAD_MS = 2000.0

    def __init__(self, cluster,
                 heartbeat_interval_ms: float = HEARTBEAT_INTERVAL_MS,
                 suspect_after_ms: Optional[float] = None,
                 time_until_store_dead_ms: float = TIME_UNTIL_STORE_DEAD_MS):
        self.cluster = cluster
        self.sim = cluster.sim
        self.network = cluster.network
        self.heartbeat_interval_ms = heartbeat_interval_ms
        self.suspect_after_ms = (
            suspect_after_ms if suspect_after_ms is not None
            else self.SUSPECT_MULTIPLE * heartbeat_interval_ms)
        self.time_until_store_dead_ms = time_until_store_dead_ms
        if self.time_until_store_dead_ms <= self.suspect_after_ms:
            raise ValueError("time_until_store_dead must exceed the "
                             "suspect threshold")
        #: observer node_id -> subject node_id -> (epoch, last_heard_ms)
        self._views: Dict[int, Dict[int, Tuple[int, float]]] = {}
        #: Node incarnations; bumped on restart.
        self._epochs: Dict[int, int] = {}
        #: (time_ms, node_id, old_status, new_status) aggregate changes.
        self.transitions: List[Tuple[float, int, str, str]] = []
        self._last_aggregate: Dict[int, str] = {}
        self._registry = cluster.sim.obs.registry
        self._c_heartbeats = self._registry.counter(
            "liveness.heartbeats_sent")
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin heartbeating from every node; idempotent."""
        if self._started:
            return
        self._started = True
        now = self.sim.now
        nodes = list(self.cluster.nodes)
        for node in nodes:
            self._epochs.setdefault(node.node_id, 1)
        for node in nodes:
            view = self._views.setdefault(node.node_id, {})
            for other in nodes:
                if other.node_id != node.node_id:
                    # Grace period: nobody is declared dead at startup.
                    view[other.node_id] = (self._epochs[other.node_id], now)
        self.network.on_node_restart(self._on_restart)
        for node in nodes:
            self._status_gauge(node.node_id).set(
                self._STATUS_LEVELS[LivenessStatus.LIVE])
        # Stagger senders deterministically so heartbeats don't arrive
        # as one synchronized burst per interval.
        for index, node in enumerate(nodes):
            offset = (index + 1) * self.heartbeat_interval_ms / (len(nodes) + 1)
            self.sim.spawn(self._heartbeat_loop(node, offset),
                           name=f"liveness-hb@{node.node_id}")

    def _heartbeat_loop(self, node, initial_offset_ms: float):
        yield self.sim.sleep(initial_offset_ms)
        while True:
            if node.alive and not self.network.node_is_dead(node.node_id):
                epoch = self._epochs.get(node.node_id, 1)
                # Clock-safety piggyback: when a monitor is installed,
                # heartbeats carry the sender's physical clock reading
                # (captured at send time) at zero extra message cost.
                monitor = self.network.clock_monitor
                sent_clock = (node.clock.physical_now()
                              if monitor is not None else None)
                send = self.network.send
                receive = self._receive
                inc = self._c_heartbeats.inc
                node_id = node.node_id
                for other in self.cluster.nodes:
                    if other.node_id == node_id or not other.alive:
                        continue
                    inc()
                    send(node, other, receive,
                         other.node_id, node_id, epoch, sent_clock)
            yield self.sim.sleep(self.heartbeat_interval_ms)

    def _receive(self, observer_id: int, subject_id: int, epoch: int,
                 sender_physical: Optional[float] = None) -> None:
        view = self._views.setdefault(observer_id, {})
        known_epoch, _last = view.get(subject_id, (0, 0.0))
        if epoch >= known_epoch:
            view[subject_id] = (epoch, self.sim.now)
        if sender_physical is not None:
            monitor = self.network.clock_monitor
            if monitor is not None:
                monitor.observe(observer_id, subject_id, sender_physical)

    def _on_restart(self, node_id: int) -> None:
        """A crashed node came back: new epoch, fresh local view.

        The restarted node's own observations are stale (it heard
        nothing while down); resetting them to "just heard" prevents it
        from spuriously declaring the whole cluster dead on boot.
        """
        self._epochs[node_id] = self._epochs.get(node_id, 1) + 1
        now = self.sim.now
        view = self._views.setdefault(node_id, {})
        for other in self.cluster.nodes:
            if other.node_id != node_id:
                epoch, _last = view.get(other.node_id, (0, now))
                view[other.node_id] = (epoch, now)

    # -- queries -----------------------------------------------------------

    #: Gauge encoding of the status enum (0 reads as healthy).
    _STATUS_LEVELS = {LivenessStatus.LIVE: 0, LivenessStatus.SUSPECT: 1,
                      LivenessStatus.DEAD: 2}

    @property
    def heartbeats_sent(self) -> int:
        return int(self._c_heartbeats.value)

    def _status_gauge(self, node_id: int):
        return self._registry.gauge("liveness.status", node=node_id)

    def epoch(self, node_id: int) -> int:
        return self._epochs.get(node_id, 1)

    def status(self, subject_id: int,
               from_node_id: Optional[int] = None) -> str:
        """Liveness of ``subject_id`` as seen from one observer.

        A store always considers itself LIVE (it is running this code).
        Unknown subjects are SUSPECT: absence of evidence is not yet
        evidence of death.
        """
        if from_node_id is None or from_node_id == subject_id:
            if from_node_id == subject_id:
                return LivenessStatus.LIVE
            return self.aggregate_status(subject_id)
        record = self._views.get(from_node_id, {}).get(subject_id)
        if record is None:
            return LivenessStatus.SUSPECT
        _epoch, last_heard = record
        elapsed = self.sim.now - last_heard
        if elapsed > self.time_until_store_dead_ms:
            return LivenessStatus.DEAD
        if elapsed > self.suspect_after_ms:
            return LivenessStatus.SUSPECT
        return LivenessStatus.LIVE

    def aggregate_status(self, subject_id: int) -> str:
        """Cluster-level verdict: a majority vote among live observers.

        Stands in for the quorum-backed liveness range: no single
        observer's network position can unilaterally declare a store
        dead.  Observers that are themselves down get no vote.
        """
        votes: List[str] = []
        for node in self.cluster.nodes:
            if node.node_id == subject_id or not node.alive:
                continue
            if self.network.node_is_dead(node.node_id):
                continue
            votes.append(self.status(subject_id, from_node_id=node.node_id))
        if not votes:
            return LivenessStatus.SUSPECT
        majority = len(votes) // 2 + 1
        dead = sum(1 for v in votes if v == LivenessStatus.DEAD)
        non_live = sum(1 for v in votes if v != LivenessStatus.LIVE)
        if dead >= majority:
            verdict = LivenessStatus.DEAD
        elif non_live >= majority:
            verdict = LivenessStatus.SUSPECT
        else:
            verdict = LivenessStatus.LIVE
        previous = self._last_aggregate.get(subject_id, LivenessStatus.LIVE)
        if verdict != previous:
            self.transitions.append(
                (self.sim.now, subject_id, previous, verdict))
            self._last_aggregate[subject_id] = verdict
            self._registry.counter("liveness.transitions",
                                   to=verdict).inc()
            self._status_gauge(subject_id).set(self._STATUS_LEVELS[verdict])
        return verdict

    def is_live(self, node_id: int) -> bool:
        return self.aggregate_status(node_id) == LivenessStatus.LIVE

    def live_node_ids(self) -> List[int]:
        return [n.node_id for n in self.cluster.nodes
                if n.alive
                and self.aggregate_status(n.node_id) == LivenessStatus.LIVE]

    def dead_node_ids(self) -> List[int]:
        return [n.node_id for n in self.cluster.nodes
                if self.aggregate_status(n.node_id) == LivenessStatus.DEAD]
