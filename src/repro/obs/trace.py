"""Request tracing: spans with deterministic, seed-stable IDs.

A :class:`Span` is a named interval of *simulated* time with tags and a
parent; a :class:`Tracer` mints them.  Span IDs come from a plain
monotonic counter — because the simulation itself is deterministic, the
N-th span of two same-seed runs is the same span, so traces (and their
rendered trees) are byte-identical across runs.  No wall-clock, no
randomness.

The tracer takes a ``now_fn`` callable rather than a Simulator so that
``repro.sim.core`` can import this module without a cycle.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .noop import NOOP_SPAN

__all__ = ["Span", "Tracer", "render_tree", "critical_path",
           "containment_violations", "spans_named"]


class Span:
    """One traced operation over an interval of sim time."""

    __slots__ = ("span_id", "name", "parent", "children",
                 "start_ms", "end_ms", "tags", "_now_fn")

    def __init__(self, span_id: int, name: str, parent: Optional["Span"],
                 start_ms: float, tags: Dict[str, object],
                 now_fn: Callable[[], float]):
        self.span_id = span_id
        self.name = name
        self.parent = parent
        self.children: List["Span"] = []
        self.start_ms = start_ms
        self.end_ms: Optional[float] = None
        self.tags = tags
        self._now_fn = now_fn

    # -- lifecycle ---------------------------------------------------------

    def annotate(self, **tags) -> "Span":
        """Attach tags; later values win."""
        self.tags.update(tags)
        return self

    def finish(self, **tags) -> "Span":
        """End the span at the current sim time.  Idempotent: only the
        first call sets the end; late finishes (e.g. an ack arriving
        after the proposal resolved) are no-ops."""
        if tags:
            self.tags.update(tags)
        if self.end_ms is None:
            self.end_ms = max(self.start_ms, self._now_fn())
        return self

    # -- derived -----------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.end_ms is not None

    @property
    def duration_ms(self) -> float:
        end = self.end_ms if self.end_ms is not None else self._now_fn()
        return max(0.0, end - self.start_ms)

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first in creation order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def root(self) -> "Span":
        span = self
        while span.parent is not None:
            span = span.parent
        return span

    def to_dict(self) -> Dict:
        out = {"span_id": self.span_id, "name": self.name,
               "start_ms": round(self.start_ms, 6),
               "end_ms": round(self.end_ms, 6) if self.end_ms is not None
               else None,
               "duration_ms": round(self.duration_ms, 6)}
        if self.tags:
            out["tags"] = {k: self.tags[k] for k in sorted(self.tags)}
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span(#{self.span_id} {self.name} "
                f"[{self.start_ms:.2f}→{self.end_ms}])")


class Tracer:
    """Mints spans; retains root spans for later rendering.

    ``max_roots`` bounds memory in long experiments: once exceeded the
    oldest root (and its whole tree) is dropped, deterministically, and
    ``dropped_roots`` counts how many went missing.

    ``sample_every`` is the span-sampling knob: keep 1 of every N root
    spans (1 = keep everything).  A sampled-out root is the shared
    :data:`~repro.obs.noop.NOOP_SPAN`; children asked for under a no-op
    parent are no-ops too, so an unsampled request tree costs no
    allocation at all.  Sampling decisions depend only on the root
    counter, so they are deterministic per seed.
    """

    def __init__(self, now_fn: Callable[[], float], max_roots: int = 4096,
                 sample_every: int = 1):
        self._now_fn = now_fn
        self._next_span_id = 1
        self.max_roots = max_roots
        self.sample_every = max(1, int(sample_every))
        self.roots: List[Span] = []
        self.dropped_roots = 0
        self.sampled_out_roots = 0
        self._roots_seen = 0

    def start_span(self, name: str, parent: Optional[Span] = None,
                   **tags) -> Span:
        if parent is not None:
            if parent is NOOP_SPAN:
                return NOOP_SPAN
            span = Span(self._next_span_id, name, parent, self._now_fn(),
                        dict(tags), self._now_fn)
            self._next_span_id += 1
            parent.children.append(span)
            return span
        self._roots_seen += 1
        if self.sample_every > 1 and (self._roots_seen - 1) % self.sample_every:
            self.sampled_out_roots += 1
            return NOOP_SPAN
        span = Span(self._next_span_id, name, None, self._now_fn(),
                    dict(tags), self._now_fn)
        self._next_span_id += 1
        self.roots.append(span)
        while len(self.roots) > self.max_roots:
            del self.roots[0]
            self.dropped_roots += 1
        return span

    def spans(self) -> Iterator[Span]:
        """Every retained span, all trees, creation order within a tree."""
        for root in self.roots:
            yield from root.walk()

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps([root.to_dict() for root in self.roots],
                          indent=indent, sort_keys=True)


# -- analysis helpers ------------------------------------------------------


def spans_named(root: Span, name: str) -> List[Span]:
    return [span for span in root.walk() if span.name == name]


def containment_violations(root: Span, epsilon: float = 1e-6) -> List[str]:
    """Children whose sim-time window escapes their parent's.

    An empty list means durations "sum consistently": every child's
    interval lies within its parent's (child ≤ parent).  Spans that were
    never finished are reported too — an unfinished span has no
    defensible duration.
    """
    problems: List[str] = []
    for span in root.walk():
        if span.end_ms is None:
            problems.append(f"span #{span.span_id} {span.name} never finished")
            continue
        for child in span.children:
            if child.start_ms < span.start_ms - epsilon:
                problems.append(
                    f"child #{child.span_id} {child.name} starts before "
                    f"parent #{span.span_id} {span.name}")
            if child.end_ms is not None and span.end_ms is not None \
                    and child.end_ms > span.end_ms + epsilon:
                problems.append(
                    f"child #{child.span_id} {child.name} ends after "
                    f"parent #{span.span_id} {span.name}")
    return problems


def critical_path(root: Span) -> List[Span]:
    """The chain of spans ending latest at each level — the spans that
    gate the root's completion."""
    path = [root]
    span = root
    while span.children:
        finished = [c for c in span.children if c.end_ms is not None]
        if not finished:
            break
        span = max(finished, key=lambda c: (c.end_ms, c.start_ms, c.span_id))
        path.append(span)
    return path


def _format_tags(span: Span) -> str:
    if not span.tags:
        return ""
    inner = " ".join(f"{k}={span.tags[k]}" for k in sorted(span.tags))
    return f"  {{{inner}}}"


def render_tree(root: Span) -> str:
    """ASCII tree of one span and its descendants with sim-time windows."""
    lines: List[str] = []

    def emit(span: Span, depth: int) -> None:
        indent = "  " * depth
        end = f"{span.end_ms:.2f}" if span.end_ms is not None else "…"
        lines.append(
            f"{indent}{span.name} #{span.span_id} "
            f"[{span.start_ms:.2f} → {end} ms] "
            f"({span.duration_ms:.2f} ms){_format_tags(span)}")
        for child in span.children:
            emit(child, depth + 1)

    emit(root, 0)
    return "\n".join(lines)
