"""Unified metrics registry: Counter / Gauge / Histogram instruments.

Every subsystem (SQL, txn coordinator, DistSender, Raft, lock table,
network, liveness, repair, nemesis) records onto one
:class:`MetricsRegistry`, reachable as ``sim.obs.registry``.  Instruments
are identified by a name plus a label set; the registry is the single
point of truth, so a chaos scenario, a fig3–fig6 experiment and the
``python -m repro metrics`` CLI all read the same numbers.

This module is deliberately dependency-free (no numpy, no imports from
``repro.sim``) so the simulator core can own a registry without an
import cycle.  Everything here is deterministic: snapshots iterate
instruments in sorted key order and values derive purely from what was
recorded, so two same-seed runs serialize byte-identically.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple, Type

__all__ = ["Counter", "Gauge", "Histogram", "Instrument",
           "MetricsRegistry", "format_key"]

#: Canonical (sorted) label representation.
LabelItems = Tuple[Tuple[str, str], ...]


def _num(value: float):
    """Round for export; collapse integral floats to ints for readability."""
    value = round(value, 6)
    return int(value) if float(value).is_integer() else value


def format_key(name: str, labels: LabelItems) -> str:
    """Prometheus-style display key: ``name{k=v,k2=v2}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Instrument:
    """Base class: a named, labelled measurement."""

    kind = "instrument"

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels

    @property
    def key(self) -> str:
        return format_key(self.name, self.labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.key})"


class Counter(Instrument):
    """Monotonic (by convention) accumulating value."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems):
        super().__init__(name, labels)
        self.value: float = 0.0

    def inc(self, amount: float = 1) -> None:
        self.value += amount


class Gauge(Instrument):
    """Point-in-time value that can move both ways."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems):
        super().__init__(name, labels)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram(Instrument):
    """Sample distribution.

    Keeps raw samples (so :class:`~repro.metrics.histogram.Summary` and
    CDF plots stay exact views) up to ``max_samples``; count / sum /
    min / max are tracked separately and stay exact even past the cap.
    The cap exists for high-volume instruments like per-hop network
    latency in long experiments; recorders that need every sample leave
    it unset.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: LabelItems):
        super().__init__(name, labels)
        self.samples: List[float] = []
        self.count: int = 0
        self.sum: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: Raw-sample retention cap (None = unbounded).
        self.max_samples: Optional[int] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if self.max_samples is None or len(self.samples) < self.max_samples:
            self.samples.append(value)

    @property
    def truncated(self) -> bool:
        return self.count > len(self.samples)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the retained samples."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1,
                          int(round(p / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        mean = self.sum / self.count if self.count else 0.0
        out = {"count": self.count,
               "sum": round(self.sum, 6),
               "mean": round(mean, 6),
               "min": round(self.min, 6) if self.min is not None else 0.0,
               "max": round(self.max, 6) if self.max is not None else 0.0,
               "p50": round(self.percentile(50), 6),
               "p95": round(self.percentile(95), 6),
               "p99": round(self.percentile(99), 6)}
        if self.truncated:
            out["truncated"] = True
        return out


class MetricsRegistry:
    """Get-or-create instrument store with deterministic export."""

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelItems], Instrument] = {}

    # -- instrument access -------------------------------------------------

    def _get(self, cls: Type[Instrument], name: str, labels: Dict) -> Instrument:
        # Most lookups carry zero or one label; skip the sort (and its
        # allocations) for those — the resulting key is identical.
        n = len(labels)
        if n == 0:
            items: LabelItems = ()
        elif n == 1:
            [(k, v)] = labels.items()
            items = ((str(k), str(v)),)
        else:
            items = tuple(sorted(
                (str(k), str(v)) for k, v in labels.items()))
        key = (name, items)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, items)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"{format_key(name, items)} already registered as "
                f"{instrument.kind}, not {cls.kind}")
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    def instruments(self, name: Optional[str] = None,
                    kind: Optional[str] = None) -> List[Instrument]:
        """All instruments (optionally filtered), sorted by display key."""
        out = [inst for inst in self._instruments.values()
               if (name is None or inst.name == name)
               and (kind is None or inst.kind == kind)]
        out.sort(key=lambda inst: inst.key)
        return out

    def value(self, name: str, **labels) -> float:
        """Current value of a counter/gauge (0.0 if never touched)."""
        items: LabelItems = tuple(sorted(
            (str(k), str(v)) for k, v in labels.items()))
        instrument = self._instruments.get((name, items))
        return getattr(instrument, "value", 0.0) if instrument else 0.0

    # -- export ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """Deterministic point-in-time dump, keyed by display key."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, float]] = {}
        for inst in self.instruments():
            if inst.kind == "counter":
                counters[inst.key] = _num(inst.value)
            elif inst.kind == "gauge":
                gauges[inst.key] = _num(inst.value)
            else:
                histograms[inst.key] = inst.summary()
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    @staticmethod
    def diff(before: Dict[str, Dict], after: Dict[str, Dict]) -> Dict[str, Dict]:
        """Delta between two :meth:`snapshot` dicts (after - before)."""
        out: Dict[str, Dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for section in ("counters", "gauges"):
            keys = set(before.get(section, {})) | set(after.get(section, {}))
            for key in sorted(keys):
                delta = (after.get(section, {}).get(key, 0.0)
                         - before.get(section, {}).get(key, 0.0))
                if delta:
                    out[section][key] = round(delta, 6)
        b_hists = before.get("histograms", {})
        a_hists = after.get("histograms", {})
        for key in sorted(set(b_hists) | set(a_hists)):
            b = b_hists.get(key, {})
            a = a_hists.get(key, {})
            d_count = a.get("count", 0) - b.get("count", 0)
            if d_count:
                out["histograms"][key] = {
                    "count": d_count,
                    "sum": round(a.get("sum", 0.0) - b.get("sum", 0.0), 6)}
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render(self, prefix: Optional[str] = None) -> str:
        """Human-readable text dump for the ``repro metrics`` CLI."""
        def matching(kind: str) -> List[Instrument]:
            return [inst for inst in self.instruments(kind=kind)
                    if prefix is None or inst.name.startswith(prefix)]

        lines: List[str] = []
        counters = matching("counter")
        gauges = matching("gauge")
        histograms = matching("histogram")
        if counters:
            lines.append("counters:")
            for inst in counters:
                value = inst.value
                text = f"{int(value)}" if float(value).is_integer() else f"{value:.3f}"
                lines.append(f"  {inst.key:<56s} {text}")
        if gauges:
            lines.append("gauges:")
            for inst in gauges:
                lines.append(f"  {inst.key:<56s} {inst.value:.3f}")
        if histograms:
            lines.append("histograms:")
            for inst in histograms:
                s = inst.summary()
                lines.append(
                    f"  {inst.key:<56s} n={s['count']} mean={s['mean']:.2f} "
                    f"p50={s['p50']:.2f} p99={s['p99']:.2f} max={s['max']:.2f}")
        return "\n".join(lines) if lines else "(no metrics recorded)"
