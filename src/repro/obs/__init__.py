"""Observability spine: one metrics registry + tracer per simulation.

Every :class:`~repro.sim.core.Simulator` owns an :class:`Observability`
(as ``sim.obs``); components reach it through the ``sim`` handle they
already hold.  This package imports nothing from ``repro.sim`` so the
simulator core can depend on it without a cycle.
"""

from __future__ import annotations

from typing import Callable

from .metrics import (Counter, Gauge, Histogram, Instrument,
                      MetricsRegistry, format_key)
from .trace import (Span, Tracer, containment_violations, critical_path,
                    render_tree, spans_named)

__all__ = ["Observability", "MetricsRegistry", "Counter", "Gauge",
           "Histogram", "Instrument", "format_key", "Span", "Tracer",
           "render_tree", "critical_path", "containment_violations",
           "spans_named"]


class Observability:
    """Registry + tracer bundle attached to a simulator."""

    def __init__(self, now_fn: Callable[[], float]):
        self.registry = MetricsRegistry()
        self.tracer = Tracer(now_fn)
