"""Observability spine: one metrics registry + tracer per simulation.

Every :class:`~repro.sim.core.Simulator` owns an :class:`Observability`
(as ``sim.obs``); components reach it through the ``sim`` handle they
already hold.  This package imports nothing from ``repro.sim`` so the
simulator core can depend on it without a cycle.

Observability has a per-run mode: ``enabled=True`` (the default) wires
the real :class:`MetricsRegistry` and :class:`Tracer`;
``enabled=False`` substitutes the no-op implementations from
:mod:`repro.obs.noop`, making every ``counter(...).inc()`` and
``start_span(...)`` an allocation-free constant-time call.  Disabling
observability never changes simulation behaviour — only what gets
recorded.
"""

from __future__ import annotations

from typing import Callable

from .metrics import (Counter, Gauge, Histogram, Instrument,
                      MetricsRegistry, format_key)
from .noop import NOOP_SPAN, NoopMetricsRegistry, NoopSpan, NoopTracer
from .trace import (Span, Tracer, containment_violations, critical_path,
                    render_tree, spans_named)

__all__ = ["Observability", "MetricsRegistry", "Counter", "Gauge",
           "Histogram", "Instrument", "format_key", "Span", "Tracer",
           "render_tree", "critical_path", "containment_violations",
           "spans_named", "NOOP_SPAN", "NoopSpan", "NoopTracer",
           "NoopMetricsRegistry"]


class Observability:
    """Registry + tracer bundle attached to a simulator.

    ``enabled=False`` selects the no-op fast path; ``trace_sample_every``
    keeps 1 of every N root spans (1 = trace everything) when enabled.
    """

    def __init__(self, now_fn: Callable[[], float], enabled: bool = True,
                 trace_sample_every: int = 1):
        self.enabled = enabled
        if enabled:
            self.registry = MetricsRegistry()
            self.tracer = Tracer(now_fn, sample_every=trace_sample_every)
        else:
            self.registry = NoopMetricsRegistry()
            self.tracer = NoopTracer(now_fn)
