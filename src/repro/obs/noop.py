"""No-op observability: zero-cost stand-ins for Tracer and MetricsRegistry.

Selected per-run (``Simulator(obs_enabled=False)``), these make the
entire observability spine cost approximately nothing: every component
still calls ``sim.obs.registry.counter(...).inc()`` and
``sim.obs.tracer.start_span(...)`` unconditionally, but with the no-op
implementations those calls allocate nothing and record nothing.

The contract — verified by the obs-equivalence regression tests — is
that disabling observability never perturbs simulation behaviour:
workload results (latency summaries, final KV state) are byte-identical
between a traced run and a no-op run of the same seed.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

__all__ = ["NOOP_SPAN", "NoopSpan", "NoopTracer", "NoopInstrument",
           "NoopMetricsRegistry"]


class NoopSpan:
    """A single shared span that swallows every lifecycle call.

    ``tags`` and ``children`` are immutable shared sentinels; ``annotate``
    and ``finish`` intentionally do not touch them.
    """

    __slots__ = ()

    span_id = 0
    name = "noop"
    parent = None
    children = ()
    start_ms = 0.0
    end_ms = 0.0
    tags: Dict[str, object] = {}

    def annotate(self, **tags) -> "NoopSpan":
        return self

    def finish(self, **tags) -> "NoopSpan":
        return self

    @property
    def done(self) -> bool:
        return True

    @property
    def duration_ms(self) -> float:
        return 0.0

    def walk(self) -> Iterator["NoopSpan"]:
        return iter(())

    def root(self) -> "NoopSpan":
        return self

    def to_dict(self) -> Dict:
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Span(noop)"


#: The one shared no-op span.  Identity checks (``span is NOOP_SPAN``)
#: let the real Tracer refuse to attach real children to no-op parents
#: (used by span sampling).
NOOP_SPAN = NoopSpan()


class NoopTracer:
    """Tracer stand-in: every ``start_span`` returns :data:`NOOP_SPAN`."""

    def __init__(self, now_fn=None, max_roots: int = 0):
        self._now_fn = now_fn
        self.max_roots = max_roots
        self.roots: List = []
        self.dropped_roots = 0
        self.sample_every = 0

    def start_span(self, name: str, parent=None, **tags) -> NoopSpan:
        return NOOP_SPAN

    def spans(self) -> Iterator:
        return iter(())

    def to_json(self, indent: Optional[int] = 2) -> str:
        return "[]"


class NoopInstrument:
    """Counter/Gauge/Histogram stand-in accepting every recording call."""

    __slots__ = ("kind", "max_samples")

    name = "noop"
    labels = ()
    key = "noop"
    value = 0.0
    count = 0
    sum = 0.0
    min = None
    max = None
    samples: tuple = ()
    truncated = False

    def __init__(self, kind: str = "noop"):
        self.kind = kind
        #: Writable: code that tunes retention (``hist.max_samples = N``)
        #: must keep working against the shared no-op instance.
        self.max_samples: Optional[int] = None

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, p: float) -> float:
        return 0.0

    def summary(self) -> Dict[str, float]:
        return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}


_NOOP_COUNTER = NoopInstrument("counter")
_NOOP_GAUGE = NoopInstrument("gauge")
_NOOP_HISTOGRAM = NoopInstrument("histogram")


class NoopMetricsRegistry:
    """Registry stand-in: hands out shared no-op instruments.

    ``snapshot``/``to_json`` return empty-but-well-formed structures so
    export paths keep working (and make it obvious the run recorded
    nothing, rather than crashing).
    """

    def counter(self, name: str, **labels) -> NoopInstrument:
        return _NOOP_COUNTER

    def gauge(self, name: str, **labels) -> NoopInstrument:
        return _NOOP_GAUGE

    def histogram(self, name: str, **labels) -> NoopInstrument:
        return _NOOP_HISTOGRAM

    def instruments(self, name=None, kind=None) -> List:
        return []

    def value(self, name: str, **labels) -> float:
        return 0.0

    def snapshot(self) -> Dict[str, Dict]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    @staticmethod
    def diff(before: Dict[str, Dict], after: Dict[str, Dict]) -> Dict[str, Dict]:
        from .metrics import MetricsRegistry
        return MetricsRegistry.diff(before, after)

    def to_json(self, indent: Optional[int] = 2) -> str:
        import json
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render(self, prefix: Optional[str] = None) -> str:
        return "(observability disabled)"
