"""repro: a simulation-backed reproduction of CockroachDB's multi-region
abstractions (VanBenschoten et al., SIGMOD 2022).

The public surface most users want:

* :func:`repro.sql.connect` -- open a session against a simulated
  multi-region cluster and speak the paper's SQL dialect.
* :mod:`repro.harness` -- experiment specs and runners that regenerate
  every table and figure from the paper's evaluation.

Lower layers (``sim``, ``raft``, ``kv``, ``txn``, ``placement``) are
importable directly for tests, ablations, and custom experiments.
"""

__version__ = "1.0.0"

from . import errors

__all__ = ["errors", "__version__"]
