"""Multi-region TPC-C (paper §7.4, Fig 6).

The schema follows the paper's multi-region adaptation: ``item`` is a
GLOBAL table (never updated after import, read by every new-order), and
the eight remaining tables are REGIONAL BY ROW with ``crdb_region``
computed from the warehouse id, so all rows of a warehouse live in its
region.

Transactions implement the TPC-C skeleton that drives the latency and
scalability results: the standard mix, per-district order-id sequencing
(the contention point), and the ~10% of new-order transactions that
touch a remote warehouse.  Row counts are scaled down for simulation
(the protocol work per transaction — reads, writes, commits, regions
crossed — is what Fig 6 measures, not bytes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Tuple

from ..metrics.histogram import LatencyRecorder
from ..sim.clock import Timestamp
from ..sql import ast
from ..sql.session import Session

__all__ = ["TPCCOptions", "TPCCWorkload", "TPCC_TABLES"]

TPCC_TABLES = ("warehouse", "district", "customer", "history", "orders",
               "new_order", "order_line", "stock", "item")

#: Standard TPC-C transaction mix.
_MIX = (("new_order", 0.45), ("payment", 0.43), ("order_status", 0.04),
        ("delivery", 0.04), ("stock_level", 0.04))


@dataclass
class TPCCOptions:
    warehouses_per_region: int = 2
    districts_per_warehouse: int = 5
    customers_per_district: int = 10
    items: int = 50
    #: Fraction of new-order transactions hitting a remote warehouse
    #: (the paper reports ~10%).
    remote_warehouse_fraction: float = 0.10
    #: Per-transaction keying/think time.  TPC-C throughput is think-time
    #: bound (the spec's cycle is ~23 s); a nonzero value here makes
    #: throughput scale with terminals rather than with latency, which is
    #: what lets the paper report >97% efficiency.
    think_time_ms: float = 0.0
    seed: int = 0


class TPCCWorkload:
    """Schema, loader, and transaction mix for one TPC-C deployment."""

    def __init__(self, engine, regions: List[str], options: TPCCOptions,
                 database: str = "tpcc"):
        self.engine = engine
        self.regions = list(regions)
        self.options = options
        self.database = database
        self._order_counter = 10_000

    # -- schema ------------------------------------------------------------------

    def schema_ddl(self) -> List[str]:
        """The multi-region TPC-C DDL (counted in Table 2)."""
        options = self.options
        others = ", ".join(f'"{r}"' for r in self.regions[1:])
        case = self._warehouse_region_case()
        region_col = f"crdb_region crdb_internal_region AS ({case}) STORED"
        statements = [
            f'CREATE DATABASE {self.database} PRIMARY REGION '
            f'"{self.regions[0]}"' + (f" REGIONS {others}" if others else ""),
            f"CREATE TABLE warehouse (w_id int PRIMARY KEY, name string, "
            f"ytd float, {region_col}) LOCALITY REGIONAL BY ROW",
            f"CREATE TABLE district (w_id int, d_id int, next_o_id int, "
            f"ytd float, PRIMARY KEY (w_id, d_id), {region_col}) "
            f"LOCALITY REGIONAL BY ROW",
            f"CREATE TABLE customer (w_id int, d_id int, c_id int, "
            f"name string, balance float, PRIMARY KEY (w_id, d_id, c_id), "
            f"{region_col}) LOCALITY REGIONAL BY ROW",
            f"CREATE TABLE history (w_id int, d_id int, c_id int, "
            f"h_id int, amount float, PRIMARY KEY (w_id, d_id, c_id, h_id), "
            f"{region_col}) LOCALITY REGIONAL BY ROW",
            f"CREATE TABLE orders (w_id int, d_id int, o_id int, "
            f"c_id int, carrier_id int, PRIMARY KEY (w_id, d_id, o_id), "
            f"{region_col}) LOCALITY REGIONAL BY ROW",
            f"CREATE TABLE new_order (w_id int, d_id int, o_id int, "
            f"PRIMARY KEY (w_id, d_id, o_id), {region_col}) "
            f"LOCALITY REGIONAL BY ROW",
            f"CREATE TABLE order_line (w_id int, d_id int, o_id int, "
            f"ol_number int, i_id int, qty int, "
            f"PRIMARY KEY (w_id, d_id, o_id, ol_number), {region_col}) "
            f"LOCALITY REGIONAL BY ROW",
            f"CREATE TABLE stock (w_id int, i_id int, quantity int, "
            f"PRIMARY KEY (w_id, i_id), {region_col}) "
            f"LOCALITY REGIONAL BY ROW",
            "CREATE TABLE item (i_id int PRIMARY KEY, name string, "
            "price float) LOCALITY GLOBAL",
        ]
        return statements

    def _warehouse_region_case(self) -> str:
        per = self.options.warehouses_per_region
        whens = []
        for i, region in enumerate(self.regions[:-1]):
            whens.append(f"WHEN w_id < {(i + 1) * per} THEN '{region}'")
        return f"CASE {' '.join(whens)} ELSE '{self.regions[-1]}' END"

    def setup(self) -> Session:
        session = self.engine.connect(self.regions[0])
        for statement in self.schema_ddl():
            session.execute(statement)
        return session

    # -- data loading (bulk ingest, like CRDB IMPORT) -------------------------------

    def load(self) -> None:
        options = self.options
        database = self.engine.catalog.database(self.database)
        offset = self.engine.cluster.max_clock_offset + 1.0

        def ingest(table_name: str, rows: List[Dict[str, Any]]) -> None:
            table = database.table(table_name)
            region_col = table.region_column
            by_partition: Dict[str, List[Tuple[Any, Any]]] = {}
            for row in rows:
                partition = row[region_col] if region_col else ""
                pk = tuple(row[c] for c in table.primary_key)
                by_partition.setdefault(partition, []).append((pk, row))
            for partition, items in by_partition.items():
                rng = table.primary_index.partitions[partition]
                ts = Timestamp(
                    rng.leaseholder_node.clock.now().physical - offset)
                rng.bulk_ingest(items, ts)

        n_warehouses = options.warehouses_per_region * len(self.regions)
        warehouses, districts, customers, stocks = [], [], [], []
        for w_id in range(n_warehouses):
            region = self.region_of_warehouse(w_id)
            warehouses.append({"w_id": w_id, "name": f"wh-{w_id}",
                               "ytd": 0.0, "crdb_region": region})
            for d_id in range(options.districts_per_warehouse):
                districts.append({"w_id": w_id, "d_id": d_id,
                                  "next_o_id": 1, "ytd": 0.0,
                                  "crdb_region": region})
                for c_id in range(options.customers_per_district):
                    customers.append({
                        "w_id": w_id, "d_id": d_id, "c_id": c_id,
                        "name": f"cust-{w_id}-{d_id}-{c_id}",
                        "balance": 0.0, "crdb_region": region})
            for i_id in range(options.items):
                stocks.append({"w_id": w_id, "i_id": i_id, "quantity": 100,
                               "crdb_region": region})
        ingest("warehouse", warehouses)
        ingest("district", districts)
        ingest("customer", customers)
        ingest("stock", stocks)
        ingest("item", [{"i_id": i, "name": f"item-{i}",
                         "price": 1.0 + (i % 9)}
                        for i in range(options.items)])

    def region_of_warehouse(self, w_id: int) -> str:
        index = min(w_id // self.options.warehouses_per_region,
                    len(self.regions) - 1)
        return self.regions[index]

    def warehouses_in_region(self, region: str) -> List[int]:
        per = self.options.warehouses_per_region
        index = self.regions.index(region)
        return list(range(index * per, (index + 1) * per))

    # -- transaction bodies --------------------------------------------------------

    def _next_order_id(self) -> int:
        self._order_counter += 1
        return self._order_counter

    def new_order(self, handle, rng: random.Random, w_id: int) -> Generator:
        """The NewOrder transaction: district sequence, item reads
        (GLOBAL), stock updates, order/order-line inserts."""
        options = self.options
        d_id = rng.randrange(options.districts_per_warehouse)
        c_id = rng.randrange(options.customers_per_district)
        n_items = rng.randint(3, 6)  # scaled from TPC-C's 5-15

        rows = yield from handle.execute(
            f"SELECT next_o_id FROM district WHERE w_id = {w_id} "
            f"AND d_id = {d_id}")
        o_id = rows[0]["next_o_id"]
        yield from handle.execute(
            f"UPDATE district SET next_o_id = {o_id + 1} "
            f"WHERE w_id = {w_id} AND d_id = {d_id}")
        yield from handle.execute(
            f"SELECT balance FROM customer WHERE w_id = {w_id} "
            f"AND d_id = {d_id} AND c_id = {c_id}")
        order_key = self._next_order_id()
        yield from handle.execute(
            f"INSERT INTO orders (w_id, d_id, o_id, c_id, carrier_id) "
            f"VALUES ({w_id}, {d_id}, {order_key}, {c_id}, 0)")
        yield from handle.execute(
            f"INSERT INTO new_order (w_id, d_id, o_id) "
            f"VALUES ({w_id}, {d_id}, {order_key})")

        remote = rng.random() < options.remote_warehouse_fraction
        for ol_number in range(n_items):
            i_id = rng.randrange(options.items)
            supply_w = w_id
            if remote and ol_number == 0:
                candidates = [w for w in range(
                    options.warehouses_per_region * len(self.regions))
                    if self.region_of_warehouse(w) !=
                    self.region_of_warehouse(w_id)]
                if candidates:
                    supply_w = rng.choice(candidates)
            # item is GLOBAL: this read is region-local (§2.3.3).
            yield from handle.execute(
                f"SELECT price FROM item WHERE i_id = {i_id}")
            rows = yield from handle.execute(
                f"SELECT quantity FROM stock WHERE w_id = {supply_w} "
                f"AND i_id = {i_id}")
            quantity = rows[0]["quantity"] if rows else 100
            new_quantity = quantity - 1 if quantity > 10 else quantity + 91
            yield from handle.execute(
                f"UPDATE stock SET quantity = {new_quantity} "
                f"WHERE w_id = {supply_w} AND i_id = {i_id}")
            yield from handle.execute(
                f"INSERT INTO order_line (w_id, d_id, o_id, ol_number, "
                f"i_id, qty) VALUES ({w_id}, {d_id}, {order_key}, "
                f"{ol_number}, {i_id}, 1)")
        return o_id

    def payment(self, handle, rng: random.Random, w_id: int) -> Generator:
        options = self.options
        d_id = rng.randrange(options.districts_per_warehouse)
        c_id = rng.randrange(options.customers_per_district)
        amount = 1.0 + rng.random() * 100.0
        rows = yield from handle.execute(
            f"SELECT ytd FROM warehouse WHERE w_id = {w_id}")
        ytd = rows[0]["ytd"] if rows else 0.0
        yield from handle.execute(
            f"UPDATE warehouse SET ytd = {ytd + amount} WHERE w_id = {w_id}")
        rows = yield from handle.execute(
            f"SELECT ytd FROM district WHERE w_id = {w_id} "
            f"AND d_id = {d_id}")
        d_ytd = rows[0]["ytd"] if rows else 0.0
        yield from handle.execute(
            f"UPDATE district SET ytd = {d_ytd + amount} "
            f"WHERE w_id = {w_id} AND d_id = {d_id}")
        rows = yield from handle.execute(
            f"SELECT balance FROM customer WHERE w_id = {w_id} "
            f"AND d_id = {d_id} AND c_id = {c_id}")
        balance = rows[0]["balance"] if rows else 0.0
        h_id = self._next_order_id()
        yield from handle.execute(
            f"UPDATE customer SET balance = {balance - amount} "
            f"WHERE w_id = {w_id} AND d_id = {d_id} AND c_id = {c_id}")
        yield from handle.execute(
            f"INSERT INTO history (w_id, d_id, c_id, h_id, amount) "
            f"VALUES ({w_id}, {d_id}, {c_id}, {h_id}, {amount})")
        return None

    def order_status(self, handle, rng: random.Random,
                     w_id: int) -> Generator:
        options = self.options
        d_id = rng.randrange(options.districts_per_warehouse)
        c_id = rng.randrange(options.customers_per_district)
        yield from handle.execute(
            f"SELECT balance FROM customer WHERE w_id = {w_id} "
            f"AND d_id = {d_id} AND c_id = {c_id}")
        return None

    def delivery(self, handle, rng: random.Random, w_id: int) -> Generator:
        options = self.options
        d_id = rng.randrange(options.districts_per_warehouse)
        rows = yield from handle.execute(
            f"SELECT next_o_id FROM district WHERE w_id = {w_id} "
            f"AND d_id = {d_id}")
        return rows

    def stock_level(self, handle, rng: random.Random,
                    w_id: int) -> Generator:
        i_id = rng.randrange(self.options.items)
        yield from handle.execute(
            f"SELECT quantity FROM stock WHERE w_id = {w_id} "
            f"AND i_id = {i_id}")
        return None

    # -- the client loop -------------------------------------------------------------

    def client(self, session: Session, recorder: LatencyRecorder,
               n_txns: int, client_id: int) -> Generator:
        """A terminal bound to one home warehouse, running the mix."""
        sim = self.engine.cluster.sim
        region = session.region
        home_warehouses = self.warehouses_in_region(region)
        rng = random.Random(self.options.seed * 7919 + client_id)
        w_id = home_warehouses[client_id % len(home_warehouses)]
        for _ in range(n_txns):
            kind = self._pick_txn(rng)
            body = getattr(self, kind)

            def txn_body(handle, body=body, rng=rng, w_id=w_id):
                result = yield from body(handle, rng, w_id)
                return result

            start = sim.now
            yield from session.run_txn_co(txn_body)
            recorder.record((kind, region), sim.now - start)
            if self.options.think_time_ms > 0:
                yield sim.sleep(self.options.think_time_ms)
        return None

    def _pick_txn(self, rng: random.Random) -> str:
        u = rng.random()
        acc = 0.0
        for kind, weight in _MIX:
            acc += weight
            if u < acc:
                return kind
        return _MIX[-1][0]
