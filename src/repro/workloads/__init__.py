"""Workloads: YCSB variants, TPC-C, movr, and key distributions."""

from . import movr
from .tpcc import TPCC_TABLES, TPCCOptions, TPCCWorkload
from .ycsb import YCSB_MODES, YCSBOptions, YCSBWorkload
from .zipf import UniformGenerator, ZipfGenerator

__all__ = [
    "movr",
    "TPCC_TABLES",
    "TPCCOptions",
    "TPCCWorkload",
    "YCSB_MODES",
    "YCSBOptions",
    "YCSBWorkload",
    "UniformGenerator",
    "ZipfGenerator",
]
