"""Key-choice distributions for YCSB (Zipfian and uniform)."""

from __future__ import annotations

import random
from typing import List

import numpy as np

__all__ = ["ZipfGenerator", "UniformGenerator"]


class ZipfGenerator:
    """Zipf-distributed integers in [0, n) with YCSB's default skew.

    Uses a precomputed CDF (fine for the key counts simulated here) so
    draws are O(log n) and deterministic under a seed.
    """

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0):
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        self.theta = theta
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=float), theta)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        self._rng = random.Random(seed)
        # YCSB scrambles ranks so hot keys are spread over the keyspace.
        self._permutation = list(range(n))
        random.Random(seed ^ 0x5bd1e995).shuffle(self._permutation)

    def next(self) -> int:
        u = self._rng.random()
        rank = int(np.searchsorted(self._cdf, u))
        return self._permutation[min(rank, self.n - 1)]


class UniformGenerator:
    """Uniform integers in [0, n)."""

    def __init__(self, n: int, seed: int = 0):
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        self._rng = random.Random(seed)

    def next(self) -> int:
        return self._rng.randrange(self.n)
