"""The movr ride-sharing schema (paper §1.1 and §7.5).

Six tables, matching the schema the paper counts DDL statements for:
``users``, ``vehicles``, ``rides``, ``vehicle_location_histories``,
``user_promo_codes`` (all REGIONAL BY ROW with a region computed from
``city``) and ``promo_codes`` (GLOBAL reference data).

The module exposes exactly the statement lists Table 2 counts:

* :func:`new_multi_region_schema_ddl` — fresh multi-region schema;
* :func:`convert_single_region_ddl` — statements to convert an existing
  single-region movr;
* plus single-statement region add/drop.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = [
    "MOVR_TABLES",
    "new_multi_region_schema_ddl",
    "single_region_schema_ddl",
    "convert_single_region_ddl",
    "add_region_ddl",
    "drop_region_ddl",
    "city_region_case",
    "CITY_REGIONS",
]

MOVR_TABLES = ("users", "vehicles", "rides", "vehicle_location_histories",
               "user_promo_codes", "promo_codes")

#: city -> region routing used by the computed region columns.
CITY_REGIONS: Dict[str, str] = {
    "new york": "us-east1",
    "boston": "us-east1",
    "washington dc": "us-east1",
    "san francisco": "us-west1",
    "seattle": "us-west1",
    "los angeles": "us-west1",
    "amsterdam": "europe-west2",
    "paris": "europe-west2",
    "rome": "europe-west2",
}


def city_region_case(regions: List[str]) -> str:
    """A CASE expression mapping city to one of the database regions."""
    whens = []
    default = regions[0]
    for city, region in CITY_REGIONS.items():
        if region in regions and region != default:
            whens.append(f"WHEN city = '{city}' THEN '{region}'")
    return f"CASE {' '.join(whens)} ELSE '{default}' END"


def _regional_by_row_tables(regions: List[str]) -> List[str]:
    case = city_region_case(regions)
    region_col = (f"crdb_region crdb_internal_region AS ({case}) STORED")
    return [
        (f"CREATE TABLE users (id int PRIMARY KEY, city string, "
         f"name string, {region_col}) LOCALITY REGIONAL BY ROW"),
        (f"CREATE TABLE vehicles (id int PRIMARY KEY, city string, "
         f"type string, owner_id int, {region_col}) "
         f"LOCALITY REGIONAL BY ROW"),
        (f"CREATE TABLE rides (id int PRIMARY KEY, city string, "
         f"rider_id int, vehicle_id int, {region_col}) "
         f"LOCALITY REGIONAL BY ROW"),
        (f"CREATE TABLE vehicle_location_histories (id int PRIMARY KEY, "
         f"city string, ride_id int, lat float, long float, {region_col}) "
         f"LOCALITY REGIONAL BY ROW"),
        (f"CREATE TABLE user_promo_codes (id int PRIMARY KEY, city string, "
         f"user_id int, code string, {region_col}) "
         f"LOCALITY REGIONAL BY ROW"),
    ]


def new_multi_region_schema_ddl(regions: List[str]) -> List[str]:
    """Fresh multi-region movr.

    The paper counts 12 statements (1 CREATE DATABASE, 6 localities, 5
    computed region columns); our dialect folds each computed region
    column into its CREATE TABLE, so the same schema takes 7 — the
    Table 2 bench reports both.
    """
    others = ", ".join(f'"{r}"' for r in regions[1:])
    statements = [
        f'CREATE DATABASE movr PRIMARY REGION "{regions[0]}"'
        + (f" REGIONS {others}" if others else "")
    ]
    statements += _regional_by_row_tables(regions)
    statements.append(
        "CREATE TABLE promo_codes (code string PRIMARY KEY, "
        "description string) LOCALITY GLOBAL")
    return statements


def single_region_schema_ddl() -> List[str]:
    """Plain single-region movr (the conversion starting point)."""
    return [
        "CREATE DATABASE movr",
        "CREATE TABLE users (id int PRIMARY KEY, city string, name string)",
        "CREATE TABLE vehicles (id int PRIMARY KEY, city string, "
        "type string, owner_id int)",
        "CREATE TABLE rides (id int PRIMARY KEY, city string, "
        "rider_id int, vehicle_id int)",
        "CREATE TABLE vehicle_location_histories (id int PRIMARY KEY, "
        "city string, ride_id int, lat float, long float)",
        "CREATE TABLE user_promo_codes (id int PRIMARY KEY, city string, "
        "user_id int, code string)",
        "CREATE TABLE promo_codes (code string PRIMARY KEY, "
        "description string)",
    ]


def convert_single_region_ddl(regions: List[str]) -> List[str]:
    """Convert an existing single-region movr database (paper: 14
    statements for 3 regions — set primary region, add the other
    regions, 6 locality changes, 5 computed region columns)."""
    statements: List[str] = []
    # The database gains a primary region, then the others.
    statements.append(
        f'ALTER DATABASE movr SET PRIMARY REGION "{regions[0]}"')
    for region in regions[1:]:
        statements.append(f'ALTER DATABASE movr ADD REGION "{region}"')
    case = city_region_case(regions)
    for table in MOVR_TABLES[:-1]:
        statements.append(
            f"ALTER TABLE {table} ADD COLUMN crdb_region "
            f"crdb_internal_region AS ({case}) STORED")
        statements.append(
            f"ALTER TABLE {table} SET LOCALITY REGIONAL BY ROW "
            f"AS crdb_region")
    statements.append("ALTER TABLE promo_codes SET LOCALITY GLOBAL")
    return statements


def add_region_ddl(region: str) -> List[str]:
    return [f'ALTER DATABASE movr ADD REGION "{region}"']


def drop_region_ddl(region: str) -> List[str]:
    return [f'ALTER DATABASE movr DROP REGION "{region}"']
