"""YCSB workloads (paper §7.1–§7.3).

Variants used by the evaluation:

* **A** — 1:1 reads/updates, Zipf keys (Fig 3 and Fig 5);
* **B** — 95/5 reads/updates, uniform keys (Fig 4a, 4c);
* **D** — 95/5 reads/inserts, uniform keys (Fig 4b).

Table *modes* select the schema/optimizer configuration under test:

=============== ==============================================================
``default``     REGIONAL BY ROW, hidden region column, LOS on (Fig 4 Default)
``unoptimized`` REGIONAL BY ROW without LOS (Fig 4a Unoptimized)
``rehoming``    REGIONAL BY ROW + ON UPDATE rehome_row() (Fig 4a/4c Rehoming)
``computed``    region computed from the key (Fig 4b Computed)
``baseline``    manual partitioning: region derived from the key client-side
                and pinned in every WHERE clause; only per-partition
                uniqueness (Fig 4 Baseline)
``global``      LOCALITY GLOBAL (Fig 3/5 Global)
``regional_table`` REGIONAL BY TABLE IN PRIMARY REGION (Fig 3/5 Regional)
=============== ==============================================================

Clients run closed loops inside the simulation; latencies land in a
:class:`~repro.metrics.LatencyRecorder` keyed by
``(op, local|remote, client_region)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from ..metrics.histogram import LatencyRecorder
from ..sim.clock import Timestamp
from ..sql import ast
from ..sql.catalog import DEFAULT_PARTITION
from ..sql.session import Session
from .zipf import UniformGenerator, ZipfGenerator

__all__ = ["YCSBOptions", "YCSBWorkload", "YCSB_MODES"]

YCSB_MODES = ("default", "unoptimized", "rehoming", "computed", "baseline",
              "global", "regional_table")

_TABLE = "usertable"


@dataclass
class YCSBOptions:
    variant: str = "B"                  # 'A' | 'B' | 'D'
    mode: str = "default"
    distribution: str = "uniform"       # 'uniform' | 'zipf'
    keys_per_region: int = 1000
    #: Fraction of operations touching keys homed in the client's region.
    locality_of_access: float = 1.0
    #: Remote accesses hit a shared contended slice of this many keys
    #: (Fig 4c); 0 means remote keys are spread uniformly.
    contended_keys: int = 0
    #: Region (index) owning the contended slice.
    contended_region_index: int = 0
    #: Remote accesses come from a small per-client disjoint pool of this
    #: many keys (Fig 4a: clients revisit their remote rows, letting
    #: auto-rehoming pay off); 0 means remote keys are spread uniformly.
    remote_pool_keys: int = 0
    #: Serve reads with bounded staleness of this many ms (Regional
    #: (Stale) in Fig 3/5); None means fresh reads.
    read_staleness_ms: Optional[float] = None
    seed: int = 0

    @property
    def read_fraction(self) -> float:
        return {"A": 0.5, "B": 0.95, "D": 0.95}[self.variant]

    @property
    def write_is_insert(self) -> bool:
        return self.variant == "D"


class YCSBWorkload:
    """Schema setup, bulk load, and client loops for one YCSB config."""

    def __init__(self, engine, regions: List[str], options: YCSBOptions,
                 database: str = "ycsb"):
        self.engine = engine
        self.regions = list(regions)
        self.options = options
        self.database = database
        self._region_index = {r: i for i, r in enumerate(self.regions)}
        self._insert_counter = 0

    # -- schema -------------------------------------------------------------------

    def setup(self) -> Session:
        """Create the database and the usertable for the chosen mode."""
        options = self.options
        session = self.engine.connect(self.regions[0])
        others = ", ".join(f'"{r}"' for r in self.regions[1:])
        session.execute(
            f'CREATE DATABASE {self.database} PRIMARY REGION '
            f'"{self.regions[0]}"' + (f" REGIONS {others}" if others else ""))
        mode = options.mode
        if mode == "global":
            session.execute(
                f"CREATE TABLE {_TABLE} (id int PRIMARY KEY, "
                f"field0 string) LOCALITY GLOBAL")
        elif mode == "regional_table":
            session.execute(
                f"CREATE TABLE {_TABLE} (id int PRIMARY KEY, "
                f"field0 string) LOCALITY REGIONAL BY TABLE IN "
                f"PRIMARY REGION")
        elif mode in ("computed", "baseline"):
            session.execute(
                f"CREATE TABLE {_TABLE} (id int PRIMARY KEY, "
                f"field0 string, crdb_region crdb_internal_region AS "
                f"({self._region_case_expr()}) STORED) "
                f"LOCALITY REGIONAL BY ROW")
        elif mode == "rehoming":
            session.execute(
                f"CREATE TABLE {_TABLE} (id int PRIMARY KEY, "
                f"field0 string, crdb_region crdb_internal_region "
                f"NOT VISIBLE NOT NULL DEFAULT gateway_region() "
                f"ON UPDATE rehome_row()) LOCALITY REGIONAL BY ROW")
        else:  # default / unoptimized
            session.execute(
                f"CREATE TABLE {_TABLE} (id int PRIMARY KEY, "
                f"field0 string) LOCALITY REGIONAL BY ROW")
        table = self._table()
        if mode == "unoptimized":
            table.locality_optimized_search = False
        if mode == "baseline":
            # Manual partitioning cannot enforce global uniqueness (§4.1).
            table.suppress_uniqueness_checks = True
        return session

    def _region_case_expr(self) -> str:
        """crdb_region computed from the key (modular mapping, so newly
        inserted keys can land in any region's class)."""
        n = len(self.regions)
        whens = []
        for i, region in enumerate(self.regions[:-1]):
            whens.append(f"WHEN mod(id, {n}) = {i} THEN '{region}'")
        return (f"CASE {' '.join(whens)} ELSE '{self.regions[-1]}' END")

    @property
    def _modular_keys(self) -> bool:
        """Computed/baseline modes derive the region from the key value."""
        return self.options.mode in ("computed", "baseline")

    def _make_key(self, region_index: int, ordinal: int) -> int:
        if self._modular_keys:
            return ordinal * len(self.regions) + region_index
        return region_index * self.options.keys_per_region + ordinal

    def _key_region_index(self, key: int) -> int:
        if self._modular_keys:
            return key % len(self.regions)
        return min(key // self.options.keys_per_region,
                   len(self.regions) - 1)

    def _table(self):
        return self.engine.catalog.database(self.database).table(_TABLE)

    # -- data ------------------------------------------------------------------------

    def load(self) -> None:
        """Bulk-ingest keys_per_region rows per region (CRDB IMPORT)."""
        table = self._table()
        keys = self.options.keys_per_region
        region_col = table.region_column
        offset = self.engine.cluster.max_clock_offset + 1.0
        if region_col is None:
            rng = table.primary_index.partitions[DEFAULT_PARTITION]
            ts = Timestamp(rng.leaseholder_node.clock.now().physical - offset)
            items = []
            for region_index in range(len(self.regions)):
                for i in range(keys):
                    key = self._make_key(region_index, i)
                    items.append(((key,), self._row(key, None)))
            rng.bulk_ingest(items, ts)
            return
        for region_index, region in enumerate(self.regions):
            rng = table.primary_index.partitions[region]
            ts = Timestamp(rng.leaseholder_node.clock.now().physical - offset)
            items = []
            for i in range(keys):
                key = self._make_key(region_index, i)
                items.append(((key,), self._row(key, region)))
            rng.bulk_ingest(items, ts)

    def _row(self, key: int, region: Optional[str]) -> Dict[str, Any]:
        row = {"id": key, "field0": f"value-{key}"}
        if region is not None:
            row["crdb_region"] = region
        return row

    def total_keys(self) -> int:
        return self.options.keys_per_region * len(self.regions)

    # -- key choice ---------------------------------------------------------------------

    def _key_chooser(self, client_region: str, client_seed: int,
                     client_id: int):
        options = self.options
        keys = options.keys_per_region
        n_regions = len(self.regions)
        local_index = self._region_index[client_region]
        rng = random.Random(client_seed)
        if options.distribution == "zipf":
            sampler = ZipfGenerator(self.total_keys(), seed=client_seed)
        else:
            sampler = UniformGenerator(keys, seed=client_seed)
        remote_targets = [i for i in range(n_regions) if i != local_index]
        # Per-client disjoint remote window (Fig 4a revisited pools).
        pool_keys = self.remote_pool(client_region, client_id)

        def choose() -> tuple:
            """Returns (key, is_local) — locality by *original* home."""
            if options.distribution == "zipf":
                # Fig 3/5: one shared keyspace, no locality split.
                return sampler.next(), True
            if rng.random() < options.locality_of_access:
                return self._make_key(local_index, sampler.next()), True
            if options.contended_keys:
                # Fig 4c: every contender hammers one shared slice.
                target = options.contended_region_index
                key = self._make_key(target,
                                     rng.randrange(options.contended_keys))
                return key, target == local_index
            if pool_keys:
                return rng.choice(pool_keys), False
            target = rng.choice(remote_targets)
            return self._make_key(target, sampler.next()), False

        return choose

    def remote_pool(self, client_region: str, client_id: int) -> List[int]:
        """The client's disjoint remote key pool (empty if unused)."""
        pool = self.options.remote_pool_keys
        if not pool:
            return []
        keys = self.options.keys_per_region
        local_index = self._region_index[client_region]
        remote_targets = [i for i in range(len(self.regions))
                          if i != local_index]
        if not remote_targets:
            return []
        pool_region = remote_targets[client_id % len(remote_targets)]
        pool_start = (client_id * pool) % max(keys - pool, 1)
        return [self._make_key(pool_region, pool_start + j)
                for j in range(pool)]

    def contended_pool(self) -> List[int]:
        """The shared contended key slice (Fig 4c)."""
        options = self.options
        return [self._make_key(options.contended_region_index, j)
                for j in range(options.contended_keys)]

    def _region_of_key(self, key: int) -> str:
        return self.regions[self._key_region_index(key)]

    # -- statements -----------------------------------------------------------------------

    def _select_stmt(self, key: int) -> ast.Select:
        where: Any = ast.Comparison("=", ast.ColumnRef("id"),
                                    ast.Literal(key))
        if self.options.mode == "baseline":
            where = ast.LogicalAnd(parts=(
                where,
                ast.Comparison("=", ast.ColumnRef("crdb_region"),
                               ast.Literal(self._region_of_key(key)))))
        as_of = None
        if self.options.read_staleness_ms is not None:
            as_of = ast.AsOf(kind="max_staleness",
                             value=ast.Literal(
                                 f"{self.options.read_staleness_ms}ms"))
        return ast.Select(table=_TABLE, columns=["field0"], where=where,
                          as_of=as_of)

    def _update_stmt(self, key: int, value: str) -> ast.Update:
        where: Any = ast.Comparison("=", ast.ColumnRef("id"),
                                    ast.Literal(key))
        if self.options.mode == "baseline":
            where = ast.LogicalAnd(parts=(
                where,
                ast.Comparison("=", ast.ColumnRef("crdb_region"),
                               ast.Literal(self._region_of_key(key)))))
        return ast.Update(table=_TABLE,
                          assignments=[("field0", ast.Literal(value))],
                          where=where)

    def _insert_stmt(self, key: int) -> ast.Insert:
        return ast.Insert(table=_TABLE, columns=["id", "field0"],
                          rows=[[ast.Literal(key),
                                 ast.Literal(f"value-{key}")]])

    def next_insert_key(self, client_region: str, client_id: int) -> int:
        """Fresh keys for YCSB-D inserts, unique across clients and homed
        in the inserting client's region class (100% locality, Fig 4b)."""
        self._insert_counter += 1
        region_index = self._region_index[client_region]
        if self._modular_keys:
            ordinal = self.options.keys_per_region + self._insert_counter
            return self._make_key(region_index, ordinal)
        # Slice layout: new keys live beyond every loaded slice (the
        # region is taken from the gateway, not the key value).
        return (self.total_keys() + self._insert_counter * len(self.regions)
                + region_index)

    # -- the client loop --------------------------------------------------------------------

    def client(self, session: Session, recorder: LatencyRecorder,
               n_ops: int, client_id: int, warmup_ops: int = 0,
               prehome_keys: Optional[List[int]] = None) -> Generator:
        """A closed-loop client issuing ``n_ops`` recorded operations.

        ``warmup_ops`` operations run first without recording, and
        ``prehome_keys`` are updated once (also unrecorded) before
        measurement: together they bring the system to the steady state
        a 10-minute paper run reaches (rehomed rows, warm closed
        timestamps).
        """
        options = self.options
        sim = self.engine.cluster.sim
        region = session.region
        choose = self._key_chooser(region, options.seed * 10007 + client_id,
                                   client_id)
        op_rng = random.Random(options.seed * 31 + client_id)
        for key in prehome_keys or []:
            stmt = self._update_stmt(key, f"warm-{client_id}")
            yield from session.execute_stmt_co(stmt)
        for i in range(warmup_ops + n_ops):
            recording = i >= warmup_ops
            is_read = op_rng.random() < options.read_fraction
            if is_read:
                key, local = choose()
                stmt = self._select_stmt(key)
                label = ("read", "local" if local else "remote", region)
            elif options.write_is_insert:
                key = self.next_insert_key(region, client_id)
                stmt = self._insert_stmt(key)
                label = ("insert", "local", region)
            else:
                key, local = choose()
                stmt = self._update_stmt(key, f"updated-{client_id}-{i}")
                label = ("update", "local" if local else "remote", region)
            start = sim.now
            yield from session.execute_stmt_co(stmt)
            if recording:
                recorder.record(label, sim.now - start)
        return None
