"""Discrete-event simulation substrate: kernel, clocks, and network."""

from .clock import HLC, ClockModel, SkewModel, Timestamp, TS_MAX, TS_ZERO
from .core import (
    Future,
    Process,
    ProcessFailed,
    SimulationError,
    Simulator,
    all_of,
    any_of,
    quorum_of,
    with_timeout,
)
from .network import (
    FaultPlane,
    LatencyModel,
    Network,
    NetworkUnavailableError,
    RpcTimeoutError,
    TABLE1_REGIONS,
    TABLE1_RTT_MS,
    synthetic_rtt_matrix,
)
from .retry import ExponentialBackoff

__all__ = [
    "HLC",
    "ClockModel",
    "SkewModel",
    "Timestamp",
    "TS_MAX",
    "TS_ZERO",
    "Future",
    "Process",
    "ProcessFailed",
    "SimulationError",
    "Simulator",
    "all_of",
    "any_of",
    "quorum_of",
    "with_timeout",
    "ExponentialBackoff",
    "FaultPlane",
    "LatencyModel",
    "Network",
    "NetworkUnavailableError",
    "RpcTimeoutError",
    "TABLE1_REGIONS",
    "TABLE1_RTT_MS",
    "synthetic_rtt_matrix",
]
