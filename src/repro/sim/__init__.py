"""Discrete-event simulation substrate: kernel, clocks, and network."""

from .clock import HLC, SkewModel, Timestamp, TS_MAX, TS_ZERO
from .core import (
    Future,
    Process,
    ProcessFailed,
    SimulationError,
    Simulator,
    all_of,
    any_of,
    quorum_of,
)
from .network import (
    LatencyModel,
    Network,
    NetworkUnavailableError,
    TABLE1_REGIONS,
    TABLE1_RTT_MS,
    synthetic_rtt_matrix,
)

__all__ = [
    "HLC",
    "SkewModel",
    "Timestamp",
    "TS_MAX",
    "TS_ZERO",
    "Future",
    "Process",
    "ProcessFailed",
    "SimulationError",
    "Simulator",
    "all_of",
    "any_of",
    "quorum_of",
    "LatencyModel",
    "Network",
    "NetworkUnavailableError",
    "TABLE1_REGIONS",
    "TABLE1_RTT_MS",
    "synthetic_rtt_matrix",
]
