"""Deterministic discrete-event simulation kernel.

The kernel is a classic event-heap simulator with coroutine *processes*
layered on top.  A process is a Python generator that yields
:class:`Future` objects; the process is resumed with the future's value
once it resolves.  ``Simulator.sleep`` returns a future that resolves
after a simulated delay, so protocol code reads sequentially::

    def write(sim, ...):
        yield sim.sleep(1.5)            # e.g. disk latency
        reply = yield rpc_future        # wait for an RPC response
        return reply                    # via StopIteration.value

Everything is single-threaded and deterministic: events firing at the
same simulated time are ordered by insertion sequence.

Simulated time is measured in **milliseconds** (float) throughout the
repository.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional

from ..obs import Observability

__all__ = [
    "Future",
    "Process",
    "ProcessFailed",
    "SimulationError",
    "Simulator",
    "all_of",
    "settle_all",
    "any_of",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel itself."""


class Future:
    """A one-shot container for a value that will exist later in sim time.

    Futures may be resolved with a value (:meth:`resolve`) or rejected
    with an exception (:meth:`reject`).  Processes wait on a future by
    yielding it; plain callbacks can be attached with
    :meth:`add_callback`.

    A future is itself callable — ``fut(value)`` / ``fut(None, error)``
    completes it.  The scheduling fast paths (``sleep``, ``timeout``,
    network delivery) schedule the future object directly instead of a
    per-call bound method.
    """

    __slots__ = ("sim", "_done", "_value", "_error", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._done = False
        self._value: Any = None
        self._error: Optional[BaseException] = None
        # Lazily allocated: None until the first waiter registers.  Most
        # futures get exactly one waiter (the yielding process), so the
        # empty-list allocation per future was pure churn.
        self._callbacks: Optional[List[Callable[["Future"], None]]] = None

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError("future is not resolved yet")
        if self._error is not None:
            raise self._error
        return self._value

    @property
    def error(self) -> Optional[BaseException]:
        return self._error if self._done else None

    def resolve(self, value: Any = None) -> None:
        """Complete the future successfully with ``value``."""
        self._complete(value, None)

    def reject(self, error: BaseException) -> None:
        """Complete the future with an exception."""
        self._complete(None, error)

    def __call__(self, value: Any = None,
                 error: Optional[BaseException] = None) -> None:
        # _complete's body, duplicated: this is the event-dispatch entry
        # for the hottest completion paths and the extra frame is
        # measurable at benchmark event rates.
        if self._done:
            raise SimulationError("future resolved twice")
        self._done = True
        self._value = value
        self._error = error
        callbacks = self._callbacks
        if callbacks is not None:
            self._callbacks = None
            for callback in callbacks:
                callback(self)

    def _complete(self, value: Any, error: Optional[BaseException]) -> None:
        if self._done:
            raise SimulationError("future resolved twice")
        self._done = True
        self._value = value
        self._error = error
        callbacks = self._callbacks
        if callbacks is not None:
            self._callbacks = None
            for callback in callbacks:
                callback(self)

    def add_callback(self, callback: Callable[["Future"], None]) -> None:
        """Run ``callback(self)`` when done (immediately if already done)."""
        if self._done:
            callback(self)
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)


class ProcessFailed(SimulationError):
    """A waited-on process terminated with an exception."""


class Process(Future):
    """A running coroutine; also a future for the coroutine's return value.

    The generator's ``return`` value resolves the process; an uncaught
    exception rejects it.  Unwaited-on failures propagate out of
    :meth:`Simulator.run` so that bugs never pass silently.
    """

    __slots__ = ("_generator", "name", "_resume", "_step_cb", "_gen_send")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Bound once: _step registers this on every future the process
        # yields, and binding per yield shows up in profiles.  Same for
        # the _step/send bindings used once per resume.
        self._resume = self._on_target_done
        self._step_cb = self._step
        self._gen_send = generator.send

    def _step(self, send_value: Any = None, throw_error: Optional[BaseException] = None) -> None:
        try:
            if throw_error is not None:
                target = self._generator.throw(throw_error)
            else:
                target = self._gen_send(send_value)
        except StopIteration as stop:
            self._complete(stop.value, None)
            return
        except Exception as exc:  # noqa: BLE001 - deliberate catch-all boundary
            had_waiters = bool(self._callbacks)
            self.reject(exc)
            if not had_waiters and not self.sim._swallow_orphan_failures:
                self.sim._crash(exc)
            return
        if not isinstance(target, Future):
            self.reject(SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Futures"))
            return
        if target._done:
            self._on_target_done(target)
        else:
            callbacks = target._callbacks
            if callbacks is None:
                target._callbacks = [self._resume]
            else:
                callbacks.append(self._resume)

    def _on_target_done(self, fut: Future) -> None:
        if fut._error is not None:
            self.sim._call_soon(self._step_cb, None, fut._error)
        else:
            self.sim._call_soon(self._step_cb, fut._value, None)


#: Upper bound on the recycled-event free list (see Simulator._free).
_FREE_LIST_CAP = 4096

#: Compaction floor: never scan the heap for tombstones below this many.
_COMPACT_MIN_TOMBSTONES = 512

# -- hierarchical timer wheel ------------------------------------------------
#
# Long-delay timers (heartbeat intervals, closed-timestamp side-transport
# ticks, retransmission timers, RPC timeouts) do not go straight into the
# heap: they are appended O(1) to a wheel bucket keyed by quantized fire
# time, and a bucket is merged into the heap only when simulated time
# approaches its window ("one wheel advance per window").  Dispatch order
# is untouched — merged events re-enter the heap and the (when, seq) total
# order decides as before — but the heap stays small, and timers cancelled
# while still parked in a bucket (the common fate of RPC timeouts and
# retransmission timers) are dropped at drain time without ever paying a
# heap push.  Two levels: fine buckets of ``_WHEEL_TICK`` ms, and coarse
# buckets of ``_WHEEL_COARSE`` ms that cascade into fine buckets on drain.

#: Fine-level bucket width (ms).
_WHEEL_TICK = 128.0
#: Fine buckets per coarse bucket.
_WHEEL_SPAN = 64
#: Coarse-level bucket width (ms).
_WHEEL_COARSE = _WHEEL_TICK * _WHEEL_SPAN
#: Only delays at least this long are worth the bucket bookkeeping.
_WHEEL_MIN_DELAY = 96.0


class Simulator:
    """The event loop.  All simulated components share one instance.

    Events are packed mutable lists ``[when, seq, fn, args]`` — one
    allocation per event, heap-ordered by ``(when, seq)``.  Two
    structures hold them:

    * ``_heap`` for future events (``when > now``);
    * ``_ready``, a FIFO deque, for events scheduled *at the current
      instant* (``call_after(0, ...)`` and the process-resume path) —
      the hottest scheduling operation, O(1) instead of O(log n).

    The split preserves exact dispatch order: time only advances once
    ``_ready`` drains, so any heap entry for the current instant was
    pushed *before* the instant began and therefore carries a lower
    ``seq`` than every ready entry; the run loop pops whichever of the
    two heads has the lower sequence.

    ``call_at``/``call_after`` return the event, which doubles as a
    cancellation handle for :meth:`cancel` — cancelled events stay put
    as tombstones (``fn = None``) and are skipped on dispatch, avoiding
    O(n) heap surgery.  Once tombstones pile up past a threshold the
    heap is compacted in one pass (:meth:`_compact`), so long chaos
    runs with many expired timeouts don't drag dead entries.

    Internal scheduling paths whose handles never escape (process
    resumes, ``sleep``, network deliveries) use *recyclable* events —
    5-slot lists drawn from a bounded free list instead of fresh
    allocations.  Mixed 4/5-slot entries coexist in the heap safely:
    ordering compares ``(when, seq)`` and ``seq`` is unique, so the
    comparison never reaches the extra slot.
    """

    def __init__(self, obs_enabled: bool = True,
                 trace_sample_every: int = 1):
        self._now = 0.0
        self._heap: List[list] = []
        self._ready: deque = deque()
        self._seq = 0
        self._pending_crash: Optional[BaseException] = None
        self._swallow_orphan_failures = False
        #: Recycled 5-slot event lists (the "ring" for the zero-fault
        #: fast path): dispatch returns them here, schedulers pop them.
        self._free: List[list] = []
        #: Live tombstones created by :meth:`cancel` and not yet popped.
        self._tombstones = 0
        #: Hierarchical timer wheel (see module comment): fine/coarse
        #: bucket dicts keyed by quantized fire time, the count of
        #: parked events, the start time of the earliest non-empty
        #: bucket, and the drain floor (fine buckets below it are
        #: already merged and must never be re-filled).
        self._wheel_fine: dict = {}
        self._wheel_coarse: dict = {}
        self._wheel_count = 0
        self._wheel_next = float("inf")
        self._wheel_floor = 0
        #: Total events dispatched over the simulator's lifetime; the
        #: benchmark harness divides this by wall-clock for events/sec.
        self.events_processed = 0
        #: Shared observability spine: every component that holds a
        #: ``sim`` reference records metrics and spans here.
        #: ``obs_enabled=False`` swaps in the no-op registry/tracer.
        self.obs = Observability(lambda: self._now, enabled=obs_enabled,
                                 trace_sample_every=trace_sample_every)

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    # -- scheduling ------------------------------------------------------

    def call_at(self, when: float, fn: Callable, *args: Any) -> list:
        """Run ``fn(*args)`` at simulated time ``when``.

        Returns the scheduled event (a cancellation handle for
        :meth:`cancel`).
        """
        now = self._now
        if when <= now:
            if when < now:
                raise SimulationError(
                    f"cannot schedule in the past ({when} < {now})")
            event = [now, self._seq, fn, args]
            self._seq += 1
            self._ready.append(event)
            return event
        event = [when, self._seq, fn, args]
        self._seq += 1
        if when - now >= _WHEEL_MIN_DELAY:
            self._enqueue_future(event, when)
        else:
            heapq.heappush(self._heap, event)
        return event

    def call_after(self, delay: float, fn: Callable, *args: Any) -> list:
        """Run ``fn(*args)`` after ``delay`` milliseconds."""
        # call_at's body, inlined: this is the hottest scheduling call
        # in the simulator and the extra frame is measurable.
        now = self._now
        when = now + delay
        event = [when, self._seq, fn, args]
        self._seq += 1
        if when <= now:
            if when < now:
                raise SimulationError(
                    f"cannot schedule in the past ({when} < {now})")
            self._ready.append(event)
        elif delay >= _WHEEL_MIN_DELAY:
            self._enqueue_future(event, when)
        else:
            heapq.heappush(self._heap, event)
        return event

    def _schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """``call_after`` for events whose handle never escapes: the
        event list is drawn from (and after dispatch returned to) the
        free list.  No cancellation handle — callers must not need one.
        """
        now = self._now
        when = now + delay
        free = self._free
        if free:
            event = free.pop()
            event[0] = when
            event[1] = self._seq
            event[2] = fn
            event[3] = args
        else:
            event = [when, self._seq, fn, args, 1]
        self._seq += 1
        if when <= now:
            if when < now:
                raise SimulationError(
                    f"cannot schedule in the past ({when} < {now})")
            self._ready.append(event)
        elif delay >= _WHEEL_MIN_DELAY:
            self._enqueue_future(event, when)
        else:
            heapq.heappush(self._heap, event)

    def _enqueue_future(self, event: list, when: float) -> None:
        """Park a long-delay event on the timer wheel, or fall back to
        the heap when its window is too close (or already draining)."""
        idx = int(when // _WHEEL_TICK)
        if idx > int(self._now // _WHEEL_TICK) and idx >= self._wheel_floor:
            if when - self._now < _WHEEL_COARSE:
                bucket = self._wheel_fine.get(idx)
                if bucket is None:
                    bucket = self._wheel_fine[idx] = []
                start = idx * _WHEEL_TICK
            else:
                cidx = int(when // _WHEEL_COARSE)
                bucket = self._wheel_coarse.get(cidx)
                if bucket is None:
                    bucket = self._wheel_coarse[cidx] = []
                start = cidx * _WHEEL_COARSE
            bucket.append(event)
            self._wheel_count += 1
            if start < self._wheel_next:
                self._wheel_next = start
            return
        heapq.heappush(self._heap, event)

    def _wheel_drain(self) -> None:
        """Advance the wheel one window: merge the earliest non-empty
        fine bucket into the heap (dropping parked tombstones), or
        cascade the earliest coarse bucket into fine buckets."""
        target = self._wheel_next
        fine = self._wheel_fine
        idx = int(target // _WHEEL_TICK)
        bucket = fine.pop(idx, None)
        if bucket is not None:
            heappush = heapq.heappush
            heap = self._heap
            for event in bucket:
                if event[2] is None:
                    self._tombstones -= 1
                else:
                    heappush(heap, event)
                self._wheel_count -= 1
            if idx >= self._wheel_floor:
                self._wheel_floor = idx + 1
        else:
            cidx = int(target // _WHEEL_COARSE)
            cbucket = self._wheel_coarse.pop(cidx, None)
            if cbucket is not None:
                for event in cbucket:
                    if event[2] is None:
                        self._tombstones -= 1
                        self._wheel_count -= 1
                        continue
                    fidx = int(event[0] // _WHEEL_TICK)
                    fbucket = fine.get(fidx)
                    if fbucket is None:
                        fbucket = fine[fidx] = []
                    fbucket.append(event)
        self._recompute_wheel_next()

    def _recompute_wheel_next(self) -> None:
        nxt = float("inf")
        if self._wheel_fine:
            nxt = min(self._wheel_fine) * _WHEEL_TICK
        if self._wheel_coarse:
            coarse_next = min(self._wheel_coarse) * _WHEEL_COARSE
            if coarse_next < nxt:
                nxt = coarse_next
        self._wheel_next = nxt

    def _call_soon(self, fn: Callable, *args: Any) -> None:
        free = self._free
        if free:
            event = free.pop()
            event[0] = self._now
            event[1] = self._seq
            event[2] = fn
            event[3] = args
        else:
            event = [self._now, self._seq, fn, args, 1]
        self._seq += 1
        self._ready.append(event)

    def cancel(self, event: list) -> None:
        """Cancel a scheduled event (returned by ``call_at``/
        ``call_after``).  The event becomes a tombstone: it is skipped
        (and not counted) when its slot comes up.  Idempotent; safe on
        already-dispatched events."""
        if event[2] is None:
            return
        event[2] = None
        event[3] = ()
        tombstones = self._tombstones + 1
        self._tombstones = tombstones
        if (tombstones >= _COMPACT_MIN_TOMBSTONES
                and tombstones * 2 > len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Drop tombstoned entries from the heap in one pass.

        Safe at any point: dispatch order is total on ``(when, seq)``,
        so re-heapifying the surviving entries preserves it exactly.
        """
        # In place: the run loops hold a local reference to the heap.
        heap = self._heap
        heap[:] = [event for event in heap if event[2] is not None]
        heapq.heapify(heap)
        # Cancelled events parked on the timer wheel are dropped from
        # their buckets in place (bucket order is irrelevant: draining
        # re-establishes total order through the heap).
        if self._wheel_count:
            count = 0
            for wheel in (self._wheel_fine, self._wheel_coarse):
                empty = []
                for idx, bucket in wheel.items():
                    bucket[:] = [e for e in bucket if e[2] is not None]
                    if bucket:
                        count += len(bucket)
                    else:
                        empty.append(idx)
                for idx in empty:
                    del wheel[idx]
            self._wheel_count = count
            self._recompute_wheel_next()
        # Tombstones parked in the ready deque (cancelled same-instant
        # events) drain on their own within the current instant.
        self._tombstones = sum(1 for event in self._ready
                               if event[2] is None)

    def sleep(self, delay: float) -> Future:
        """Future that resolves ``delay`` ms from now."""
        fut = Future(self)
        self._schedule(delay, fut)
        return fut

    def timeout(self, delay: float, error: BaseException) -> Future:
        """Future that *rejects* with ``error`` after ``delay`` ms."""
        fut = Future(self)
        self._schedule(delay, fut, None, error)
        return fut

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        process = Process(self, generator, name)
        self._call_soon(process._step_cb, None, None)
        return process

    # -- execution -------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the queues drain or sim time reaches ``until``."""
        heap = self._heap
        ready = self._ready
        heappop = heapq.heappop
        popleft = ready.popleft
        free = self._free
        processed = 0
        try:
            while ready or heap or self._wheel_count:
                if self._pending_crash is not None:
                    error, self._pending_crash = self._pending_crash, None
                    raise error
                if ready:
                    # A heap entry at the current instant predates every
                    # ready entry's creation but may still order first.
                    if heap and heap[0][0] == self._now \
                            and heap[0][1] < ready[0][1]:
                        event = heappop(heap)
                    else:
                        event = popleft()
                    fn = event[2]
                    if fn is None:
                        self._tombstones -= 1
                        continue
                else:
                    # Merge due wheel windows before dispatching at or
                    # past them (wheel events are strictly future, so
                    # the ready path above never needs this).
                    if self._wheel_count and (
                            not heap or heap[0][0] >= self._wheel_next):
                        self._wheel_drain()
                        continue
                    head = heap[0]
                    if until is not None and head[0] > until:
                        self._now = until
                        return
                    event = heappop(heap)
                    fn = event[2]
                    if fn is None:
                        self._tombstones -= 1
                        continue  # cancelled: do not even advance time
                    self._now = event[0]
                processed += 1
                fn(*event[3])
                # Release callback/args references eagerly (shorter
                # object lifetimes, cheaper GC) and recycle 5-slot
                # internal events.
                event[2] = None
                event[3] = ()
                if len(event) == 5 and len(free) < _FREE_LIST_CAP:
                    free.append(event)
        finally:
            self.events_processed += processed
        if self._pending_crash is not None:
            error, self._pending_crash = self._pending_crash, None
            raise error
        if until is not None and until > self._now:
            self._now = until

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Spawn ``generator``, run to completion, and return its value."""
        process = self.spawn(generator, name)
        self.run()
        if not process.done:
            raise SimulationError(
                f"process {process.name!r} never completed (deadlock?)")
        return process.value

    def run_until_future(self, future: Future,
                         limit: Optional[float] = None) -> Any:
        """Run events until ``future`` completes; return its value.

        Unlike :meth:`run`, this works with never-ending background
        processes (heartbeats, side transports) in the event heap.
        ``limit`` bounds simulated time as a deadlock guard.
        """
        heap = self._heap
        ready = self._ready
        heappop = heapq.heappop
        popleft = ready.popleft
        free = self._free
        processed = 0
        try:
            while not future._done and (ready or heap or self._wheel_count):
                if self._pending_crash is not None:
                    error, self._pending_crash = self._pending_crash, None
                    raise error
                if ready:
                    if heap and heap[0][0] == self._now \
                            and heap[0][1] < ready[0][1]:
                        event = heappop(heap)
                    else:
                        event = popleft()
                    fn = event[2]
                    if fn is None:
                        self._tombstones -= 1
                        continue
                else:
                    if self._wheel_count and (
                            not heap or heap[0][0] >= self._wheel_next):
                        self._wheel_drain()
                        continue
                    event = heappop(heap)
                    fn = event[2]
                    if fn is None:
                        self._tombstones -= 1
                        continue
                    if limit is not None and event[0] > limit:
                        raise SimulationError(
                            f"future not resolved by simulated time {limit}")
                    self._now = event[0]
                processed += 1
                fn(*event[3])
                event[2] = None
                event[3] = ()
                if len(event) == 5 and len(free) < _FREE_LIST_CAP:
                    free.append(event)
        finally:
            self.events_processed += processed
        if self._pending_crash is not None:
            error, self._pending_crash = self._pending_crash, None
            raise error
        if not future.done:
            raise SimulationError("event heap drained before future resolved")
        return future.value

    def _crash(self, error: BaseException) -> None:
        # Recorded rather than raised so the failure surfaces from run()
        # instead of unwinding through an arbitrary callback chain.
        if self._pending_crash is None:
            self._pending_crash = error


def all_of(sim: Simulator, futures: Iterable[Future]) -> Future:
    """Future resolving with a list of all values once every input is done.

    Rejects with the first error observed.
    """
    futures = list(futures)
    result = Future(sim)
    if not futures:
        result.resolve([])
        return result
    remaining = [len(futures)]

    def on_done(_fut: Future) -> None:
        if result.done:
            return
        if _fut.error is not None:
            result.reject(_fut.error)
            return
        remaining[0] -= 1
        if remaining[0] == 0:
            result.resolve([f._value for f in futures])

    for fut in futures:
        fut.add_callback(on_done)
    return result


def settle_all(sim: Simulator, futures: Iterable[Future]) -> Future:
    """Future resolving (never rejecting) once every input has settled.

    Resolves with the list of input futures; callers inspect each for
    value or error.  Unlike :func:`all_of`, this does not give up on the
    first failure — needed when side effects of still-pending futures
    (e.g. replicated write intents) must be accounted for before acting
    on the failure.
    """
    futures = list(futures)
    result = Future(sim)
    if not futures:
        result.resolve([])
        return result
    remaining = [len(futures)]

    def on_done(_fut: Future) -> None:
        remaining[0] -= 1
        if remaining[0] == 0:
            result.resolve(futures)

    for fut in futures:
        fut.add_callback(on_done)
    return result


def any_of(sim: Simulator, futures: Iterable[Future]) -> Future:
    """Future resolving with (index, value) of the first input to resolve."""
    futures = list(futures)
    if not futures:
        raise SimulationError("any_of requires at least one future")
    result = Future(sim)

    def make_callback(index: int) -> Callable[[Future], None]:
        def on_done(fut: Future) -> None:
            if result.done:
                return
            if fut.error is not None:
                result.reject(fut.error)
            else:
                result.resolve((index, fut._value))
        return on_done

    for i, fut in enumerate(futures):
        fut.add_callback(make_callback(i))
    return result


def with_timeout(sim: Simulator, future: Future, delay_ms: float,
                 error) -> Future:
    """Mirror ``future`` unless ``delay_ms`` elapses first.

    The returned future resolves/rejects with ``future``'s outcome, or
    rejects with ``error`` at the deadline.  ``error`` may be an
    exception instance, or a zero-argument callable returning one —
    deadlines almost never fire, so hot callers pass a factory to avoid
    building an exception (and formatting its message) per call.  A
    late outcome on the inner future is consumed silently (the caller
    has already moved on) — this is the per-RPC timeout primitive for
    hardened client paths.
    """
    result = Future(sim)

    def on_done(fut: Future) -> None:
        if result.done:
            return
        if fut.error is not None:
            result.reject(fut.error)
        else:
            result.resolve(fut._value)

    def on_deadline() -> None:
        if not result.done:
            err = error if isinstance(error, BaseException) else error()
            result.reject(err)

    future.add_callback(on_done)
    sim.call_after(delay_ms, on_deadline)
    return result


__all__.append("with_timeout")


def quorum_of(sim: Simulator, futures: Iterable[Future], needed: int) -> Future:
    """Future resolving once ``needed`` of the inputs have resolved.

    Used for Raft quorum waits: rejections count as unreachable replicas
    and only fail the quorum when success becomes impossible.
    """
    futures = list(futures)
    result = Future(sim)
    if needed <= 0:
        result.resolve([])
        return result
    if needed > len(futures):
        raise SimulationError("quorum larger than the group")
    successes: List[Any] = []
    failures = [0]

    def on_done(fut: Future) -> None:
        if result.done:
            return
        if fut.error is not None:
            failures[0] += 1
            if len(futures) - failures[0] < needed:
                result.reject(fut.error)
            return
        successes.append(fut._value)
        if len(successes) >= needed:
            result.resolve(list(successes))

    for fut in futures:
        fut.add_callback(on_done)
    return result


__all__.append("quorum_of")
