"""Network latency model.

Latency between nodes is derived from their localities:

* same node:          ~0 (loopback)
* same zone:          LAN round trip (default 0.5 ms)
* same region:        inter-zone round trip (default 1.0 ms)
* different regions:  the inter-region RTT matrix

The default matrix is Table 1 of the paper (measured GCP round-trip
times in milliseconds).  Regions not present in a matrix fall back to a
synthetic great-circle-flavoured estimate so experiments can scale to
arbitrarily many regions (Fig 6 uses 26).

The model supports per-message jitter and region-level partitions for
failure-injection tests.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Generator, Iterable, Optional, Tuple

from .core import Future, Process, Simulator

__all__ = [
    "TABLE1_RTT_MS",
    "TABLE1_REGIONS",
    "LatencyModel",
    "Network",
    "NetworkUnavailableError",
    "synthetic_rtt_matrix",
]

#: Table 1 of the paper: inter-region round-trip times in milliseconds.
TABLE1_REGIONS = (
    "us-east1",
    "us-west1",
    "europe-west2",
    "asia-northeast1",
    "australia-southeast1",
)

_TABLE1_UPPER = {
    ("us-east1", "us-west1"): 63.0,
    ("us-east1", "europe-west2"): 87.0,
    ("us-east1", "asia-northeast1"): 155.0,
    ("us-east1", "australia-southeast1"): 198.0,
    ("us-west1", "europe-west2"): 132.0,
    ("us-west1", "asia-northeast1"): 90.0,
    ("us-west1", "australia-southeast1"): 156.0,
    ("europe-west2", "asia-northeast1"): 222.0,
    ("europe-west2", "australia-southeast1"): 274.0,
    ("asia-northeast1", "australia-southeast1"): 113.0,
}


def _symmetrize(upper: Dict[Tuple[str, str], float]) -> Dict[Tuple[str, str], float]:
    full = {}
    for (a, b), rtt in upper.items():
        full[(a, b)] = rtt
        full[(b, a)] = rtt
    return full


TABLE1_RTT_MS: Dict[Tuple[str, str], float] = _symmetrize(_TABLE1_UPPER)


def synthetic_rtt_matrix(regions: Iterable[str], seed: int = 7,
                         min_rtt: float = 20.0,
                         max_rtt: float = 280.0) -> Dict[Tuple[str, str], float]:
    """Generate a plausible symmetric RTT matrix for arbitrary regions.

    Each region gets a point on a ring; RTT grows with ring distance,
    spanning roughly the same 20-280 ms envelope as Table 1.  Used by the
    Fig 6 scalability experiment, which needs 26 regions.
    """
    regions = list(regions)
    rng = random.Random(seed)
    positions = {r: i / len(regions) for i, r in enumerate(regions)}
    matrix: Dict[Tuple[str, str], float] = {}
    for a in regions:
        for b in regions:
            if a == b:
                continue
            distance = abs(positions[a] - positions[b])
            distance = min(distance, 1.0 - distance) * 2.0  # 0..1 around ring
            base = min_rtt + (max_rtt - min_rtt) * distance
            noise = rng.uniform(0.9, 1.1)
            key = (a, b) if a < b else (b, a)
            if key not in matrix:
                matrix[key] = base * noise
    return _symmetrize(matrix)


class NetworkUnavailableError(Exception):
    """The destination is unreachable (partition or dead node)."""


class LatencyModel:
    """Computes one-way latency between two localities."""

    def __init__(self,
                 rtt_matrix: Optional[Dict[Tuple[str, str], float]] = None,
                 same_zone_rtt: float = 0.5,
                 same_region_rtt: float = 1.0,
                 default_remote_rtt: float = 150.0,
                 jitter_fraction: float = 0.05,
                 seed: int = 0):
        self.rtt_matrix = dict(TABLE1_RTT_MS if rtt_matrix is None else rtt_matrix)
        self.same_zone_rtt = same_zone_rtt
        self.same_region_rtt = same_region_rtt
        self.default_remote_rtt = default_remote_rtt
        self.jitter_fraction = jitter_fraction
        self._rng = random.Random(seed)

    def rtt(self, region_a: str, zone_a: str, region_b: str, zone_b: str) -> float:
        """Nominal round-trip time between two (region, zone) localities."""
        if region_a == region_b:
            return self.same_zone_rtt if zone_a == zone_b else self.same_region_rtt
        return self.rtt_matrix.get((region_a, region_b), self.default_remote_rtt)

    def one_way(self, region_a: str, zone_a: str, region_b: str, zone_b: str) -> float:
        """One-way latency for a single message, with jitter applied."""
        base = self.rtt(region_a, zone_a, region_b, zone_b) / 2.0
        if self.jitter_fraction <= 0:
            return base
        return base * (1.0 + self._rng.uniform(0.0, self.jitter_fraction))


class Network:
    """Message fabric connecting cluster nodes.

    The primary primitive is :meth:`call`: an RPC that delivers a request
    to the destination after one-way latency, runs a handler coroutine
    there, and delivers the reply after another one-way latency.  Region
    partitions cause calls to reject with
    :class:`NetworkUnavailableError`.
    """

    #: Fixed per-message processing overhead (serialization, kernel, ...).
    PROCESSING_MS = 0.05

    def __init__(self, sim: Simulator, latency: Optional[LatencyModel] = None):
        self.sim = sim
        self.latency = latency or LatencyModel()
        self._partitioned_regions = set()
        self._dead_nodes = set()
        self.messages_sent = 0
        self.bytes_by_region_pair: Dict[Tuple[str, str], int] = {}

    # -- failure injection ------------------------------------------------

    def partition_region(self, region: str) -> None:
        """Cut the given region off from all other regions."""
        self._partitioned_regions.add(region)

    def heal_region(self, region: str) -> None:
        self._partitioned_regions.discard(region)

    def kill_node(self, node_id: int) -> None:
        self._dead_nodes.add(node_id)

    def revive_node(self, node_id: int) -> None:
        self._dead_nodes.discard(node_id)

    def node_is_dead(self, node_id: int) -> bool:
        return node_id in self._dead_nodes

    def _reachable(self, src, dst) -> bool:
        if dst.node_id in self._dead_nodes or src.node_id in self._dead_nodes:
            return False
        if src.locality.region != dst.locality.region:
            if src.locality.region in self._partitioned_regions:
                return False
            if dst.locality.region in self._partitioned_regions:
                return False
        return True

    def one_way_latency(self, src, dst) -> float:
        if src.node_id == dst.node_id:
            return 0.01
        return self.latency.one_way(
            src.locality.region, src.locality.zone,
            dst.locality.region, dst.locality.zone) + self.PROCESSING_MS

    def call(self, src, dst, handler: Callable[[], Generator],
             payload_size: int = 1) -> Future:
        """RPC from node ``src`` to node ``dst``.

        ``handler`` is a zero-argument callable returning a generator; it
        runs *on the destination* (in sim terms: after the request has
        been delivered).  The returned future resolves with the handler's
        return value after the reply propagates back, or rejects if the
        handler raises or the destination is unreachable.
        """
        fut = Future(self.sim)
        if not self._reachable(src, dst):
            self.sim._call_soon(
                fut.reject,
                NetworkUnavailableError(f"node {dst.node_id} unreachable from {src.node_id}"))
            return fut
        self.messages_sent += 1
        pair = (src.locality.region, dst.locality.region)
        self.bytes_by_region_pair[pair] = (
            self.bytes_by_region_pair.get(pair, 0) + payload_size)
        request_delay = self.one_way_latency(src, dst)

        def deliver_request() -> None:
            if not self._reachable(src, dst):
                fut.reject(NetworkUnavailableError(
                    f"node {dst.node_id} died in flight"))
                return
            process = self.sim.spawn(handler(), name=f"rpc@{dst.node_id}")
            process.add_callback(send_reply)

        def send_reply(process: Process) -> None:
            reply_delay = self.one_way_latency(dst, src)
            error = process.error
            if error is not None:
                self.sim.call_after(reply_delay, fut.reject, error)
            else:
                self.sim.call_after(reply_delay, fut.resolve, process._value)

        self.sim.call_after(request_delay, deliver_request)
        return fut

    def send(self, src, dst, callback: Callable[[], None]) -> None:
        """One-way, fire-and-forget message (e.g. Raft appends)."""
        if not self._reachable(src, dst):
            return
        self.messages_sent += 1
        self.sim.call_after(self.one_way_latency(src, dst), callback)
